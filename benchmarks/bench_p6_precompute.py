"""Experiment P6: the offline/online phase split (repro.precompute).

Measures what correlated-randomness pools buy at query time and what
their machinery costs when they cannot help:

* **Online-phase latency.**  A fixed mix of all six SMC protocol
  setups plus blind-signature enrolment, run three ways on identically
  seeded twins: *warm* (pools filled offline), *disabled* (kill switch,
  the exact pre-split inline path), and *empty* (pools enabled but never
  filled).  The manager's per-kind online ledger times exactly the
  draw-or-compute setup step — the paper-standard offline/online
  request-latency metric.  The acceptance bar is a >= 2x cut of total
  online-phase time, with a per-protocol-kind breakdown.
* **Cold-path overhead.**  End-to-end wall-clock of the *empty* run
  must stay within 5% of the *disabled* run: a dry pool may only cost a
  dictionary probe per draw.
* **Witness bases.**  A service-level integrity round after
  ``warm_pools()`` vs the kill switch: the initiator's ring folds hit
  the precomputed accumulator bases.

Correctness is asserted inline: every protocol's result values must be
identical across the three modes (the split may re-label work, never
change answers).

Writes ``BENCH_p6.json`` at the repo root.

Environment knobs (for CI smoke runs on tiny machines):

- ``REPRO_BENCH_REPEATS``       protocol-mix repetitions     (default 24)
- ``REPRO_BENCH_ROWS``          service log size             (default 24)
- ``REPRO_BENCH_MIN_SPEEDUP``   online-phase bar asserted    (default 2.0)
- ``REPRO_BENCH_MAX_OVERHEAD``  empty-pool ceiling           (default 0.05)
- ``REPRO_BENCH_TRIALS``        best-of-N wall-clock trials  (default 3)

Run directly with ``python benchmarks/bench_p6_precompute.py [--smoke]``;
``--smoke`` applies tiny-machine knobs (fewer repeats, relaxed bars).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # direct execution: make repo-root imports work
    for _extra in (str(_ROOT), str(_ROOT / "src")):
        if _extra not in sys.path:
            sys.path.insert(0, _extra)

from benchmarks.conftest import print_rows
from repro.cluster.authority import CredentialAuthority
from repro.core import ConfidentialAuditingService
from repro.crypto import DeterministicRng, shared_prime
from repro.crypto.schnorr import SchnorrGroup
from repro.crypto.shamir import ShamirScheme
from repro.logstore import paper_fragment_plan, paper_table1_schema
from repro.precompute import (
    PrecomputeConfig,
    PrecomputeManager,
    set_precompute_enabled,
)
from repro.smc import (
    SmcContext,
    secure_compare,
    secure_equality,
    secure_ranking,
    secure_set_intersection,
    secure_set_union,
    secure_sum,
)
from repro.workloads import paper_table1_rows

REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "24"))
ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "24"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))
MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_MAX_OVERHEAD", "0.05"))
TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "3"))
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_p6.json"

PRIME_BITS = 128  # production-size commutative prime: keygen cost is real
PARTIES = ["P0", "P1", "P2"]
SUM_PRIME = shared_prime(128)  # fixed field => the Shamir pool shape is warmable


def _run_mix(repeats: int, manager: PrecomputeManager) -> list:
    """The protocol mix; returns result values for cross-mode equality."""
    prime = shared_prime(PRIME_BITS)
    group = SchnorrGroup.generate(256, DeterministicRng(b"p6-group"))
    ctx = SmcContext(prime, DeterministicRng(b"p6-ctx"))
    ctx.precompute = manager
    authority = CredentialAuthority(
        group, DeterministicRng(b"p6-ca"), precompute=manager
    )
    outputs = []
    for i in range(repeats):
        outputs.append(secure_set_intersection(
            ctx, {"P0": [i, i + 1], "P1": [i + 1, i + 2], "P2": [i + 1, 9]},
        ).values)
        outputs.append(secure_set_union(
            ctx, {"P0": [i, 1], "P1": [2, i], "P2": [3]},
        ).values)
        outputs.append(secure_sum(
            ctx, {"P0": i, "P1": 2 * i, "P2": 7}, k=2, field_prime=SUM_PRIME,
        ).values)
        outputs.append(secure_equality(
            ctx, ("P0", f"T{i}"), ("P1", f"T{i % 3}"), session=f"eq-{i}",
        ).values)
        outputs.append(secure_compare(
            ctx, ("P0", i), ("P1", 2 * i + 1), session=f"cmp-{i}",
        ).values)
        outputs.append(secure_ranking(
            ctx, {"P0": i, "P1": i + 5, "P2": 2 * i + 1},
            value_bound=1000, group_label=f"rank-{i}",
        ).values)
        token = authority.enroll(f"node-{i}").token
        outputs.append(authority.verify_token(token))
    return outputs


def _manager(warm: bool, repeats: int) -> PrecomputeManager:
    """A manager sized so a warmed run never dips below the watermark."""
    demand = repeats * 3 + 16
    manager = PrecomputeManager(
        rng=DeterministicRng(b"p6-pools"),
        config=PrecomputeConfig(pool_size=demand, low_water=0),
    )
    if warm:
        prime = shared_prime(PRIME_BITS)
        group = SchnorrGroup.generate(256, DeterministicRng(b"p6-group"))
        scheme = ShamirScheme(k=2, n=len(PARTIES), p=SUM_PRIME)
        manager.warm_smc(prime, PARTIES, schemes=[scheme])
        authority_key_y = CredentialAuthority(
            group, DeterministicRng(b"p6-ca")
        ).public_key
        manager.warm_blind(group.p, group.q, group.g, "signer")
        manager.warm_blind(group.p, group.q, group.g, "client-alpha")
        manager.warm_blind(group.p, group.q, authority_key_y, "client-beta")
    return manager


def _mode(name: str, repeats: int, trials: int = 1):
    """Best-of-``trials`` timed runs (standard timeit practice: the min
    wall is the least-noise estimate on a shared machine); returns
    (outputs, online_stats, wall_seconds, mgr) from the fastest trial."""
    best = None
    for _ in range(max(trials, 1)):
        if name == "disabled":
            set_precompute_enabled(False)
        try:
            manager = _manager(warm=(name == "warm"), repeats=repeats)
            start = time.perf_counter()
            outputs = _run_mix(repeats, manager)
            wall = time.perf_counter() - start
        finally:
            if name == "disabled":
                set_precompute_enabled(None)
        if best is None or wall < best[2]:
            best = (outputs, manager.online_stats(), wall, manager)
    return best


def _integrity_mode(warm: bool) -> tuple[float, dict, list]:
    """Service-level integrity round: witness-base pools warm vs off."""
    if not warm:
        set_precompute_enabled(False)
    try:
        schema = paper_table1_schema()
        service = ConfidentialAuditingService(
            schema, paper_fragment_plan(schema), prime_bits=PRIME_BITS,
            rng=DeterministicRng(b"p6-svc"),
        )
        ticket = service.register_user("p6-bench")
        rows = (paper_table1_rows() * (ROWS // 6 + 1))[:ROWS]
        for i, row in enumerate(rows):
            service.log_event({**row, "Tid": f"T{i}"}, ticket)
        if warm:
            service.warm_pools()
        start = time.perf_counter()
        reports = [(r.glsn, r.ok) for r in service.check_integrity()]
        wall = time.perf_counter() - start
        return wall, service.precompute.online_stats(), reports
    finally:
        if not warm:
            set_precompute_enabled(None)


class TestOfflineOnlineSplit:
    def test_online_phase_cut_and_cold_path_overhead(self):
        results: dict = {
            "experiment": "P6",
            "repeats": REPEATS,
            "rows": ROWS,
            "prime_bits": PRIME_BITS,
            "min_speedup_asserted": MIN_SPEEDUP,
            "max_overhead_asserted": MAX_OVERHEAD,
        }

        # -- the three modes on identically seeded twins -------------------
        _mode("disabled", 2)  # untimed priming pass (allocator, int caches)
        warm_out, warm_stats, warm_wall, warm_mgr = _mode(
            "warm", REPEATS, TRIALS
        )
        plain_out, plain_stats, plain_wall, _ = _mode(
            "disabled", REPEATS, TRIALS
        )
        empty_out, empty_stats, empty_wall, _ = _mode("empty", REPEATS, TRIALS)

        assert warm_out == plain_out == empty_out, (
            "pooled and on-demand runs must produce identical results"
        )

        # -- headline: online-phase (draw-or-compute) latency --------------
        warm_online = sum(row["seconds"] for row in warm_stats.values())
        plain_online = sum(row["seconds"] for row in plain_stats.values())
        speedup = plain_online / warm_online if warm_online else float("inf")
        per_kind = {}
        table = []
        for kind in sorted(plain_stats):
            w, p = warm_stats[kind], plain_stats[kind]
            kind_speedup = (
                p["seconds"] / w["seconds"] if w["seconds"] else float("inf")
            )
            hit_rate = w["pooled"] / w["calls"] if w["calls"] else 0.0
            per_kind[kind] = {
                "warm_ms": round(w["seconds"] * 1e3, 3),
                "disabled_ms": round(p["seconds"] * 1e3, 3),
                "speedup": round(kind_speedup, 2),
                "calls": w["calls"],
                "warm_hit_rate": round(hit_rate, 3),
            }
            table.append((
                kind, w["calls"], f"{p['seconds'] * 1e3:.2f}",
                f"{w['seconds'] * 1e3:.2f}", f"{kind_speedup:.1f}x",
                f"{hit_rate:.0%}",
            ))
        results["online_phase"] = {
            "warm_ms": round(warm_online * 1e3, 3),
            "disabled_ms": round(plain_online * 1e3, 3),
            "speedup": round(speedup, 2),
            "per_kind": per_kind,
        }
        print_rows(
            f"P6: online-phase setup latency, {REPEATS} protocol-mix rounds",
            ["kind", "calls", "inline ms", "pooled ms", "speedup", "hits"],
            table,
        )
        assert speedup >= MIN_SPEEDUP, (
            f"warm pools cut online-phase latency {speedup:.2f}x, "
            f"bar is {MIN_SPEEDUP:.1f}x"
        )

        # -- cold-path overhead guard --------------------------------------
        # A dry pool must cost roughly a dict probe per draw: the empty
        # run's end-to-end wall-clock stays within the ceiling of the
        # kill-switch run (both compute everything inline).
        overhead = empty_wall / plain_wall - 1.0
        results["end_to_end"] = {
            "warm_s": round(warm_wall, 3),
            "disabled_s": round(plain_wall, 3),
            "empty_s": round(empty_wall, 3),
            "warm_speedup": round(plain_wall / warm_wall, 2),
            "cold_path_overhead_pct": round(overhead * 100, 2),
        }
        print_rows(
            "P6: end-to-end protocol mix (context; online phase is the claim)",
            ["mode", "wall s", "vs disabled"],
            [
                ("disabled (kill switch)", f"{plain_wall:.3f}", "—"),
                ("warm pools", f"{warm_wall:.3f}",
                 f"{plain_wall / warm_wall:.2f}x faster"),
                ("empty pools", f"{empty_wall:.3f}",
                 f"{overhead * 100:+.1f}%"),
            ],
        )
        assert overhead <= MAX_OVERHEAD, (
            f"enabled-but-empty pools cost {overhead:.1%} end to end, "
            f"ceiling is {MAX_OVERHEAD:.0%}"
        )

        # -- witness bases in a service integrity round --------------------
        warm_integ_s, warm_integ_stats, warm_reports = _integrity_mode(True)
        plain_integ_s, _, plain_reports = _integrity_mode(False)
        assert warm_reports == plain_reports
        witness = warm_integ_stats.get("witness", {"calls": 0, "pooled": 0})
        results["integrity_round"] = {
            "rows": ROWS,
            "warm_s": round(warm_integ_s, 3),
            "disabled_s": round(plain_integ_s, 3),
            "witness_calls": witness["calls"],
            "witness_hits": witness["pooled"],
        }
        assert witness["pooled"] > 0, "warmed witness bases never hit"

        # -- bookkeeping ----------------------------------------------------
        results["pools"] = warm_mgr.pool_snapshot()
        results["offline_ops"] = warm_mgr.offline_ops.snapshot()
        hits = sum(r["hits"] for r in results["pools"].values())
        draws = hits + sum(r["misses"] for r in results["pools"].values())
        results["warm_hit_rate"] = round(hits / draws, 3) if draws else 0.0

        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str]) -> int:
    import pytest

    if "--smoke" in argv:
        os.environ.setdefault("REPRO_BENCH_REPEATS", "8")
        os.environ.setdefault("REPRO_BENCH_ROWS", "12")
        os.environ.setdefault("REPRO_BENCH_MIN_SPEEDUP", "1.5")
        os.environ.setdefault("REPRO_BENCH_MAX_OVERHEAD", "0.25")
    return pytest.main([__file__, "-q", "-s"])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
