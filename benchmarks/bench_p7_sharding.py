"""Experiment P7: horizontal sharding — multi-ring scatter-gather scaling.

The same log (same rows, same glsns) is deployed at 1, 2, 4, and 8
shards (``repro.shard``, per-record striping) and the same SMC-heavy
query mix runs through the scatter-gather coordinator at every scale:

* **Aggregate throughput.**  Measured in the paper's own cost unit —
  modular exponentiations (its Table 2 counts modexps) — under the
  pipelined-cluster model: rings execute concurrently and the merge runs
  at the coordinator, so the batch's completion is bounded by its
  *bottleneck resource*: ``max(max-per-ring work, coordinator work)``.
  The headline is queries per kilo-modexp of bottleneck work vs the
  1-shard deployment; the acceptance bar is >= 3x at 4 shards.
  (Wall-clock and virtual network seconds are reported informationally:
  the big-int SMC rounds hold the GIL, so OS threads buy ~nothing, and
  the simulated network's latency term is per *round*, not per record.)
* **Merge-path ablation.**  The same 4-shard cluster re-measured with
  ``merge_mode="union"`` — the naive n-party secure-union merge — shows
  the coordinator becoming the bottleneck and scaling collapsing, which
  is exactly why the disjointness-proof concatenation fast path exists
  (``repro.shard.merge``).
* **Result identity.**  Every sharded query result is asserted equal,
  glsn for glsn, to a plain single-ring ``ConfidentialAuditingService``
  answer over the same records — sharding may never change semantics.
* **Leakage/C_DLA reconciliation.**  Every query's merged leakage
  ledger is asserted to reconcile *exactly* to the sum of the per-shard
  ledgers plus the coordinator's ``shard_partial`` merge entries, and
  the coordinator/composed C_DLA pair is recorded per scale.

Writes ``BENCH_p7.json`` at the repo root.

Environment knobs (for CI smoke runs on tiny machines):

- ``REPRO_BENCH_ROWS``               log size              (default 96)
- ``REPRO_BENCH_MIN_SHARD_SPEEDUP``  4-shard bar asserted  (default 3.0)
- ``REPRO_BENCH_SHARD_MAX``          ladder ceiling        (default 8)

Run directly with ``python benchmarks/bench_p7_sharding.py [--smoke]``;
``--smoke`` applies tiny-machine knobs (fewer rows, relaxed bar).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # direct execution: make repo-root imports work
    for _extra in (str(_ROOT), str(_ROOT / "src")):
        if _extra not in sys.path:
            sys.path.insert(0, _extra)

from benchmarks.conftest import print_rows
from repro.core import ConfidentialAuditingService
from repro.crypto import DeterministicRng
from repro.logstore import paper_fragment_plan, paper_table1_schema
from repro.shard import ShardedAuditingService

ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "96"))
MIN_SHARD_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SHARD_SPEEDUP", "3.0"))
SHARD_MAX = int(os.environ.get("REPRO_BENCH_SHARD_MAX", "8"))
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_p7.json"

LADDER = [n for n in (1, 2, 4, 8) if n <= SHARD_MAX]

# SMC-heavy mix: the C1 > C5 cross predicate costs one secure comparison
# per candidate record, so per-ring work shrinks linearly with sharding.
MIX = [
    "C1 > C5 and C3 = 'bank'",
    "C1 > C5 and C2 < 400",
    "C4 = 1 and EID < 48",
    "C3 = 'bank' or C3 = 'salary'",
]


def _row(i: int) -> dict:
    return {
        "Time": f"2004-01-{i % 28 + 1:02d}",
        "id": f"u{i % 5}",
        "EID": i,
        "Tid": f"t{i}",
        "protocl": "tcp",
        "ip": f"10.0.0.{i % 7}",
        "C": i % 3,
        "C1": (i * 13) % 100,
        "C2": (i * 29) % 1000,
        "C3": ["bank", "salary", "shop"][i % 3],
        "C4": i % 2,
        "C5": i,
    }


def _build_single(rows: int) -> ConfidentialAuditingService:
    schema = paper_table1_schema()
    service = ConfidentialAuditingService(
        schema,
        paper_fragment_plan(schema),
        prime_bits=64,
        rng=DeterministicRng(b"p7-bench"),
    )
    ticket = service.register_user("p7-bench")
    for i in range(rows):
        service.log_event(_row(i), ticket)
    return service


def _build_sharded(rows: int, shards: int) -> ShardedAuditingService:
    schema = paper_table1_schema()
    service = ShardedAuditingService(
        schema,
        paper_fragment_plan(schema),
        shards=shards,
        prime_bits=64,
        rng=DeterministicRng(b"p7-bench"),
        block_size=1,  # per-record striping: the most balanced split
    )
    ticket = service.register_user("p7-bench")
    for i in range(rows):
        service.log_event(_row(i), ticket)
    return service


def _run_batch(cluster, expected: list[list[int]]) -> dict:
    """Run the mix; return per-resource modexp work + informational clocks.

    Asserts every sharded answer equal to the single-ring ground truth
    and every query's leakage ledger reconciled exactly.
    """
    shards = len(cluster.shards)
    ring_work = {sid: 0 for sid in range(shards)}
    coord_work = 0
    vt_total = 0.0
    recon_last = None
    wall_start = time.perf_counter()
    for criterion, want in zip(MIX, expected):
        result = cluster.query(criterion)
        # Identity: sharded answer == single-ring answer, glsn for glsn.
        assert sorted(result.glsns) == want, (
            f"{criterion!r} diverged at {shards} shards"
        )
        # Exact ledger reconciliation, every query.
        recon_last = result.leakage_reconciliation()
        assert recon_last["reconciles"], (
            f"ledger mismatch at {shards} shards: {recon_last}"
        )
        for sid, cost in result.shard_costs.items():
            ring_work[sid] += cost.modexp
        coord_work += result.merge_cost.modexp
        vt_total += result.cost.virtual_time
    wall = time.perf_counter() - wall_start
    bottleneck = max(max(ring_work.values()), coord_work)
    return {
        "ring_work_modexp": list(ring_work.values()),
        "coordinator_work_modexp": coord_work,
        "bottleneck_modexp": bottleneck,
        "queries_per_kilomodexp": round(1000.0 * len(MIX) / bottleneck, 2),
        "wall_s": round(wall, 3),
        "virtual_total_s": round(vt_total, 6),
        "leakage_reconciliation": recon_last,
    }


class TestShardingScaling:
    def test_scatter_gather_scales_and_stays_identical(self):
        results: dict = {
            "experiment": "P7",
            "rows": ROWS,
            "mix": MIX,
            "ladder": LADDER,
            "cost_unit": "modexp (bottleneck resource, pipelined batch)",
            "min_speedup_at_4_asserted": MIN_SHARD_SPEEDUP,
        }

        # Ground truth: the single-ring service's answers.
        baseline = _build_single(ROWS)
        expected = [sorted(baseline.query(c).glsns) for c in MIX]
        baseline.shutdown_scheduler()

        scales: list[dict] = []
        work_by_shards: dict[int, int] = {}
        table_rows = []
        for shards in LADDER:
            cluster = _build_sharded(ROWS, shards)
            try:
                batch = _run_batch(cluster, expected)
                per_ring = [len(r.store.glsns) for r in cluster.shards]
                work_by_shards[shards] = batch["bottleneck_modexp"]
                scale = {
                    "shards": shards,
                    "records_per_ring": per_ring,
                    **batch,
                    "speedup_vs_1": round(
                        work_by_shards[1] / batch["bottleneck_modexp"], 2
                    ),
                    "c_dla_coordinator": cluster.c_dla(),
                    "c_dla_composed": cluster.composed_c_dla(),
                }
                scales.append(scale)
                table_rows.append(
                    (
                        f"{shards}",
                        f"{min(per_ring)}-{max(per_ring)}",
                        f"{max(batch['ring_work_modexp'])}",
                        f"{batch['coordinator_work_modexp']}",
                        f"{batch['queries_per_kilomodexp']}",
                        f"{scale['speedup_vs_1']:.2f}x",
                        f"{batch['wall_s']:.2f}",
                    )
                )
            finally:
                cluster.shutdown()
        results["scales"] = scales

        print_rows(
            f"P7: {len(MIX)} scatter-gather queries over {ROWS} rows "
            f"(cost unit: bottleneck modexp; wall informational)",
            ["shards", "rows/ring", "ring max", "coord", "q/kmodexp",
             "speedup", "wall s"],
            table_rows,
        )

        # -- merge-path ablation: the naive secure-union merge -------------
        ablate_at = 4 if 4 in LADDER else LADDER[-1]
        naive = _build_sharded(ROWS, ablate_at)
        try:
            naive.merge_mode = "union"  # always run the n-party union
            batch = _run_batch(naive, expected)
            naive_speedup = work_by_shards[1] / batch["bottleneck_modexp"]
            results["naive_union_merge"] = {
                "shards": ablate_at,
                **batch,
                "speedup_vs_1": round(naive_speedup, 2),
            }
            proven = next(s for s in scales if s["shards"] == ablate_at)
            print_rows(
                f"P7: merge-path ablation at {ablate_at} shards",
                ["merge path", "ring max", "coord", "speedup"],
                [
                    ("disjointness proof",
                     f"{max(proven['ring_work_modexp'])}",
                     f"{proven['coordinator_work_modexp']}",
                     f"{proven['speedup_vs_1']:.2f}x"),
                    ("naive secure union",
                     f"{max(batch['ring_work_modexp'])}",
                     f"{batch['coordinator_work_modexp']}",
                     f"{naive_speedup:.2f}x"),
                ],
            )
        finally:
            naive.shutdown()

        if 4 in work_by_shards:
            speedup_at_4 = work_by_shards[1] / work_by_shards[4]
            results["speedup_at_4"] = round(speedup_at_4, 2)
            assert speedup_at_4 >= MIN_SHARD_SPEEDUP, (
                f"4-shard aggregate throughput is {speedup_at_4:.2f}x the "
                f"single ring, bar is {MIN_SHARD_SPEEDUP:.1f}x"
            )

        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str]) -> int:
    import pytest

    if "--smoke" in argv:
        os.environ.setdefault("REPRO_BENCH_ROWS", "32")
        os.environ.setdefault("REPRO_BENCH_MIN_SHARD_SPEEDUP", "2.0")
        os.environ.setdefault("REPRO_BENCH_SHARD_MAX", "4")
    return pytest.main([__file__, "-q", "-s"])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
