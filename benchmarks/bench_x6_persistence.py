"""Experiment X6: store snapshot/restore throughput and recovery audit.

Operational requirement for a real DLA node: state survives restarts, and
the first thing a restarted cluster does is re-verify its integrity
anchors.  Measures snapshot/restore cost vs record count and asserts the
recovery audit passes (and still catches pre-snapshot tampering).
"""

import json

import pytest

from benchmarks.conftest import print_rows
from repro.crypto import (
    AccumulatorParams,
    DeterministicRng,
    Operation,
    TicketAuthority,
)
from repro.logstore import DistributedLogStore, IntegrityChecker
from repro.logstore.persistence import restore_store, snapshot_store
from repro.workloads import EcommerceWorkload


def build(plan, records: int, seed: bytes):
    authority = TicketAuthority(b"x6-bench-master-secret-32bytes!!")
    store = DistributedLogStore(
        plan, authority, AccumulatorParams.generate(128, DeterministicRng(seed))
    )
    ticket = authority.issue("U1", {Operation.READ, Operation.WRITE})
    store.append_record(EcommerceWorkload(seed=3).flat_rows(records // 2), ticket)
    return store, authority


class TestPersistence:
    @pytest.mark.parametrize("records", [20, 100])
    def test_bench_snapshot(self, benchmark, plan, records):
        store, _ = build(plan, records, f"x6s{records}".encode())
        snapshot = benchmark(snapshot_store, store)
        assert len(snapshot["nodes"]) == len(plan.node_ids)

    @pytest.mark.parametrize("records", [20, 100])
    def test_bench_restore(self, benchmark, plan, records):
        store, authority = build(plan, records, f"x6r{records}".encode())
        snapshot = snapshot_store(store)
        restored = benchmark(restore_store, snapshot, authority)
        assert restored.glsns == store.glsns

    def test_bench_recovery_audit(self, benchmark, plan):
        store, authority = build(plan, 100, b"x6a")
        restored = restore_store(snapshot_store(store), authority)

        def audit():
            return IntegrityChecker(restored).check_all()

        reports = benchmark(audit)
        assert all(r.ok for r in reports)

    def test_size_report(self, benchmark, plan):
        def sweep():
            table = []
            for records in (20, 100, 200):
                store, _ = build(plan, records, f"x6z{records}".encode())
                blob = json.dumps(snapshot_store(store))
                table.append(
                    (records, len(blob), len(blob) // max(records, 1))
                )
            return table

        table = benchmark(sweep)
        print_rows(
            "X6: snapshot size vs record count",
            ["records", "snapshot bytes", "bytes/record"],
            table,
        )
        # Linear growth: bytes/record roughly constant.
        per_record = [row[2] for row in table]
        assert max(per_record) < 2 * min(per_record)
