"""Experiment F4: secure set intersection (Figure 4) cost and scaling.

Reproduces the figure's 3-node walk-through exactly, then sweeps the cost
drivers: party count n (messages grow as n²·|S| relays), set size, and the
Pohlig-Hellman prime size (modexp cost grows ~cubically in bits).
"""

import pytest

from benchmarks.conftest import print_rows
from repro.crypto import DeterministicRng, shared_prime
from repro.net.simnet import SimNetwork
from repro.smc.base import SmcContext
from repro.smc.intersection import fig4_walkthrough, secure_set_intersection


class TestFigure4:
    def test_bench_walkthrough(self, benchmark):
        transcript = benchmark(fig4_walkthrough)
        print("\n--- Figure 4 walk-through ---")
        print(f"sets:         {transcript['sets']}")
        print(f"intersection: {transcript['intersection']}")
        print(f"E132(e) = E321(e) = E213(e): "
              f"{transcript['commutative_encodings_equal']}")
        print(f"messages={transcript['messages']}  bytes={transcript['bytes']}  "
              f"modexp={transcript['modexp']}")
        assert transcript["intersection"] == ["e"]
        assert transcript["commutative_encodings_equal"]

    @pytest.mark.parametrize("parties", [2, 3, 5, 8])
    def test_bench_vs_party_count(self, benchmark, prime64, parties):
        sets = {f"P{i}": [f"x{j}" for j in range(8)] for i in range(parties)}

        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"f4p"))
            return secure_set_intersection(ctx, sets)

        result = benchmark(run)
        assert len(result.any_value) == 8

    @pytest.mark.parametrize("size", [4, 16, 64])
    def test_bench_vs_set_size(self, benchmark, prime64, size):
        sets = {
            "A": [f"x{j}" for j in range(size)],
            "B": [f"x{j}" for j in range(size // 2, size + size // 2)],
            "C": [f"x{j}" for j in range(size)],
        }

        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"f4s"))
            return secure_set_intersection(ctx, sets)

        result = benchmark(run)
        assert len(result.any_value) == size - size // 2

    @pytest.mark.parametrize("bits", [64, 128, 256])
    def test_bench_vs_prime_bits(self, benchmark, bits):
        prime = shared_prime(bits)
        sets = {"A": [f"x{j}" for j in range(8)], "B": [f"x{j}" for j in range(8)]}

        def run():
            ctx = SmcContext(prime, DeterministicRng(b"f4b"))
            return secure_set_intersection(ctx, sets)

        result = benchmark(run)
        assert len(result.any_value) == 8

    def test_scaling_report(self, benchmark, prime64):
        """The headline scaling table: messages ∝ n², modexp ∝ n²·|S|."""

        def sweep():
            table = []
            for parties in (2, 4, 8):
                for size in (4, 16):
                    ctx = SmcContext(prime64, DeterministicRng(b"f4r"))
                    net = SimNetwork()
                    sets = {
                        f"P{i}": [f"x{j}" for j in range(size)]
                        for i in range(parties)
                    }
                    secure_set_intersection(ctx, sets, net=net)
                    table.append(
                        (parties, size, net.stats.messages, net.stats.bytes,
                         ctx.crypto_ops.modexp)
                    )
            return table

        table = benchmark(sweep)
        print_rows(
            "F4: secure set intersection scaling",
            ["parties", "set size", "messages", "bytes", "modexp"],
            table,
        )
        # Shape: at fixed set size, messages grow superlinearly in n;
        # at fixed n, modexp grows linearly in set size.
        n2 = next(r for r in table if r[0] == 2 and r[1] == 4)
        n8 = next(r for r in table if r[0] == 8 and r[1] == 4)
        assert n8[2] > 3 * n2[2]
        s4 = next(r for r in table if r[0] == 4 and r[1] == 4)
        s16 = next(r for r in table if r[0] == 4 and r[1] == 16)
        assert s16[4] >= 3 * s4[4]

    def test_bench_shuffled_variant(self, benchmark, prime64):
        sets = {"A": [f"x{j}" for j in range(16)],
                "B": [f"x{j}" for j in range(8, 24)],
                "C": [f"x{j}" for j in range(16)]}

        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"f4sh"))
            return secure_set_intersection(ctx, sets, shuffle=True)

        result = benchmark(run)
        assert sorted(result.any_value) == sorted(f"x{j}" for j in range(8, 16))
