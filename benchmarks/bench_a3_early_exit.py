"""Ablation A3: early-exit clause ordering in the query executor.

The executor evaluates SMC-free local clauses first and stops when any
clause comes back empty (an empty clause empties the conjunction).  On
selective queries this skips the expensive cross-predicate protocols
entirely; on non-selective queries it changes nothing.
"""

import pytest

from benchmarks.conftest import print_rows
from repro.audit.executor import QueryExecutor
from repro.crypto import DeterministicRng
from repro.smc.base import SmcContext

SELECTIVE = "C1 > 100000 and C1 < C2"      # local clause empty
NON_SELECTIVE = "C1 > 0 and C1 < C2"       # local clause full


def build(loaded_store, schema, prime64, early_exit: bool, seed: bytes):
    store, _ = loaded_store
    executor = QueryExecutor(
        store, SmcContext(prime64, DeterministicRng(seed)), schema
    )
    executor.early_exit = early_exit
    return executor


class TestEarlyExitAblation:
    def test_bench_selective_with_early_exit(
        self, benchmark, loaded_store, schema, prime64
    ):
        executor = build(loaded_store, schema, prime64, True, b"a3a")
        result = benchmark(executor.execute, SELECTIVE)
        assert result.glsns == [] and result.messages == 0

    def test_bench_selective_without_early_exit(
        self, benchmark, loaded_store, schema, prime64
    ):
        executor = build(loaded_store, schema, prime64, False, b"a3b")
        result = benchmark(executor.execute, SELECTIVE)
        assert result.glsns == [] and result.messages > 0

    def test_ablation_report(self, benchmark, loaded_store, schema, prime64):
        def measure():
            rows = []
            for label, criterion in (
                ("selective", SELECTIVE), ("non-selective", NON_SELECTIVE),
            ):
                for early in (True, False):
                    executor = build(
                        loaded_store, schema, prime64, early,
                        f"a3-{label}-{early}".encode(),
                    )
                    result = executor.execute(criterion)
                    rows.append(
                        (label, "on" if early else "off",
                         result.messages, result.bytes, len(result.glsns))
                    )
            return rows

        rows = benchmark(measure)
        print_rows(
            "A3: early-exit clause ordering",
            ["query", "early-exit", "messages", "bytes", "matches"],
            rows,
        )
        by_key = {(r[0], r[1]): r for r in rows}
        # Selective: early exit eliminates all traffic.
        assert by_key[("selective", "on")][2] == 0
        assert by_key[("selective", "off")][2] > 0
        # Non-selective: identical results and cost either way.
        assert by_key[("non-selective", "on")][4] == by_key[("non-selective", "off")][4]
