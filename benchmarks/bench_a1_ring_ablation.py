"""Ablation A1: ring routing order for commutative-cipher protocols.

DESIGN.md §5 calls out the relay order as a design choice: the paper
assumes sets are "passed along" a ring but says nothing about the order.
On heterogeneous links (two sites, slow WAN between them) the order
matters for wall-clock completion; the protocol result is order-invariant
(eq. 6 guarantees it), so this is a pure latency ablation.
"""

import pytest

from benchmarks.conftest import print_rows
from repro.crypto import DeterministicRng
from repro.net.simnet import LinkModel, SimNetwork
from repro.net.topology import latency_ring
from repro.smc.base import SmcContext
from repro.smc.intersection import secure_set_intersection

SETS = {f"P{i}": [f"x{j}" for j in range(8)] for i in range(4)}
FAST, SLOW = 0.001, 0.1
SAME_SITE = {("P0", "P2"), ("P2", "P0"), ("P1", "P3"), ("P3", "P1")}


def build_net() -> SimNetwork:
    net = SimNetwork(default_link=LinkModel(latency=SLOW))
    for pair in SAME_SITE:
        net.set_link(*pair, LinkModel(latency=FAST))
    return net


def smart_ring() -> list[str]:
    latencies = {}
    for a in sorted(SETS):
        for b in sorted(SETS):
            if a != b:
                latencies[(a, b)] = FAST if (a, b) in SAME_SITE else SLOW
    return latency_ring(latencies)


class TestRingAblation:
    def test_bench_canonical_ring(self, benchmark, prime64):
        def run():
            net = build_net()
            ctx = SmcContext(prime64, DeterministicRng(b"a1c"))
            secure_set_intersection(ctx, SETS, net=net)
            return net.now

        virtual_time = benchmark(run)
        assert virtual_time > 0

    def test_bench_latency_aware_ring(self, benchmark, prime64):
        ring = smart_ring()

        def run():
            net = build_net()
            ctx = SmcContext(prime64, DeterministicRng(b"a1s"))
            secure_set_intersection(ctx, SETS, net=net, ring=ring)
            return net.now

        virtual_time = benchmark(run)
        assert virtual_time > 0

    def test_ablation_report(self, benchmark, prime64):
        def measure():
            net_canonical = build_net()
            secure_set_intersection(
                SmcContext(prime64, DeterministicRng(b"a1r1")), SETS,
                net=net_canonical,
            )
            ring = smart_ring()
            net_smart = build_net()
            result = secure_set_intersection(
                SmcContext(prime64, DeterministicRng(b"a1r2")), SETS,
                net=net_smart, ring=ring,
            )
            return [
                ("canonical (sorted ids)", f"{net_canonical.now * 1000:.1f}",
                 net_canonical.stats.messages),
                (f"latency-aware {ring}", f"{net_smart.now * 1000:.1f}",
                 net_smart.stats.messages),
            ], net_canonical.now, net_smart.now, result

        table, canonical_time, smart_time, result = benchmark(measure)
        print_rows(
            "A1: ring order ablation (2 sites, 100x WAN latency)",
            ["ring order", "virtual ms", "messages"],
            table,
        )
        # Same message count, same result, less virtual time.
        assert table[0][2] == table[1][2]
        assert smart_time < canonical_time
        assert sorted(result.any_value) == sorted(SETS["P0"])
