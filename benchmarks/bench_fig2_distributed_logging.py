"""Experiment F2: the Figure 2 distributed logging architecture end-to-end.

Measures the full write path through the public service facade (ticket
check → glsn allocation → fragmentation → per-node store → accumulator
anchor) and the end-to-end auditing round trip including majority
agreement and the threshold-signed report.
"""

import pytest

from benchmarks.conftest import print_rows
from repro.core import ApplicationNode, ConfidentialAuditingService
from repro.crypto import DeterministicRng
from repro.logstore import paper_fragment_plan, paper_table1_schema
from repro.workloads import EcommerceWorkload


@pytest.fixture(scope="module")
def service():
    schema = paper_table1_schema()
    return ConfidentialAuditingService(
        schema,
        paper_fragment_plan(schema),
        prime_bits=64,
        rng=DeterministicRng(b"f2-service"),
    )


class TestDistributedLogging:
    def test_bench_service_bootstrap(self, benchmark):
        """Cluster bootstrap: CA enrolment + evidence chain + key dealing."""
        schema = paper_table1_schema()

        def boot():
            return ConfidentialAuditingService(
                schema,
                paper_fragment_plan(schema),
                prime_bits=64,
                rng=DeterministicRng(b"f2-boot"),
            )

        svc = benchmark(boot)
        assert svc.membership_summary()["size"] == 4

    def test_bench_log_event(self, benchmark, service):
        node = ApplicationNode.register("writer", service)
        rows = EcommerceWorkload(seed=7).flat_rows(10)
        counter = iter(range(10**9))

        def log_one():
            row = dict(rows[next(counter) % len(rows)])
            return service.log_event(row, node.ticket)

        receipt = benchmark(log_one)
        assert receipt.glsn > 0

    def test_bench_audited_query_roundtrip(self, benchmark, service):
        node = ApplicationNode.register("writer2", service)
        for row in EcommerceWorkload(seed=8).flat_rows(10):
            service.log_event(row, node.ticket)

        def roundtrip():
            report = service.audited_query("C3 = 'order'")
            assert service.verify_report(report)
            return report

        report = benchmark(roundtrip)
        assert report.glsns

    def test_write_cost_report(self, benchmark, service):
        """Fragment fan-out per logged event: one fragment per DLA node."""
        node = ApplicationNode.register("writer3", service)

        def observe():
            before = {n: len(service.store.node_store(n)) for n in service.store.stores}
            service.log_event({"Tid": "Tf2", "C1": 1, "protocl": "UDP"}, node.ticket)
            after = {n: len(service.store.node_store(n)) for n in service.store.stores}
            return [(n, after[n] - before[n]) for n in sorted(after)]

        deltas = benchmark(observe)
        print_rows("F2: fragments written per event", ["node", "fragments"], deltas)
        assert all(delta >= 1 for _, delta in deltas)
