"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (tables/figures)
or measures one of its claims; DESIGN.md §3 maps experiment ids to files.
Benchmarks print their result rows (run ``pytest benchmarks/
--benchmark-only -s`` to see them) and assert the claim's *shape* so a
regression that flips a conclusion fails loudly.
"""

from __future__ import annotations

import pytest

from repro.crypto import (
    AccumulatorParams,
    DeterministicRng,
    Operation,
    TicketAuthority,
    shared_prime,
)
from repro.logstore import (
    DistributedLogStore,
    paper_fragment_plan,
    paper_table1_schema,
)
from repro.smc.base import SmcContext
from repro.workloads import EcommerceWorkload, paper_table1_rows


def print_rows(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Uniform result-row printer for all benchmarks."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def prime64():
    return shared_prime(64)


@pytest.fixture(scope="session")
def schema():
    return paper_table1_schema()


@pytest.fixture(scope="session")
def plan(schema):
    return paper_fragment_plan(schema)


@pytest.fixture()
def rng():
    return DeterministicRng(b"bench")


@pytest.fixture()
def fresh_ctx(prime64):
    def make(seed=b"bench-ctx"):
        return SmcContext(prime64, DeterministicRng(seed))

    return make


@pytest.fixture()
def loaded_store(schema, plan):
    """A store loaded with Table 1 plus a 50-transaction workload."""
    authority = TicketAuthority(b"bench-master-secret-0123456789xx")
    store = DistributedLogStore(
        plan, authority, AccumulatorParams.generate(128, DeterministicRng(b"bs"))
    )
    ticket = authority.issue(
        "U1", {Operation.READ, Operation.WRITE, Operation.DELETE}
    )
    store.append_record(paper_table1_rows(), ticket)
    store.append_record(EcommerceWorkload(seed=1).flat_rows(50), ticket)
    return store, ticket
