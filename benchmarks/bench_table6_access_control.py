"""Experiment T6: Table 6 access-control regeneration + ACL cost.

Regenerates the paper's ticket → glsn access table through authenticated
writes, measures grant/authorize throughput, and runs the §4.1 replica
consistency check (secure set intersection on grant sets).
"""

import pytest

from benchmarks.conftest import print_rows
from repro.crypto import (
    AccumulatorParams,
    DeterministicRng,
    Operation,
    TicketAuthority,
)
from repro.logstore import DistributedLogStore, paper_fragment_plan
from repro.logstore.access import check_table_consistency
from repro.smc.base import SmcContext
from repro.workloads import paper_table1_rows


def build_loaded(plan):
    """Three tickets T1-T3 writing the paper's five rows as Table 6 shows:
    T1 -> rows 1,3; T2 -> rows 2,4; T3 -> row 5."""
    authority = TicketAuthority(b"t6-bench-master-secret-32-bytes!")
    store = DistributedLogStore(
        plan, authority, AccumulatorParams.generate(128, DeterministicRng(b"t6"))
    )
    tickets = [
        authority.issue(f"U{i}", {Operation.READ, Operation.WRITE})
        for i in (1, 2, 3)
    ]
    owner_index = [0, 1, 0, 1, 2]  # the paper's Table 6 assignment
    rows = paper_table1_rows()
    receipts = [
        store.append(row, tickets[owner_index[i]]) for i, row in enumerate(rows)
    ]
    return store, tickets, receipts


class TestTable6Regeneration:
    def test_regenerate_table6(self, benchmark, plan):
        store, tickets, receipts = benchmark(build_loaded, plan)
        acl = store.node_store("P0").acl
        print("\n--- Table 6 (access control table) ---")
        print(acl.render())
        assert acl.glsns_for(tickets[0].ticket_id) == {
            receipts[0].glsn, receipts[2].glsn,
        }
        assert acl.glsns_for(tickets[1].ticket_id) == {
            receipts[1].glsn, receipts[3].glsn,
        }
        assert acl.glsns_for(tickets[2].ticket_id) == {receipts[4].glsn}

    def test_bench_authorize_check(self, benchmark, plan):
        store, tickets, receipts = build_loaded(plan)
        acl = store.node_store("P0").acl

        def authorize_all():
            acl.authorize(tickets[0], receipts[0].glsn, Operation.READ)
            acl.authorize(tickets[1], receipts[1].glsn, Operation.READ)
            acl.authorize(tickets[2], receipts[4].glsn, Operation.READ)

        benchmark(authorize_all)

    def test_bench_consistency_check(self, benchmark, plan, prime64):
        store, tickets, _ = build_loaded(plan)
        replicas = {n: store.node_store(n).acl for n in store.stores}

        def run_check():
            ctx = SmcContext(prime64, DeterministicRng(b"t6c"))
            return check_table_consistency(ctx, replicas, tickets[0].ticket_id)

        assert benchmark(run_check) is True

    def test_consistency_cost_vs_grants(self, benchmark, plan, prime64):
        """Report the SMC cost of replica checking vs grant-set size."""
        from repro.net.simnet import SimNetwork
        from repro.smc.intersection import secure_set_intersection

        def sweep():
            table = []
            for grants in (4, 16, 64):
                ctx = SmcContext(prime64, DeterministicRng(b"t6s"))
                net = SimNetwork()
                sets = {n: list(range(grants)) for n in plan.node_ids}
                secure_set_intersection(ctx, sets, net=net)
                table.append(
                    (grants, net.stats.messages, net.stats.bytes, ctx.crypto_ops.modexp)
                )
            return table

        table = benchmark(sweep)
        print_rows(
            "T6: replica consistency cost vs grant-set size",
            ["grants/ticket", "messages", "bytes", "modexp"],
            table,
        )
        # Message count is size-independent (ring structure); bytes and
        # modexp grow linearly with the grant set.
        messages = {row[1] for row in table}
        assert len(messages) == 1
        assert table[-1][3] > table[0][3]
