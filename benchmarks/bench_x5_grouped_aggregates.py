"""Experiment X5: confidential GROUP BY with small-group suppression.

Extends ref [7]'s secret counting: per-group statistics across two DLA
nodes where groups below ``min_group_size`` are suppressed entirely
(k-anonymity style).  Measures cost vs group count and validates the
suppression guarantee.
"""

import pytest

from benchmarks.conftest import print_rows
from repro.audit.executor import QueryExecutor
from repro.crypto import (
    AccumulatorParams,
    DeterministicRng,
    Operation,
    TicketAuthority,
)
from repro.logstore import DistributedLogStore
from repro.smc.base import SmcContext


def build_executor(plan, schema, prime64, groups: int, records: int, seed: bytes):
    rng = DeterministicRng(seed)
    authority = TicketAuthority(b"x5-bench-master-secret-32bytes!!")
    store = DistributedLogStore(
        plan, authority, AccumulatorParams.generate(128, rng)
    )
    ticket = authority.issue("U1", {Operation.READ, Operation.WRITE})
    rows = []
    for i in range(records):
        rows.append({
            "id": f"user-{i % groups}",          # group attr on P1
            "C1": rng.randint(1, 100),           # measure on P3
        })
    # One singleton group that must be suppressible.
    rows.append({"id": "loner", "C1": 999})
    store.append_record(rows, ticket)
    return QueryExecutor(
        store, SmcContext(prime64, DeterministicRng(seed + b"-ctx")), schema
    )


class TestGroupedAggregates:
    @pytest.mark.parametrize("groups", [2, 8, 32])
    def test_bench_vs_group_count(self, benchmark, plan, schema, prime64, groups):
        executor = build_executor(
            plan, schema, prime64, groups, 128, f"x5-{groups}".encode()
        )
        out = benchmark(
            executor.aggregate_grouped, "sum", "C1", "id", None, 2
        )
        assert len(out) == groups  # the loner is suppressed

    def test_suppression_report(self, benchmark, plan, schema, prime64):
        executor = build_executor(plan, schema, prime64, 4, 64, b"x5r")

        def run():
            visible = executor.aggregate_grouped(
                "count", "C1", group_by="id", min_group_size=2
            )
            unsuppressed = executor.aggregate_grouped(
                "count", "C1", group_by="id", min_group_size=1
            )
            return visible, unsuppressed

        visible, unsuppressed = benchmark(run)
        table = [
            (group, result.value, "visible" if group in visible else "SUPPRESSED")
            for group, result in sorted(unsuppressed.items())
        ]
        print_rows(
            "X5: grouped counts with k=2 suppression",
            ["group", "members", "k=2 status"],
            table,
        )
        assert "loner" in unsuppressed and "loner" not in visible
        assert all(result.value >= 2 for result in visible.values())
