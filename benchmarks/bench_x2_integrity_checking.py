"""Experiment X2: §4.1 accumulator-based integrity cross-checking.

Measures the ring protocol's cost (O(n) messages per glsn), the per-record
verification throughput, and the detector's completeness against injected
tampering (every single-fragment mutation must be caught).
"""

import pytest

from benchmarks.conftest import print_rows
from repro.crypto import (
    AccumulatorParams,
    DeterministicRng,
    Operation,
    TicketAuthority,
)
from repro.logstore import (
    DistributedLogStore,
    IntegrityChecker,
    round_robin_plan,
    run_integrity_round,
)
from repro.net.simnet import SimNetwork
from repro.workloads import EcommerceWorkload


def build(plan_obj, records=20, seed=b"x2"):
    authority = TicketAuthority(b"x2-bench-master-secret-32-bytes!")
    store = DistributedLogStore(
        plan_obj, authority, AccumulatorParams.generate(128, DeterministicRng(seed))
    )
    ticket = authority.issue("U1", {Operation.READ, Operation.WRITE})
    store.append_record(EcommerceWorkload(seed=5).flat_rows(records // 2), ticket)
    return store


class TestIntegrityChecking:
    def test_bench_in_process_check(self, benchmark, plan):
        store = build(plan)
        checker = IntegrityChecker(store)
        reports = benchmark(checker.check_all)
        assert all(r.ok for r in reports)

    def test_bench_ring_protocol(self, benchmark, plan):
        store = build(plan)
        reports = benchmark(run_integrity_round, store)
        assert all(r.ok for r in reports)

    @pytest.mark.parametrize("nodes", [2, 4, 8])
    def test_bench_vs_cluster_size(self, benchmark, schema, nodes):
        plan_obj = round_robin_plan(schema, [f"P{i}" for i in range(nodes)])
        store = build(plan_obj, seed=f"x2-{nodes}".encode())
        glsns = store.glsns[:5]
        reports = benchmark(run_integrity_round, store, glsns)
        assert all(r.ok for r in reports)

    def test_message_cost_report(self, benchmark, schema):
        """One check is exactly n messages ((n-1) passes + 1 done)."""

        def sweep():
            table = []
            for nodes in (2, 4, 8, 16):
                plan_obj = round_robin_plan(schema, [f"P{i}" for i in range(nodes)])
                store = build(plan_obj, records=2, seed=f"x2m-{nodes}".encode())
                net = SimNetwork()
                run_integrity_round(store, glsns=store.glsns[:1], net=net)
                table.append((nodes, net.stats.messages, net.stats.bytes))
            return table

        table = benchmark(sweep)
        print_rows(
            "X2: integrity-check traffic vs cluster size (per glsn)",
            ["nodes", "messages", "bytes"],
            table,
        )
        assert all(messages == nodes for nodes, messages, _ in table)

    def test_detection_completeness_report(self, benchmark, plan):
        """Tamper every (node, record) pair in turn: detection must be 100%,
        with zero false positives on untouched records."""

        def campaign():
            detected = 0
            false_positives = 0
            trials = 0
            for node_id in plan.node_ids:
                store = build(plan, seed=f"x2d-{node_id}".encode())
                target = store.glsns[3]
                attr = plan.assignment[node_id][0]
                store.node_store(node_id).tamper(target, attr, "TAMPERED")
                for report in IntegrityChecker(store).check_all():
                    if report.glsn == target:
                        detected += not report.ok
                        trials += 1
                    else:
                        false_positives += not report.ok
            return detected, trials, false_positives

        detected, trials, false_positives = benchmark(campaign)
        print(f"\nX2: tamper detection {detected}/{trials}, "
              f"false positives {false_positives}")
        assert detected == trials == len(plan.node_ids)
        assert false_positives == 0
