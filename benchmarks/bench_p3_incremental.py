"""Experiment P3: incremental recomputation elimination.

Measures what the epoch-keyed caches and batched integrity rings buy on
the service's steady-state workload:

* **Repeated audit queries.**  The same criterion evaluated twice over an
  unchanged log: the second run serves every projection/scan from the
  epoch-keyed caches, so it must be at least ``REPRO_BENCH_MIN_SPEEDUP``×
  faster (results asserted identical, and identical to ``REPRO_CACHE``
  disabled).
* **Incremental integrity.**  ``IntegrityChecker.check_all`` after one
  append re-folds exactly the new glsn.
* **Integrity-ring sweep.**  Messages on the simulated network for the
  legacy per-glsn ring (O(nodes × glsns)) vs the batched multi-glsn token
  and the combined single-pow ring (both exactly ``nodes`` messages,
  verified via ``NetworkStats``).

Writes ``BENCH_p3.json`` at the repo root.

Environment knobs (for CI smoke runs on tiny machines):

- ``REPRO_BENCH_ROWS``         log size                  (default 1200)
- ``REPRO_BENCH_MIN_SPEEDUP``  warm-query floor asserted (default 2.0)
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from benchmarks.conftest import print_rows
from repro.audit.executor import QueryExecutor
from repro.cache import cache_stats_snapshot, set_caching_enabled
from repro.crypto import (
    AccumulatorParams,
    DeterministicRng,
    Operation,
    TicketAuthority,
    shared_prime,
)
from repro.logstore import (
    DistributedLogStore,
    paper_fragment_plan,
    paper_table1_schema,
)
from repro.logstore.integrity import (
    IntegrityChecker,
    run_batched_integrity_round,
    run_combined_integrity_round,
    run_integrity_round,
)
from repro.net.simnet import SimNetwork
from repro.smc.base import SmcContext

ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "1200"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_p3.json"

CRITERION = "C1 > 30 and C1 < 90"


def _rows(count: int) -> list[dict]:
    rnd = random.Random(31)
    return [
        {
            "Time": f"{i // 3600:02d}:{i // 60 % 60:02d}:{i % 60:02d}/05/12/20",
            "id": f"U{rnd.randrange(1, 6)}",
            "protocl": rnd.choice(["UDP", "TCP"]),
            "Tid": f"T{1100265 + rnd.randrange(8)}",
            "C1": rnd.randrange(0, 120),
            "C2": f"{rnd.randrange(1, 900)}.{rnd.randrange(100):02d}",
            "C3": rnd.choice(["signature", "bank", "salary", "account"]),
        }
        for i in range(count)
    ]


def _build(rows: int):
    schema = paper_table1_schema()
    plan = paper_fragment_plan(schema)
    authority = TicketAuthority(b"p3-bench-master-secret-012345678")
    store = DistributedLogStore(
        plan,
        authority,
        AccumulatorParams.generate(128, DeterministicRng(b"p3-acc")),
    )
    ticket = authority.issue(
        "U1", {Operation.READ, Operation.WRITE, Operation.DELETE}
    )
    store.append_record(_rows(rows), ticket)
    ctx = SmcContext(shared_prime(64), DeterministicRng(b"p3-smc"))
    return store, ticket, QueryExecutor(store, ctx, schema)


class TestIncrementalElimination:
    def test_repeated_query_and_ring_sweep(self):
        store, ticket, executor = _build(ROWS)
        results: dict = {
            "experiment": "P3",
            "rows": ROWS,
            "criterion": CRITERION,
            "min_speedup_asserted": MIN_SPEEDUP,
        }

        # -- repeated audit query: cold vs warm vs disabled ----------------
        start = time.perf_counter()
        cold = executor.execute(CRITERION)
        t_cold = time.perf_counter() - start

        t_warm = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            warm = executor.execute(CRITERION)
            t_warm = min(t_warm, time.perf_counter() - start)
            assert warm.glsns == cold.glsns

        set_caching_enabled(False)
        start = time.perf_counter()
        off = executor.execute(CRITERION)
        t_off = time.perf_counter() - start
        set_caching_enabled(None)
        assert off.glsns == cold.glsns  # kill switch never changes results

        speedup = t_cold / t_warm if t_warm > 0 else float("inf")
        results["query"] = {
            "cold_ms": round(t_cold * 1e3, 3),
            "warm_ms": round(t_warm * 1e3, 3),
            "disabled_ms": round(t_off * 1e3, 3),
            "speedup": round(speedup, 2),
            "matches": len(cold.glsns),
        }
        print_rows(
            f"P3: repeated query {CRITERION!r} over {ROWS} rows",
            ["run", "best ms", "speedup"],
            [
                ("cold", f"{t_cold * 1e3:.2f}", "1.00x"),
                ("warm", f"{t_warm * 1e3:.2f}", f"{speedup:.1f}x"),
                ("REPRO_CACHE=off", f"{t_off * 1e3:.2f}", "—"),
            ],
        )
        assert speedup >= MIN_SPEEDUP, (
            f"warm query only {speedup:.2f}x faster, floor is {MIN_SPEEDUP}x"
        )

        # -- incremental integrity: one append folds one glsn --------------
        checker = IntegrityChecker(store)
        start = time.perf_counter()
        first = checker.check_all()
        t_full = time.perf_counter() - start
        assert all(r.ok for r in first)
        store.append(_rows(1)[0], ticket)
        misses_before = checker._report_cache.stats.misses
        start = time.perf_counter()
        second = checker.check_all()
        t_incr = time.perf_counter() - start
        assert all(r.ok for r in second) and len(second) == len(first) + 1
        refolded = checker._report_cache.stats.misses - misses_before
        assert refolded == 1  # only the appended glsn was recomputed
        results["integrity_incremental"] = {
            "full_ms": round(t_full * 1e3, 3),
            "after_append_ms": round(t_incr * 1e3, 3),
            "glsns_refolded": refolded,
        }
        print_rows(
            f"P3: IntegrityChecker.check_all over {len(second)} glsns",
            ["run", "ms", "glsns re-folded"],
            [
                ("cold", f"{t_full * 1e3:.1f}", len(first)),
                ("after 1 append", f"{t_incr * 1e3:.1f}", refolded),
            ],
        )

        # -- integrity-ring message sweep ----------------------------------
        # Ring on a small slice: the legacy ring pays n messages *per glsn*,
        # so sweep a bounded glsn count to keep smoke runs quick.
        glsns = store.glsns[: min(64, len(store.glsns))]
        n = len(store.stores)

        legacy_net = SimNetwork()
        legacy = run_integrity_round(store, glsns=glsns, net=legacy_net)
        batched_net = SimNetwork()
        batched = run_batched_integrity_round(store, glsns=glsns, net=batched_net)
        combined_net = SimNetwork()
        combined = run_combined_integrity_round(store, glsns=glsns, net=combined_net)

        assert batched == legacy  # identical verdicts
        assert combined.ok and combined.mode == "combined"
        # The acceptance bar: batched/combined rings are O(nodes) messages.
        assert batched_net.stats.messages == n
        assert combined_net.stats.messages == n
        assert legacy_net.stats.messages == n * len(glsns)

        results["ring"] = {
            "nodes": n,
            "glsns": len(glsns),
            "legacy_messages": legacy_net.stats.messages,
            "batched_messages": batched_net.stats.messages,
            "combined_messages": combined_net.stats.messages,
            "legacy_bytes": legacy_net.stats.bytes,
            "batched_bytes": batched_net.stats.bytes,
            "combined_bytes": combined_net.stats.bytes,
        }
        print_rows(
            f"P3: integrity ring over {len(glsns)} glsns, {n} nodes",
            ["mode", "messages", "bytes"],
            [
                ("per-glsn (legacy)", legacy_net.stats.messages, legacy_net.stats.bytes),
                ("batched", batched_net.stats.messages, batched_net.stats.bytes),
                ("combined", combined_net.stats.messages, combined_net.stats.bytes),
            ],
        )

        results["cache_stats"] = cache_stats_snapshot()
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
