"""Experiment P4: cost and coverage of the resilience layer.

Measures what ``repro.resilience`` buys and what it costs:

* **Overhead at drop_rate=0.**  The same audit query executed on a plain
  network vs a reliable one (acks, ids, dedup) with zero faults — the
  ISSUE's acceptance bar is < 3% wall-clock overhead.
* **Fault sweep.**  One audit query + one batched integrity ring per
  fault point (drop 0 → 0.2, plus duplication and a single partitioned
  node), recording retry/failover counters and whether the answer was
  full, degraded, or a typed failure.  Results asserted equal to the
  fault-free baseline whenever a run completes undegraded.

Writes ``BENCH_p4.json`` at the repo root.

Environment knobs (for CI smoke runs on tiny machines):

- ``REPRO_BENCH_ROWS``          log size                    (default 400)
- ``REPRO_BENCH_MAX_OVERHEAD``  drop_rate=0 ceiling asserted (default 0.03)
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from benchmarks.conftest import print_rows
from repro.audit.executor import QueryExecutor
from repro.crypto import (
    AccumulatorParams,
    DeterministicRng,
    Operation,
    TicketAuthority,
    shared_prime,
)
from repro.errors import ReproError
from repro.logstore import (
    DistributedLogStore,
    paper_fragment_plan,
    paper_table1_schema,
)
from repro.logstore.integrity import run_batched_integrity_round
from repro.net.faults import FaultPlan
from repro.net.simnet import SimNetwork
from repro.resilience import RetryPolicy
from repro.smc.base import SmcContext

ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "400"))
MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_MAX_OVERHEAD", "0.03"))
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_p4.json"

CRITERION = "C1 > 30 AND C3 = 'bank'"

FAULT_POINTS = [
    {"drop_rate": 0.0},
    {"drop_rate": 0.05},
    {"drop_rate": 0.1},
    {"drop_rate": 0.2},
    {"duplicate_rate": 0.3},
    {"drop_rate": 0.1, "duplicate_rate": 0.2},
]


def _rows(count: int) -> list[dict]:
    rnd = random.Random(41)
    return [
        {
            "Time": f"{i // 3600:02d}:{i // 60 % 60:02d}:{i % 60:02d}/05/12/20",
            "id": f"U{rnd.randrange(1, 6)}",
            "protocl": rnd.choice(["UDP", "TCP"]),
            "Tid": f"T{1100265 + rnd.randrange(8)}",
            "C1": rnd.randrange(0, 120),
            "C2": f"{rnd.randrange(1, 900)}.{rnd.randrange(100):02d}",
            "C3": rnd.choice(["signature", "bank", "salary", "account"]),
        }
        for i in range(count)
    ]


def _build(rows: int):
    schema = paper_table1_schema()
    plan = paper_fragment_plan(schema)
    authority = TicketAuthority(b"p4-bench-master-secret-012345678")
    store = DistributedLogStore(
        plan,
        authority,
        AccumulatorParams.generate(128, DeterministicRng(b"p4-acc")),
    )
    ticket = authority.issue("U1", {Operation.READ, Operation.WRITE})
    store.append_record(_rows(rows), ticket)
    return store, schema


def _executor(store, schema) -> QueryExecutor:
    # A fresh context per run: no cross-run cache reuse, clean ledgers.
    executor = QueryExecutor(
        store, SmcContext(shared_prime(64), DeterministicRng(b"p4-smc")), schema
    )
    return executor


def _best_of(fn, repeats: int = 10) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestResilienceCost:
    def test_overhead_and_fault_sweep(self):
        store, schema = _build(ROWS)
        results: dict = {
            "experiment": "P4",
            "rows": ROWS,
            "criterion": CRITERION,
            "max_overhead_asserted": MAX_OVERHEAD,
        }

        baseline = _executor(store, schema).execute(CRITERION)

        # -- overhead at drop_rate = 0 -------------------------------------
        def run_plain():
            return _executor(store, schema).execute(CRITERION, net=SimNetwork())

        def run_reliable():
            return _executor(store, schema).execute(
                CRITERION, net=SimNetwork(resilience=RetryPolicy())
            )

        assert run_reliable().glsns == baseline.glsns
        run_plain()  # warm both paths before timing
        t_plain = _best_of(run_plain)
        t_reliable = _best_of(run_reliable)
        overhead = t_reliable / t_plain - 1.0
        results["overhead"] = {
            "plain_ms": round(t_plain * 1e3, 3),
            "reliable_ms": round(t_reliable * 1e3, 3),
            "overhead_pct": round(overhead * 100, 2),
        }
        print_rows(
            f"P4: {CRITERION!r} over {ROWS} rows, zero faults",
            ["network", "best ms", "overhead"],
            [
                ("plain", f"{t_plain * 1e3:.2f}", "—"),
                ("reliable", f"{t_reliable * 1e3:.2f}", f"{overhead * 100:+.1f}%"),
            ],
        )
        assert overhead < MAX_OVERHEAD, (
            f"resilience costs {overhead:.1%} at drop_rate=0, "
            f"ceiling is {MAX_OVERHEAD:.0%}"
        )

        # -- fault sweep ----------------------------------------------------
        sweep = []
        table = []
        for spec in FAULT_POINTS:
            label = ",".join(f"{k.split('_')[0]}={v}" for k, v in spec.items())
            net = SimNetwork(
                resilience=RetryPolicy(),
                faults=FaultPlan(rng=DeterministicRng(label.encode()), **spec),
            )
            outcome = "ok"
            try:
                result = _executor(store, schema).execute(CRITERION, net=net)
                assert result.glsns == baseline.glsns
            except ReproError as exc:
                outcome = f"typed_failure:{type(exc).__name__}"
            entry = {
                "faults": spec,
                "outcome": outcome,
                "retries": net.resilience_stats["retries"],
                "duplicates_dropped": net.resilience_stats["duplicates_dropped"],
                "failovers": net.resilience_stats.get("failovers", 0),
                "delivery_failed": net.resilience_stats["delivery_failed"],
            }
            sweep.append(entry)
            table.append(
                (label, outcome, entry["retries"], entry["failovers"])
            )
        results["query_sweep"] = sweep
        print_rows(
            "P4: audit query under injected faults",
            ["faults", "outcome", "retries", "failovers"],
            table,
        )
        # The acceptance grid (drop_rate <= 0.2, no partition) must always
        # produce the correct full answer.
        assert all(e["outcome"] == "ok" for e in sweep)

        # -- single partitioned node: integrity ring degrades explicitly ---
        victim = sorted(store.stores)[2]
        faults = FaultPlan()
        faults.crash(victim)
        net = SimNetwork(resilience=RetryPolicy(), faults=faults)
        glsns = store.glsns[: min(32, len(store.glsns))]
        reports = run_batched_integrity_round(store, glsns=glsns, net=net)
        assert all(not r.ok and not r.verified for r in reports)
        assert all(r.skipped_nodes == (victim,) for r in reports)
        results["partitioned_node"] = {
            "victim": victim,
            "glsns": len(glsns),
            "verified": False,
            "skipped_nodes": [victim],
            "failovers": net.resilience_stats.get("failovers", 0),
            "retries": net.resilience_stats["retries"],
        }
        print_rows(
            f"P4: batched integrity ring with {victim} partitioned",
            ["glsns", "verified", "skipped", "failovers"],
            [(len(glsns), "no (explicit)", victim,
              net.resilience_stats.get("failovers", 0))],
        )

        # And with the partition healed, the same ring verifies fully.
        faults.recover(victim)
        healed_net = SimNetwork(resilience=RetryPolicy(), faults=faults)
        healed = run_batched_integrity_round(store, glsns=glsns, net=healed_net)
        assert all(r.ok and r.verified for r in healed)

        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
