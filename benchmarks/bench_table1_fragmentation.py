"""Experiment T1-T5: Table 1 regeneration and fragmentation throughput.

Regenerates the paper's Table 1 (global event log) and Tables 2-5 (the
per-node fragments) byte-for-byte, then measures the write path: records
fragmented and stored per second, swept over DLA cluster size.
"""

import pytest

from benchmarks.conftest import print_rows
from repro.crypto import AccumulatorParams, DeterministicRng, Operation, TicketAuthority
from repro.logstore import (
    DistributedLogStore,
    LogRecord,
    paper_fragment_plan,
    render_table,
    round_robin_plan,
)
from repro.workloads import EcommerceWorkload, paper_table1_rows

TABLE1_COLUMNS = ["Time", "id", "protocl", "Tid", "C1", "C2", "C3"]


def build_store(plan_obj):
    authority = TicketAuthority(b"t1-bench-master-secret-32-bytes!")
    store = DistributedLogStore(
        plan_obj, authority, AccumulatorParams.generate(128, DeterministicRng(b"t1"))
    )
    ticket = authority.issue("U1", {Operation.READ, Operation.WRITE})
    return store, ticket


class TestTable1Regeneration:
    def test_regenerate_tables_1_to_5(self, benchmark, schema, plan):
        def load():
            store, ticket = build_store(plan)
            return store, store.append_record(paper_table1_rows(), ticket)

        store, receipts = benchmark(load)
        records = [
            LogRecord(r.glsn, row)
            for r, row in zip(receipts, paper_table1_rows())
        ]
        print("\n--- Table 1 (global event log) ---")
        print(render_table(records, TABLE1_COLUMNS))
        for node_id in plan.node_ids:
            attrs = plan.assignment[node_id]
            frag_records = [
                LogRecord(r.glsn, store.node_store(node_id).local_fragment(r.glsn).values)
                for r in receipts
            ]
            print(f"\n--- Table {2 + plan.node_ids.index(node_id)} "
                  f"(fragments at {node_id}) ---")
            print(render_table(frag_records, attrs))
        # Shape assertions: fragments match the paper's assignment exactly.
        frag = store.node_store("P2").local_fragment(receipts[0].glsn)
        assert frag.values == {"Tid": "T1100265", "C3": "signature"}

    def test_bench_fragment_write_path(self, benchmark, plan):
        rows = EcommerceWorkload(seed=2).flat_rows(25)

        def write_batch():
            store, ticket = build_store(plan)
            store.append_record(rows, ticket)
            return store

        store = benchmark(write_batch)
        assert len(store.glsns) == 50


class TestClusterSizeSweep:
    @pytest.mark.parametrize("nodes", [2, 4, 8])
    def test_bench_write_vs_cluster_size(self, benchmark, schema, nodes):
        plan_obj = round_robin_plan(schema, [f"P{i}" for i in range(nodes)])
        rows = EcommerceWorkload(seed=3).flat_rows(10)

        def write_batch():
            store, ticket = build_store(plan_obj)
            store.append_record(rows, ticket)
            return store

        store = benchmark(write_batch)
        assert len(store.glsns) == 20

    def test_storage_blowup_report(self, benchmark, schema):
        """Report fragment-count per record vs cluster size (linear)."""
        rows = EcommerceWorkload(seed=4).flat_rows(5)

        def sweep():
            table = []
            for nodes in (1, 2, 4, 8):
                plan_obj = round_robin_plan(schema, [f"P{i}" for i in range(nodes)])
                store, ticket = build_store(plan_obj)
                store.append_record(rows, ticket)
                fragments = sum(len(store.node_store(n)) for n in plan_obj.node_ids)
                table.append((nodes, len(store.glsns), fragments))
            return table

        table = benchmark(sweep)
        print_rows(
            "T1-T5: fragments stored vs cluster size",
            ["nodes", "records", "fragments"],
            table,
        )
        # Every node holds one fragment per record: fragments = nodes × records.
        assert all(frags == nodes * recs for nodes, recs, frags in table)
