"""Experiment P5: audit-query throughput under the concurrent scheduler.

Measures what ``repro.sched`` buys on a mixed workload of 8 concurrent
queries and what its machinery costs when concurrency is 1:

* **Throughput.**  The same 8-query mix executed serially
  (``service.query`` in a loop) vs through ``service.query_many`` at
  concurrency 8 on an identically-seeded twin deployment.  The
  acceptance bar is >= 3x queries/sec; every concurrent result is
  asserted equal, query by query, to its serial counterpart.  The mix
  repeats one criterion and shares an expensive ``C1 > C5`` cross-anchor
  predicate between two *distinct* criteria, so the speedup decomposes
  into whole-query fan-out plus subplan-level single-flight sharing —
  the big-int SMC rounds hold the GIL, so threads alone buy ~nothing.
* **Latency under load.**  p50/p95 per-query latency from the handles'
  submit-to-resolve clocks during the concurrent run.
* **Scheduler overhead.**  Distinct queries pushed one at a time through
  a 1-worker, coalescing-off scheduler vs plain ``service.query`` — the
  queue/handle/channel machinery must cost < 5% wall-clock.

Writes ``BENCH_p5.json`` at the repo root.

Environment knobs (for CI smoke runs on tiny machines):

- ``REPRO_BENCH_ROWS``          log size                     (default 120)
- ``REPRO_BENCH_MIN_SPEEDUP``   throughput bar asserted      (default 3.0)
- ``REPRO_BENCH_MAX_OVERHEAD``  concurrency-1 ceiling        (default 0.05)
- ``REPRO_BENCH_CONCURRENCY``   worker count for the mix     (default 8)

Run directly with ``python benchmarks/bench_p5_throughput.py [--smoke]``;
``--smoke`` applies tiny-machine knobs (fewer rows, relaxed bars).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # direct execution: make repo-root imports work
    for _extra in (str(_ROOT), str(_ROOT / "src")):
        if _extra not in sys.path:
            sys.path.insert(0, _extra)

from benchmarks.conftest import print_rows
from repro.core import ConfidentialAuditingService
from repro.crypto import DeterministicRng
from repro.logstore import paper_fragment_plan, paper_table1_schema
from repro.sched import QueryScheduler

ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "120"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))
MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_MAX_OVERHEAD", "0.05"))
CONCURRENCY = int(os.environ.get("REPRO_BENCH_CONCURRENCY", "8"))
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_p5.json"

# Two distinct SMC-heavy queries sharing the C1 > C5 cross predicate,
# one cheap pure-local query, mixed with repeats: 8 queries total.
QUERY_A = "C1 > C5 and C3 = 'bank'"
QUERY_B = "C1 > C5 and C2 < 400"
QUERY_C = "C3 = 'bank' or C3 = 'salary'"
MIX = [QUERY_A, QUERY_B, QUERY_A, QUERY_C, QUERY_A, QUERY_B, QUERY_A, QUERY_B]

OVERHEAD_QUERIES = [QUERY_A, QUERY_B, QUERY_C]


def _build(rows: int) -> ConfidentialAuditingService:
    """One deployment; identical seeds => identical twin services."""
    schema = paper_table1_schema()
    service = ConfidentialAuditingService(
        schema,
        paper_fragment_plan(schema),
        prime_bits=64,
        rng=DeterministicRng(b"p5-bench"),
    )
    ticket = service.register_user("p5-bench")
    for i in range(rows):
        service.log_event(
            {
                "Time": f"2004-01-{i % 28 + 1:02d}",
                "id": f"u{i % 5}",
                "EID": i,
                "Tid": f"t{i}",
                "protocl": "tcp",
                "ip": f"10.0.0.{i % 7}",
                "C": i % 3,
                "C1": (i * 13) % 100,
                "C2": (i * 29) % 1000,
                "C3": ["bank", "salary", "shop"][i % 3],
                "C4": i % 2,
                "C5": i,
            },
            ticket,
        )
    return service


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestSchedulerThroughput:
    def test_throughput_latency_and_overhead(self):
        results: dict = {
            "experiment": "P5",
            "rows": ROWS,
            "mix": MIX,
            "concurrency": CONCURRENCY,
            "min_speedup_asserted": MIN_SPEEDUP,
            "max_overhead_asserted": MAX_OVERHEAD,
        }

        # -- throughput: serial loop vs query_many on a twin ---------------
        serial_svc = _build(ROWS)
        start = time.perf_counter()
        serial = [serial_svc.query(c) for c in MIX]
        t_serial = time.perf_counter() - start

        conc_svc = _build(ROWS)
        start = time.perf_counter()
        with QueryScheduler(conc_svc, max_workers=CONCURRENCY) as sched:
            handles = [sched.submit(c) for c in MIX]
            concurrent = sched.gather(handles)
        t_conc = time.perf_counter() - start

        # Exact per-query equality with the serial ground truth.
        for i, (s, c) in enumerate(zip(serial, concurrent)):
            assert s.glsns == c.glsns, f"query #{i} ({MIX[i]!r}) diverged"
            assert s.subquery_glsns == c.subquery_glsns, f"query #{i}"
            assert s.count == c.count

        speedup = t_serial / t_conc
        latencies = [h.latency for h in handles]
        coalesced = sum(1 for h in handles if h.coalesced)
        results["throughput"] = {
            "serial_s": round(t_serial, 3),
            "concurrent_s": round(t_conc, 3),
            "speedup": round(speedup, 2),
            "serial_qps": round(len(MIX) / t_serial, 2),
            "concurrent_qps": round(len(MIX) / t_conc, 2),
            "queries_coalesced": coalesced,
            "coalesce_stats": sched.coalesce_stats(),
        }
        results["latency_under_load"] = {
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 1),
            "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 1),
            "max_ms": round(max(latencies) * 1e3, 1),
        }
        print_rows(
            f"P5: {len(MIX)} mixed queries over {ROWS} rows",
            ["mode", "wall s", "q/s", "p50 ms", "p95 ms"],
            [
                ("serial loop", f"{t_serial:.2f}", f"{len(MIX) / t_serial:.2f}",
                 "—", "—"),
                (f"sched x{CONCURRENCY}", f"{t_conc:.2f}",
                 f"{len(MIX) / t_conc:.2f}",
                 f"{_percentile(latencies, 0.5) * 1e3:.0f}",
                 f"{_percentile(latencies, 0.95) * 1e3:.0f}"),
            ],
        )
        assert speedup >= MIN_SPEEDUP, (
            f"concurrent throughput is {speedup:.2f}x serial, "
            f"bar is {MIN_SPEEDUP:.1f}x"
        )

        # -- overhead at concurrency 1 -------------------------------------
        # Coalescing off: every query recomputes, so the comparison times
        # the queue/handle/channel machinery itself, not cache hits.
        base_svc = _build(ROWS)

        def run_serial():
            for criterion in OVERHEAD_QUERIES:
                base_svc.query(criterion)

        sched_svc = _build(ROWS)
        one = QueryScheduler(sched_svc, max_workers=1, coalesce=False)
        try:

            def run_scheduled():
                for criterion in OVERHEAD_QUERIES:
                    one.submit(criterion).result(timeout=300)

            run_serial()  # warm both paths before timing
            run_scheduled()
            t_plain = _best_of(run_serial)
            t_sched = _best_of(run_scheduled)
        finally:
            one.shutdown()
        overhead = t_sched / t_plain - 1.0
        results["overhead_at_1"] = {
            "plain_ms": round(t_plain * 1e3, 1),
            "scheduled_ms": round(t_sched * 1e3, 1),
            "overhead_pct": round(overhead * 100, 2),
        }
        print_rows(
            "P5: scheduler machinery cost at concurrency 1 (coalesce off)",
            ["path", "best ms", "overhead"],
            [
                ("service.query", f"{t_plain * 1e3:.1f}", "—"),
                ("scheduler x1", f"{t_sched * 1e3:.1f}",
                 f"{overhead * 100:+.1f}%"),
            ],
        )
        assert overhead < MAX_OVERHEAD, (
            f"scheduler costs {overhead:.1%} at concurrency 1, "
            f"ceiling is {MAX_OVERHEAD:.0%}"
        )

        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str]) -> int:
    import pytest

    if "--smoke" in argv:
        os.environ.setdefault("REPRO_BENCH_ROWS", "48")
        os.environ.setdefault("REPRO_BENCH_MIN_SPEEDUP", "2.0")
        os.environ.setdefault("REPRO_BENCH_MAX_OVERHEAD", "0.25")
    return pytest.main([__file__, "-q", "-s"])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
