"""Experiment F5: secure equality checking (§3.2, "Figure 5" in-text).

Compares the paper's two equality constructions — the blind-TTP
randomized-mapping route and the commutative singleton-intersection route
— on latency, messages and modexp, and sweeps the ranking/compare
primitives built on the same blinding idea (§3.3).
"""

import pytest

from benchmarks.conftest import print_rows
from repro.crypto import DeterministicRng
from repro.net.simnet import SimNetwork
from repro.smc.base import SmcContext
from repro.smc.comparison import secure_compare
from repro.smc.equality import secure_equality, secure_equality_commutative
from repro.smc.ranking import secure_ranking


class TestSecureEquality:
    def test_bench_blind_ttp_route(self, benchmark, prime64):
        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"f5a"))
            return secure_equality(ctx, ("A", "salary-record"), ("B", "salary-record"))

        result = benchmark(run)
        assert result.any_value is True

    def test_bench_commutative_route(self, benchmark, prime64):
        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"f5b"))
            return secure_equality_commutative(
                ctx, ("A", "salary-record"), ("B", "salary-record")
            )

        result = benchmark(run)
        assert result.any_value is True

    def test_route_comparison_report(self, benchmark, prime64):
        """The blind-TTP route wins on every cost axis (the paper's point
        about TTP coordination reducing cost)."""

        def measure():
            ctx_a = SmcContext(prime64, DeterministicRng(b"f5c"))
            net_a = SimNetwork()
            secure_equality(ctx_a, ("A", 123), ("B", 123), net=net_a)
            ctx_b = SmcContext(prime64, DeterministicRng(b"f5d"))
            net_b = SimNetwork()
            secure_equality_commutative(ctx_b, ("A", 123), ("B", 123), net=net_b)
            return [
                ("blind-TTP (randomized map)", net_a.stats.messages,
                 net_a.stats.bytes, ctx_a.crypto_ops.modexp),
                ("commutative (singleton ∩ₛ)", net_b.stats.messages,
                 net_b.stats.bytes, ctx_b.crypto_ops.modexp),
            ]

        table = benchmark(measure)
        print_rows(
            "F5: equality route comparison",
            ["route", "messages", "bytes", "modexp"],
            table,
        )
        ttp_row, comm_row = table
        assert ttp_row[1] <= comm_row[1]
        assert ttp_row[3] < comm_row[3]

    def test_bench_secure_compare(self, benchmark, prime64):
        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"f5e"))
            return secure_compare(ctx, ("A", 170), ("B", 2400))

        result = benchmark(run)
        assert result.any_value == "lt"

    @pytest.mark.parametrize("parties", [2, 4, 8, 16])
    def test_bench_ranking_vs_parties(self, benchmark, prime64, parties):
        values = {f"P{i}": (i * 37) % 101 for i in range(parties)}

        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"f5f"))
            return secure_ranking(ctx, values)

        result = benchmark(run)
        assert result.any_value["n"] == parties

    def test_ranking_traffic_linear_report(self, benchmark, prime64):
        def sweep():
            table = []
            for parties in (2, 4, 8, 16):
                ctx = SmcContext(prime64, DeterministicRng(b"f5g"))
                net = SimNetwork()
                values = {f"P{i}": i + 1 for i in range(parties)}
                secure_ranking(ctx, values, net=net)
                table.append((parties, net.stats.messages, net.stats.bytes))
            return table

        table = benchmark(sweep)
        print_rows(
            "F5/§3.3: blind-TTP ranking traffic (linear in n)",
            ["parties", "messages", "bytes"],
            table,
        )
        # Exactly 2 messages per party: submit + verdict.
        assert all(messages == 2 * parties for parties, messages, _ in table)
