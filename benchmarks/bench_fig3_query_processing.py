"""Experiment F3: distributed confidential query processing (Figure 3).

Reproduces the figure's decomposition — a criterion splitting into local
subqueries (SQ0, SQ1, ...) and cross subqueries (SQ013-style) conjoined by
a glsn-keyed secure set intersection — and measures query latency and SMC
traffic as a function of the local/cross predicate mix.
"""

import pytest

from benchmarks.conftest import print_rows
from repro.audit.executor import QueryExecutor
from repro.audit.planner import plan_query
from repro.crypto import DeterministicRng
from repro.net.simnet import SimNetwork
from repro.smc.base import SmcContext

# The Figure 3 shape: Q = SQ0 ∧ SQ1 ∧ SQ23-style cross subquery.
FIG3_CRITERION = "(C1 > 30 or protocl = 'TCP') and Tid = 'T1100265' and C1 < C2"


@pytest.fixture()
def executor(schema, loaded_store, prime64):
    store, _ = loaded_store
    return QueryExecutor(
        store, SmcContext(prime64, DeterministicRng(b"f3")), schema
    )


class TestFigure3Decomposition:
    def test_decomposition_matches_figure(self, benchmark, schema, plan):
        qplan = benchmark(plan_query, FIG3_CRITERION, schema, plan)
        print("\n--- Figure 3 decomposition ---")
        print(qplan.describe())
        labels = [sq.label for sq in qplan.subqueries]
        kinds = [sq.is_cross for sq in qplan.subqueries]
        assert kinds == [False, False, True]
        assert labels[2].startswith("SQ1")  # cross subquery named by nodes
        assert qplan.needs_final_intersection

    def test_bench_fig3_query(self, benchmark, executor):
        result = benchmark(executor.execute, FIG3_CRITERION)
        assert result.plan.t == 1

    @pytest.mark.parametrize(
        "label,criterion",
        [
            ("all-local", "C1 > 30 and protocl = 'UDP'"),
            ("one-cross", "C1 > 30 and Tid = id"),
            ("cross-order", "C1 < C2"),
        ],
    )
    def test_bench_query_mix(self, benchmark, executor, label, criterion):
        result = benchmark(executor.execute, criterion)
        assert result.glsns is not None

    def test_traffic_vs_mix_report(self, benchmark, executor):
        """Local predicates are free; each cross predicate pays SMC traffic."""

        def sweep():
            table = []
            for label, criterion in [
                ("local", "C1 > 30"),
                ("local∧local", "C1 > 30 and protocl = 'UDP'"),
                ("local∧local (2 nodes)", "C1 > 30 and Tid = 'T1100265'"),
                ("cross-eq", "Tid = id"),
                ("cross-order", "C1 < C2"),
                ("fig3", FIG3_CRITERION),
            ]:
                result = executor.execute(criterion)
                table.append(
                    (label, result.plan.s, result.plan.t, result.messages, result.bytes)
                )
            return table

        table = benchmark(sweep)
        print_rows(
            "F3: query traffic vs predicate mix",
            ["query", "s", "t", "messages", "bytes"],
            table,
        )
        by_label = {row[0]: row for row in table}
        assert by_label["local"][3] == 0            # no traffic at all
        assert by_label["cross-eq"][3] > 0          # SMC ring engaged
        assert by_label["cross-order"][3] > by_label["cross-eq"][3]
