"""Experiment F6: the undeniable evidence chain (Figure 6).

Measures chain growth (evidence creation + verification per join), full
chain re-verification cost vs membership size, and the double-invitation
detector.
"""

import pytest

from benchmarks.conftest import print_rows
from repro.cluster.authority import CredentialAuthority
from repro.cluster.evidence import ServiceTerms, find_double_invitations, make_evidence
from repro.cluster.membership import DlaMembership
from repro.crypto import DeterministicRng
from repro.crypto.schnorr import SchnorrGroup


@pytest.fixture(scope="module")
def authority():
    group = SchnorrGroup.generate(128, DeterministicRng(b"f6-group"))
    return CredentialAuthority(group, DeterministicRng(b"f6-ca"))


def grow_chain(authority, size, rng):
    creds = [authority_enroll(authority, f"node-{size}-{i}") for i in range(size)]
    membership = DlaMembership(authority, creds[0])
    for inviter, invitee in zip(creds, creds[1:]):
        membership.admit_direct(
            inviter, invitee, ["support:attr"], ["store:attr"], rng
        )
    return membership, creds


_enrolled = set()


def authority_enroll(authority, name):
    # Enrolment is once-per-identity; salt with a counter across benchmark
    # rounds.
    index = 0
    while (name, index) in _enrolled:
        index += 1
    _enrolled.add((name, index))
    return authority.enroll(f"{name}.{index}")


class TestEvidenceChain:
    def test_bench_single_join(self, benchmark, authority, rng):
        inviter = authority_enroll(authority, "inviter")

        def join_once():
            invitee = authority_enroll(authority, "invitee")
            terms = ServiceTerms(("p",), ("s",))
            piece = make_evidence(authority, inviter, invitee, terms, index=1, rng=rng)
            from repro.cluster.evidence import verify_evidence

            verify_evidence(authority, piece)
            return piece

        piece = benchmark(join_once)
        assert piece.index == 1

    @pytest.mark.parametrize("size", [4, 8, 16])
    def test_bench_chain_verification(self, benchmark, authority, rng, size):
        membership, _ = grow_chain(authority, size, rng)
        benchmark(membership.verify)
        assert membership.size == size

    def test_bench_double_invitation_detection(self, benchmark, authority, rng):
        membership, creds = grow_chain(authority, 6, rng)
        rogue_target = authority_enroll(authority, "rogue-target")
        rogue = make_evidence(
            authority, creds[0], rogue_target,
            ServiceTerms(("x",), ("y",)), index=2, rng=rng,
        )
        pieces = list(membership.chain.pieces) + [rogue]
        cheaters = benchmark(find_double_invitations, pieces)
        assert cheaters == [creds[0].pseudonym]

    def test_chain_cost_report(self, benchmark, authority, rng):
        import time

        def sweep():
            table = []
            for size in (2, 4, 8, 16):
                start = time.perf_counter()
                membership, _ = grow_chain(authority, size, rng)
                grow = time.perf_counter() - start
                start = time.perf_counter()
                membership.verify()
                verify = time.perf_counter() - start
                table.append(
                    (size, len(membership.chain.pieces),
                     f"{grow * 1000:.1f}", f"{verify * 1000:.1f}")
                )
            return table

        table = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_rows(
            "F6: evidence chain growth/verification (ms)",
            ["members", "pieces", "grow ms", "verify ms"],
            table,
        )
        assert all(pieces == members - 1 for members, pieces, _, _ in table)
