"""Experiment F1: the centralized auditing model (Figure 1) vs the DLA.

The paper's argument: centralized auditing is operationally simple but
"puts the absolute trust to the single auditor".  We measure both sides of
the trade: the centralized model is faster per query (no SMC), while its
store confidentiality is zero and the DLA's is positive.
"""

import pytest

from benchmarks.conftest import print_rows
from repro.audit.confidentiality import store_confidentiality
from repro.audit.executor import QueryExecutor
from repro.baseline.centralized import CentralizedAuditor
from repro.crypto import DeterministicRng
from repro.logstore.records import LogRecord
from repro.smc.base import SmcContext
from repro.workloads import EcommerceWorkload, paper_table1_rows

QUERIES = [
    "C1 > 30",
    "C1 > 30 and Tid = 'T1100265'",
    "C1 < C2",
]


@pytest.fixture()
def centralized(schema, loaded_store):
    store, ticket = loaded_store
    auditor = CentralizedAuditor(schema)
    for glsn in store.glsns:
        auditor.ingest(store.read_record(glsn, ticket))
    return auditor


class TestCentralizedBaseline:
    def test_bench_centralized_queries(self, benchmark, centralized):
        def run_all():
            return [centralized.execute(q) for q in QUERIES]

        results = benchmark(run_all)
        assert all(isinstance(r, list) for r in results)

    def test_bench_dla_queries(self, benchmark, schema, loaded_store, prime64):
        store, _ = loaded_store
        executor = QueryExecutor(
            store, SmcContext(prime64, DeterministicRng(b"f1")), schema
        )

        def run_all():
            return [executor.execute(q).glsns for q in QUERIES]

        results = benchmark(run_all)
        assert all(isinstance(r, list) for r in results)

    def test_results_identical_but_confidentiality_differs(
        self, benchmark, schema, plan, loaded_store, centralized, prime64
    ):
        """The two models agree on answers; only the trust model differs."""
        store, _ = loaded_store
        executor = QueryExecutor(
            store, SmcContext(prime64, DeterministicRng(b"f1b")), schema
        )

        def compare():
            return [
                (q, executor.execute(q).glsns == centralized.execute(q))
                for q in QUERIES
            ]

        agreement = benchmark(compare)
        assert all(same for _, same in agreement)

        record = LogRecord(1, paper_table1_rows()[0])
        dla_score = store_confidentiality(record, schema, plan).value
        table = [
            ("centralized (Fig. 1)", f"{centralized.store_confidentiality:.3f}"),
            ("DLA cluster (Fig. 2)", f"{dla_score:.3f}"),
        ]
        print_rows("F1: store confidentiality", ["model", "C_store"], table)
        assert centralized.store_confidentiality == 0.0
        assert dla_score > 0.0
