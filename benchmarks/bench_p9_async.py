"""Experiment P9: the async event-loop core vs the thread-pool scheduler.

Three measurements, all against identically-seeded twin deployments with
every concurrent answer asserted equal to the serial ground truth:

* **In-flight ladder (1/8/64/256).**  A burst of ``c`` mixed queries
  arrives at once; the thread path sizes a ``QueryScheduler`` pool to
  the burst (what ``query_many(max_concurrency=c)`` does), the async
  path admits the burst into ``AsyncQueryScheduler`` unchanged.  Wall
  clock is best-of-``REPRO_BENCH_REPEATS``.  The SMC work is GIL-bound
  big-int math, so the event loop's win here is the scheduling
  machinery it *doesn't* pay — thread stacks, convoy switches, pool
  spin-up — and it grows with the rung.
* **Fan-out cap.**  The thread scheduler at its shipped configuration
  (4 workers, queue depth 64) saturates when a 256-query burst arrives;
  the async scheduler admits and resolves all 256 with no tuning at
  all.  This is the structural claim: in-flight capacity is no longer a
  worker-count knob.
* **Pipelined-vs-lockstep ring rounds.**  The §4.1 integrity rings for
  K disjoint glsns, run lockstep (one ring at a time, virtual times
  summing) vs pipelined (``run_integrity_rounds_pipelined``: all rings
  in flight on one event loop, virtual-time makespan = the slowest
  ring).  Reports are asserted value-identical; the makespan gain is
  ~K× and the bar asserts >= 2x.

Writes ``BENCH_p9.json`` at the repo root.

Environment knobs (for CI smoke runs on tiny machines):

- ``REPRO_BENCH_ROWS``            log size                    (default 48)
- ``REPRO_BENCH_LADDER``          comma rungs                 (default 1,8,64,256)
- ``REPRO_BENCH_REPEATS``         best-of repeats per rung    (default 3)
- ``REPRO_BENCH_MIN_SPEEDUP_64``  async/thread bar at c=64    (default 1.05)
- ``REPRO_BENCH_MIN_PIPELINE``    virtual-time makespan bar   (default 2.0)
- ``REPRO_BENCH_SUSTAIN``         in-flight sustain target    (default 256)

Run directly with ``python benchmarks/bench_p9_async.py [--smoke]``;
``--smoke`` applies tiny-machine knobs (fewer rows, shorter ladder,
relaxed bars).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # direct execution: make repo-root imports work
    for _extra in (str(_ROOT), str(_ROOT / "src")):
        if _extra not in sys.path:
            sys.path.insert(0, _extra)

from benchmarks.conftest import print_rows
from repro.aio import AsyncQueryScheduler
from repro.core import ConfidentialAuditingService
from repro.crypto import (
    AccumulatorParams,
    DeterministicRng,
    Operation,
    TicketAuthority,
)
from repro.errors import SchedulerSaturatedError
from repro.logstore import (
    DistributedLogStore,
    paper_fragment_plan,
    paper_table1_schema,
)
from repro.net.simnet import SimNetwork
from repro.sched import QueryScheduler
from repro.workloads import paper_table1_rows

ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "48"))
LADDER = [
    int(c) for c in os.environ.get("REPRO_BENCH_LADDER", "1,8,64,256").split(",")
]
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
MIN_SPEEDUP_64 = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP_64", "1.05"))
MIN_PIPELINE = float(os.environ.get("REPRO_BENCH_MIN_PIPELINE", "2.0"))
SUSTAIN = int(os.environ.get("REPRO_BENCH_SUSTAIN", "256"))
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_p9.json"

# The P5 mix: two SMC-heavy criteria sharing the C1 > C5 cross anchor,
# one cheap pure-local criterion, plus a fourth so a cycled burst never
# degenerates to one repeated query.
MIX = [
    "C1 > C5 and C3 = 'bank'",
    "C1 > C5 and C2 < 400",
    "C3 = 'bank' or C3 = 'salary'",
    "C2 < 400 and C3 = 'salary'",
]


def _build(rows: int) -> ConfidentialAuditingService:
    """One deployment; identical seeds => identical twin services."""
    schema = paper_table1_schema()
    service = ConfidentialAuditingService(
        schema,
        paper_fragment_plan(schema),
        prime_bits=64,
        rng=DeterministicRng(b"p9-bench"),
    )
    ticket = service.register_user("p9-bench")
    for i in range(rows):
        service.log_event(
            {
                "Time": f"2004-01-{i % 28 + 1:02d}",
                "id": f"u{i % 5}",
                "EID": i,
                "Tid": f"t{i}",
                "protocl": "tcp",
                "ip": f"10.0.0.{i % 7}",
                "C": i % 3,
                "C1": (i * 13) % 100,
                "C2": (i * 29) % 1000,
                "C3": ["bank", "salary", "shop"][i % 3],
                "C4": i % 2,
                "C5": i,
            },
            ticket,
        )
    return service


def _burst(c: int) -> list[str]:
    return (MIX * (c // len(MIX) + 1))[:c]


class TestAsyncLadder:
    def test_ladder_fanout_cap_and_pipelining(self):
        results: dict = {
            "experiment": "P9",
            "rows": ROWS,
            "mix": MIX,
            "ladder": LADDER,
            "repeats": REPEATS,
            "min_speedup_64_asserted": MIN_SPEEDUP_64,
            "min_pipeline_asserted": MIN_PIPELINE,
        }

        # Serial ground truth, one deployment per criterion evaluation.
        serial_svc = _build(ROWS)
        expected = {criterion: serial_svc.query(criterion) for criterion in MIX}
        serial_svc.close()

        # -- in-flight ladder ----------------------------------------------
        # Coalescing off on both sides: every query in the burst executes,
        # so the rung times fan-out machinery, not cache hits.
        rungs = []
        speedup_at = {}
        for c in LADDER:
            batch = _burst(c)

            def run_thread() -> float:
                svc = _build(ROWS)
                start = time.perf_counter()
                with QueryScheduler(
                    svc, max_workers=c, queue_depth=c, coalesce=False
                ) as sched:
                    handles = [sched.submit(q) for q in batch]
                    answers = sched.gather(handles)
                elapsed = time.perf_counter() - start
                for criterion, got in zip(batch, answers):
                    assert got.glsns == expected[criterion].glsns
                svc.close()
                return elapsed

            def run_async() -> float:
                svc = _build(ROWS)
                start = time.perf_counter()
                with AsyncQueryScheduler(
                    svc, max_inflight=c, coalesce=False
                ) as sched:
                    handles = [sched.submit(q) for q in batch]
                    answers = sched.gather(handles)
                elapsed = time.perf_counter() - start
                for criterion, got in zip(batch, answers):
                    assert got.glsns == expected[criterion].glsns
                svc.close()
                return elapsed

            t_thread = min(run_thread() for _ in range(REPEATS))
            t_async = min(run_async() for _ in range(REPEATS))
            speedup = t_thread / t_async
            speedup_at[c] = speedup
            rungs.append(
                {
                    "inflight": c,
                    "thread_s": round(t_thread, 3),
                    "async_s": round(t_async, 3),
                    "thread_qps": round(c / t_thread, 1),
                    "async_qps": round(c / t_async, 1),
                    "speedup": round(speedup, 2),
                }
            )
        results["ladder_runs"] = rungs
        print_rows(
            f"P9: burst of c queries over {ROWS} rows (best of {REPEATS})",
            ["in-flight", "thread s", "async s", "thread q/s", "async q/s", "x"],
            [
                (str(r["inflight"]), f"{r['thread_s']:.3f}", f"{r['async_s']:.3f}",
                 f"{r['thread_qps']:.0f}", f"{r['async_qps']:.0f}",
                 f"{r['speedup']:.2f}")
                for r in rungs
            ],
        )
        if 64 in speedup_at:
            assert speedup_at[64] >= MIN_SPEEDUP_64, (
                f"async is {speedup_at[64]:.2f}x the thread pool at 64 "
                f"in flight, bar is {MIN_SPEEDUP_64:.2f}x"
            )

        # -- fan-out cap: shipped thread config vs untuned async -----------
        # Fail-fast admission (timeout 0) exposes the shipped in-flight
        # capacity: 4 workers + a 64-deep queue saturate well under the
        # burst, where the async scheduler admits everything untouched.
        svc = _build(ROWS)
        admitted = 0
        try:
            with QueryScheduler(svc, admission_timeout=0.0) as sched:
                handles = []
                try:
                    for q in _burst(SUSTAIN):
                        handles.append(sched.submit(q))
                        admitted += 1
                except SchedulerSaturatedError:
                    pass
                sched.gather(handles)
        finally:
            svc.close()
        assert admitted < SUSTAIN, (
            "expected the shipped thread-pool config to saturate below "
            f"{SUSTAIN} in-flight queries (admitted {admitted})"
        )

        svc = _build(ROWS)
        start = time.perf_counter()
        with AsyncQueryScheduler(svc) as sched:
            handles = [sched.submit(q) for q in _burst(SUSTAIN)]
            answers = sched.gather(handles)
        t_sustain = time.perf_counter() - start
        for criterion, got in zip(_burst(SUSTAIN), answers):
            assert got.glsns == expected[criterion].glsns
        svc.close()
        results["fanout_cap"] = {
            "target_inflight": SUSTAIN,
            "thread_default_admitted": admitted,
            "async_admitted": SUSTAIN,
            "async_wall_s": round(t_sustain, 3),
        }
        print_rows(
            f"P9: {SUSTAIN}-query burst, no tuning",
            ["scheduler", "admitted", "wall s"],
            [
                ("thread (shipped: 4 workers, queue 64)", str(admitted), "—"),
                ("async event loop", str(SUSTAIN), f"{t_sustain:.2f}"),
            ],
        )

        # -- pipelined vs lockstep integrity rings (virtual time) ----------
        authority = TicketAuthority(b"p9-bench-master-secret-0123456789")
        store = DistributedLogStore(
            paper_fragment_plan(paper_table1_schema()),
            authority,
            AccumulatorParams.generate(128, DeterministicRng(b"p9-acc")),
        )
        ticket = authority.issue("U1", {Operation.READ, Operation.WRITE})
        receipts = store.append_record(paper_table1_rows(), ticket)
        glsns = [r.glsn for r in receipts]

        from repro.aio import AsyncSimNetwork
        from repro.logstore.integrity import (
            run_integrity_round,
            run_integrity_rounds_pipelined,
        )

        lockstep_reports = []
        lockstep_vt = 0.0
        for glsn in glsns:
            net = SimNetwork()
            lockstep_reports.extend(
                run_integrity_round(store, glsns=[glsn], net=net)
            )
            lockstep_vt += net.now

        ring_nets: list[AsyncSimNetwork] = []

        def factory(glsn: int) -> AsyncSimNetwork:
            net = AsyncSimNetwork()
            ring_nets.append(net)
            return net

        pipelined_reports = asyncio.run(
            run_integrity_rounds_pipelined(store, glsns=glsns, net_factory=factory)
        )
        makespan = max(net.now for net in ring_nets)
        assert pipelined_reports == lockstep_reports
        assert all(r.verified for r in pipelined_reports)
        gain = lockstep_vt / makespan
        results["pipelined_rings"] = {
            "glsns": len(glsns),
            "lockstep_virtual_s": round(lockstep_vt, 4),
            "pipelined_makespan_s": round(makespan, 4),
            "gain": round(gain, 2),
        }
        print_rows(
            f"P9: {len(glsns)} integrity rings, virtual-time makespan",
            ["mode", "virtual s", "gain"],
            [
                ("lockstep (sum of rings)", f"{lockstep_vt:.3f}", "—"),
                ("pipelined (slowest ring)", f"{makespan:.3f}", f"{gain:.1f}x"),
            ],
        )
        assert gain >= MIN_PIPELINE, (
            f"pipelined rings gain {gain:.2f}x in virtual-time makespan, "
            f"bar is {MIN_PIPELINE:.1f}x"
        )

        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str]) -> int:
    import pytest

    if "--smoke" in argv:
        os.environ.setdefault("REPRO_BENCH_ROWS", "12")
        os.environ.setdefault("REPRO_BENCH_LADDER", "1,8,64")
        os.environ.setdefault("REPRO_BENCH_REPEATS", "2")
        os.environ.setdefault("REPRO_BENCH_MIN_SPEEDUP_64", "0.5")
        os.environ.setdefault("REPRO_BENCH_SUSTAIN", "128")
    return pytest.main([__file__, "-q", "-s"])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
