"""Experiment X4: confidential distributed data mining (abstract, ref [20]).

Measures the intersection-size primitive and cross-node association
mining: cost vs record count and vs value-domain size, and the privacy
property that sub-threshold associations are never opened.
"""

import pytest

from benchmarks.conftest import print_rows
from repro.crypto import (
    AccumulatorParams,
    DeterministicRng,
    Operation,
    TicketAuthority,
)
from repro.logstore import DistributedLogStore
from repro.mining import mine_cross_associations, secure_intersection_size
from repro.net.simnet import SimNetwork
from repro.smc.base import SmcContext


def build_store(plan, records: int, domain: int, seed: bytes):
    """protocl (P3) drawn from `domain` values, C3 (P2) correlated."""
    rng = DeterministicRng(seed)
    authority = TicketAuthority(b"x4-bench-master-secret-32bytes!!")
    store = DistributedLogStore(
        plan, authority, AccumulatorParams.generate(128, rng)
    )
    ticket = authority.issue("U1", {Operation.READ, Operation.WRITE})
    rows = []
    for _ in range(records):
        left = rng.randbelow(domain)
        # 80% correlated, 20% noise.
        right = left if rng.random() < 0.8 else rng.randbelow(domain)
        rows.append({"protocl": f"proto-{left}", "C3": f"label-{right}"})
    store.append_record(rows, ticket)
    return store


class TestIntersectionSizePrimitive:
    @pytest.mark.parametrize("size", [8, 32, 128])
    def test_bench_size_protocol(self, benchmark, prime64, size):
        left = list(range(size))
        right = list(range(size // 2, size + size // 2))

        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"x4a"))
            return secure_intersection_size(ctx, ("A", left), ("B", right))

        result = benchmark(run)
        assert result.any_value == size - size // 2

    def test_size_protocol_cost_report(self, benchmark, prime64):
        def sweep():
            table = []
            for size in (8, 32, 128):
                ctx = SmcContext(prime64, DeterministicRng(b"x4b"))
                net = SimNetwork()
                secure_intersection_size(
                    ctx, ("A", list(range(size))), ("B", list(range(size))),
                    net=net,
                )
                table.append(
                    (size, net.stats.messages, net.stats.bytes,
                     ctx.crypto_ops.modexp)
                )
            return table

        table = benchmark(sweep)
        print_rows(
            "X4: intersection-size protocol cost",
            ["set size", "messages", "bytes", "modexp"],
            table,
        )
        # Constant 4 messages; modexp = 4·|S| (2 encryptions per side).
        assert all(messages == 4 for _, messages, _, _ in table)
        assert all(modexp == 4 * size for size, _, _, modexp in table)


class TestAssociationMining:
    @pytest.mark.parametrize("records", [40, 120])
    def test_bench_mining_vs_records(self, benchmark, plan, prime64, records):
        store = build_store(plan, records, domain=3, seed=b"x4c")

        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"x4d"))
            return mine_cross_associations(
                store, ctx, "protocl", "C3", min_support=3
            )

        rules = benchmark(run)
        assert rules  # the 80% correlation must surface

    def test_mining_report(self, benchmark, plan, prime64):
        store = build_store(plan, 100, domain=3, seed=b"x4e")

        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"x4f"))
            net = SimNetwork()
            rules = mine_cross_associations(
                store, ctx, "protocl", "C3", min_support=5, net=net
            )
            return rules, net.stats.messages, net.stats.bytes

        rules, messages, bytes_ = benchmark(run)
        table = [
            (f"{r.attribute_a}={r.value_a}", f"{r.attribute_b}={r.value_b}",
             r.support, f"{r.confidence:.2f}")
            for r in rules
        ]
        print_rows(
            "X4: qualifying associations (support >= 5)",
            ["antecedent", "consequent", "support", "confidence"],
            table,
        )
        print(f"protocol traffic: {messages} messages, {bytes_} bytes")
        # The injected correlation: proto-i => label-i dominates.
        diagonal = [r for r in rules if str(r.value_a)[-1] == str(r.value_b)[-1]]
        assert len(diagonal) >= 3
        for rule in diagonal:
            assert rule.confidence > 0.5

    def test_bench_domain_sweep(self, benchmark, plan, prime64):
        """Candidate pairs grow with the value-domain product."""

        def sweep():
            table = []
            for domain in (2, 4, 8):
                store = build_store(
                    plan, 60, domain=domain, seed=f"x4g{domain}".encode()
                )
                ctx = SmcContext(prime64, DeterministicRng(b"x4h"))
                net = SimNetwork()
                mine_cross_associations(
                    store, ctx, "protocl", "C3", min_support=2, net=net
                )
                table.append((domain, net.stats.messages))
            return table

        table = benchmark(sweep)
        print_rows(
            "X4: mining traffic vs value-domain size",
            ["domain", "messages"],
            table,
        )
        assert table[-1][1] > table[0][1]
