"""Experiment F7: the three-way join handshake (Figure 7).

Measures the networked PP → SC → RE exchange: latency, the fixed 3-message
cost, and the token/evidence verification work on both sides.
"""

import itertools

import pytest

from benchmarks.conftest import print_rows
from repro.cluster.authority import CredentialAuthority
from repro.cluster.join import run_join_handshake
from repro.crypto import DeterministicRng
from repro.crypto.schnorr import SchnorrGroup
from repro.net.simnet import SimNetwork


@pytest.fixture(scope="module")
def authority():
    group = SchnorrGroup.generate(128, DeterministicRng(b"f7-group"))
    return CredentialAuthority(group, DeterministicRng(b"f7-ca"))


_counter = itertools.count()


def fresh_pair(authority):
    i = next(_counter)
    return (
        authority.enroll(f"f7-inviter-{i}"),
        authority.enroll(f"f7-invitee-{i}"),
    )


class TestJoinHandshake:
    def test_bench_enrolment(self, benchmark, authority):
        def enroll():
            i = next(_counter)
            return authority.enroll(f"f7-enrol-{i}")

        creds = benchmark(enroll)
        assert authority.verify_token(creds.token)

    def test_bench_full_handshake(self, benchmark, authority):
        rng = DeterministicRng(b"f7-hs")

        def handshake():
            inviter, invitee = fresh_pair(authority)
            net = SimNetwork()
            return run_join_handshake(
                net, authority, "Py", inviter, "Px", invitee,
                proposal=["support:Time"], services=["store:Time"],
                chain_index=1, rng=rng,
            ), net

        (piece, net) = benchmark(handshake)
        assert piece.index == 1

    def test_message_budget_report(self, benchmark, authority):
        """The handshake is exactly three messages (PP, SC, RE)."""
        rng = DeterministicRng(b"f7-msg")

        def run():
            inviter, invitee = fresh_pair(authority)
            net = SimNetwork()
            run_join_handshake(
                net, authority, "Py", inviter, "Px", invitee,
                proposal=["support:Time", "support:Tid"],
                services=["store:Time", "store:Tid", "audit:intersect"],
                chain_index=1, rng=rng,
            )
            return [
                (kind, count, net.stats.bytes_by_kind[kind])
                for kind, count in sorted(net.stats.by_kind.items())
            ]

        table = benchmark(run)
        print_rows("F7: join handshake messages", ["phase", "count", "bytes"], table)
        assert [row[0] for row in table] == ["join.pp", "join.re", "join.sc"]
        assert all(count == 1 for _, count, _ in table)
        # RE carries the evidence piece: it is the heaviest phase.
        bytes_by_phase = {row[0]: row[2] for row in table}
        assert bytes_by_phase["join.re"] > bytes_by_phase["join.pp"]
