"""Experiment P1: parallel bulk exponentiation and wire batching.

The protocols' dominant cost is modexp over a shared prime (paper §3:
every element is encrypted once per party).  CPython holds the GIL during
big-int ``pow``, so the only way to use more than one core is a process
pool — this experiment measures the crossover and the speedup of
:class:`~repro.perf.engine.ProcessPoolEngine` over
:class:`~repro.perf.engine.SerialEngine` on ``encrypt_set``, verifies the
results are byte-identical, and compares convoy (coalesced) vs pipelined
frame counts for the ring protocol.

Writes ``BENCH_p1.json`` at the repo root with the measured rows.

Environment knobs (for CI smoke runs on tiny machines):

- ``REPRO_BENCH_SIZE``   set cardinality |S|        (default 512)
- ``REPRO_BENCH_BITS``   Pohlig-Hellman prime bits  (default 512)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import print_rows
from repro.crypto import DeterministicRng, shared_prime
from repro.crypto.pohlig_hellman import PohligHellmanCipher
from repro.net.simnet import SimNetwork
from repro.obs import NOOP_TRACER, TelemetryHub, Tracer
from repro.perf.engine import AutoEngine, ProcessPoolEngine, SerialEngine
from repro.smc.base import SmcContext
from repro.smc.intersection import secure_set_intersection

SIZE = int(os.environ.get("REPRO_BENCH_SIZE", "512"))
BITS = int(os.environ.get("REPRO_BENCH_BITS", "512"))
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_p1.json"


def _timed(fn, repeat: int = 3) -> tuple[float, object]:
    """Best-of-``repeat`` wall time and the last result."""
    best, result = float("inf"), None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


class TestParallelExponentiation:
    def test_speedup_and_equivalence(self):
        cores = os.cpu_count() or 1
        prime = shared_prime(BITS)
        cipher = PohligHellmanCipher.generate(prime, DeterministicRng(b"p1"))
        values = [pow(3, i + 2, prime) for i in range(SIZE)]

        serial = SerialEngine()
        t_serial, out_serial = _timed(lambda: cipher.encrypt_set(values, engine=serial))

        rows = [("serial", 1, f"{t_serial * 1e3:.1f}", "1.00x")]
        results = {
            "experiment": "P1",
            "set_size": SIZE,
            "prime_bits": BITS,
            "cores": cores,
            "serial_ms": round(t_serial * 1e3, 3),
            "engines": [],
        }

        with ProcessPoolEngine() as pool:
            # Warm the pool so fork cost isn't billed to the first sample.
            pool.pow_many(values[:1], cipher.key.e, prime)
            t_pool, out_pool = _timed(lambda: cipher.encrypt_set(values, engine=pool))
            speedup = t_serial / t_pool
            rows.append(
                ("process", pool.workers, f"{t_pool * 1e3:.1f}", f"{speedup:.2f}x")
            )
            results["engines"].append(
                {
                    "name": "process",
                    "workers": pool.workers,
                    "ms": round(t_pool * 1e3, 3),
                    "speedup": round(speedup, 3),
                }
            )

            # Hard guarantee: the pool reorders nothing and computes the
            # exact same group elements.
            assert out_pool == out_serial
            assert cipher.decrypt_set(out_pool, engine=pool) == values

        # Auto engine: big workloads fan out (given cores), tiny ones stay
        # serial — both byte-identical to serial.
        auto = AutoEngine()
        assert cipher.encrypt_set(values, engine=auto) == out_serial
        assert auto.select(values[:4], cipher.key.e, prime).name == "serial"
        results["auto_small_input_stays_serial"] = True

        print_rows(
            f"P1: encrypt_set |S|={SIZE}, {BITS}-bit prime, {cores} cores",
            ["engine", "workers", "best ms", "speedup"],
            rows,
        )

        if cores >= 4 and SIZE >= 512 and BITS >= 512:
            # The headline claim: >=2x on 4+ cores for benchmark-sized work.
            assert speedup >= 2.0, f"expected >=2x speedup, got {speedup:.2f}x"
        results["speedup_asserted"] = cores >= 4 and SIZE >= 512 and BITS >= 512

        tracing = self._tracing_overhead(cipher, values, serial)
        results["tracing"] = tracing
        print_rows(
            "P1: tracing overhead on encrypt_set (span per call)",
            ["tracer", "best ms", "overhead"],
            [
                ("noop", f"{tracing['noop_ms']:.1f}", "—"),
                ("real", f"{tracing['traced_ms']:.1f}",
                 f"{tracing['overhead_pct']:+.2f}%"),
            ],
        )

        propagation = self._propagation_overhead()
        results["propagation"] = propagation
        print_rows(
            "P1: trace-context propagation overhead on full ring runs",
            ["mode", "best ms", "overhead"],
            [
                ("untraced", f"{propagation['noop_ms']:.1f}", "—"),
                ("propagated", f"{propagation['traced_ms']:.1f}",
                 f"{propagation['overhead_pct']:+.2f}%"),
            ],
        )

        convoy = self._frame_comparison()
        results["frames"] = convoy
        print_rows(
            "P1: ring frames, pipelined vs convoy (n=4)",
            ["mode", "messages", "bytes"],
            [
                ("pipelined", convoy["pipelined_messages"], convoy["pipelined_bytes"]),
                ("convoy", convoy["convoy_messages"], convoy["convoy_bytes"]),
            ],
        )

        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")

    @staticmethod
    def _tracing_overhead(cipher, values, engine) -> dict:
        """Guard: an enabled tracer must cost < 5% on the encrypt_set hot
        path (span per call, cost attributes per span) vs the no-op tracer.

        Each timed sample runs enough encrypt_set calls to take a
        non-trivial slice of wall clock, so the ratio survives scheduler
        jitter at CI smoke scale (REPRO_BENCH_SIZE=64).
        """
        inner = max(1, 4096 // len(values))

        def run(tracer):
            out = None
            for _ in range(inner):
                with tracer.span("bench.encrypt", {"items": len(values)}) as span:
                    out = cipher.encrypt_set(values, engine=engine)
                    if tracer.enabled:
                        span.set_attributes({"modexp": len(values)})
            return out

        t_noop, out_noop = _timed(lambda: run(NOOP_TRACER), repeat=5)

        tracer = Tracer()

        def traced():
            tracer.reset()
            return run(tracer)

        t_traced, out_traced = _timed(traced, repeat=5)
        assert out_traced == out_noop  # tracing never perturbs results
        overhead = t_traced / t_noop - 1.0
        assert overhead < 0.05, (
            f"tracing overhead {overhead:.2%} exceeds the 5% budget "
            f"(noop {t_noop * 1e3:.2f}ms, traced {t_traced * 1e3:.2f}ms)"
        )
        return {
            "noop_ms": round(t_noop * 1e3, 3),
            "traced_ms": round(t_traced * 1e3, 3),
            "overhead_pct": round(overhead * 100, 3),
            "spans_per_sample": inner,
        }

    @staticmethod
    def _propagation_overhead() -> dict:
        """Guard: full cross-node propagation — trace ids stamped into
        every frame, every delivery wrapped in a flight-recorder span,
        modexp attributed per node (collection round off) — must cost
        < 5% on complete ring-protocol runs vs the untraced path.

        This is the guard for the always-on deployment mode: the
        per-message work (two codec fields + one bounded-ring span per
        delivery) has to stay in the noise next to the protocol's modexp.
        """
        prime = shared_prime(max(BITS, 128))
        sets = {f"P{i}": [f"x{j}" for j in range(i, i + 48)] for i in range(4)}
        inner = 3

        def run(telemetry):
            result = None
            for _ in range(inner):
                ctx = SmcContext(
                    prime, DeterministicRng(b"p1-prop"), telemetry=telemetry
                )
                net = SimNetwork(telemetry=telemetry)
                result = secure_set_intersection(ctx, sets, net=net)
            return sorted(result.any_value)

        t_noop, out_noop = _timed(lambda: run(None), repeat=5)

        def traced():
            # Fresh hub per sample: the spans accumulate in bounded
            # per-node rings exactly as a live deployment would.
            hub = TelemetryHub(tracer=Tracer())
            with hub.tracer.span("bench.query"):
                return run(hub)

        t_traced, out_traced = _timed(traced, repeat=5)
        assert out_traced == out_noop  # propagation never perturbs results
        overhead = t_traced / t_noop - 1.0
        assert overhead < 0.05, (
            f"propagation overhead {overhead:.2%} exceeds the 5% budget "
            f"(untraced {t_noop * 1e3:.2f}ms, traced {t_traced * 1e3:.2f}ms)"
        )
        return {
            "noop_ms": round(t_noop * 1e3, 3),
            "traced_ms": round(t_traced * 1e3, 3),
            "overhead_pct": round(overhead * 100, 3),
            "runs_per_sample": inner,
        }

    @staticmethod
    def _frame_comparison() -> dict:
        """Convoy coalescing must cut ring frame count without changing results."""
        prime = shared_prime(64)
        n = 4
        sets = {f"P{i}": [f"x{j}" for j in range(i, i + 8)] for i in range(n)}
        out = {}
        for label, coalesce in (("pipelined", False), ("convoy", True)):
            ctx = SmcContext(prime, DeterministicRng(b"p1-frames"))
            net = SimNetwork()
            result = secure_set_intersection(ctx, sets, net=net, coalesce=coalesce)
            out[f"{label}_messages"] = net.stats.messages
            out[f"{label}_bytes"] = net.stats.bytes
            out[f"{label}_result"] = sorted(result.any_value)
        assert out["convoy_result"] == out["pipelined_result"]
        assert out["convoy_messages"] < out["pipelined_messages"]
        return out
