"""Experiment P8: durable storage — sustained ingest and crash recovery.

The durable backend (``repro.store``) must earn its keep on two axes:

* **Sustained ingest throughput.**  Rows are streamed into a
  ``DurableDistributedLogStore`` through the batched write path
  (``append_batch``: one WAL sync per batch instead of per row) under
  each of the three fsync policies (``off``/``batch``/``always``), and
  the §4.1 integrity audit is asserted clean *after* every ladder rung —
  throughput only counts if the accumulators and hash chain stayed
  current while the journal kept up.  The headline is rows/s under the
  default ``batch`` policy.
* **Bounded crash recovery.**  The ``batch``-policy store is then killed
  without a checkpoint (WAL file handles dropped, no clean close), so
  recovery must replay every journaled mutation from the segments.
  Recovery wall time is *asserted* below ``REPRO_BENCH_MAX_RECOVERY_S``
  and the recovered store must answer byte-identically over the full
  pre-crash log and pass the post-recovery integrity audit.
* **Streaming ingest with a standing query** (informational).  A full
  ``ConfidentialAuditingService`` over a durable store ingests the same
  rows via ``append_stream`` with one standing query registered, showing
  the per-epoch delta-evaluation cost riding on top of raw ingest.

Writes ``BENCH_p8.json`` at the repo root.

Environment knobs (for CI smoke runs on tiny machines):

- ``REPRO_BENCH_ROWS``            rows ingested per rung    (default 240)
- ``REPRO_BENCH_MAX_RECOVERY_S``  recovery bound asserted   (default 30.0)
- ``REPRO_BENCH_STREAM_ROWS``     service streaming rows    (default 60)

Run directly with ``python benchmarks/bench_p8_durability.py [--smoke]``;
``--smoke`` applies tiny-machine knobs (fewer rows, relaxed bound).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if __name__ == "__main__":  # direct execution: make repo-root imports work
    for _extra in (str(_ROOT), str(_ROOT / "src")):
        if _extra not in sys.path:
            sys.path.insert(0, _extra)

from benchmarks.conftest import print_rows
from repro.core import ConfidentialAuditingService
from repro.crypto import (
    AccumulatorParams,
    DeterministicRng,
    Operation,
    TicketAuthority,
)
from repro.logstore import paper_fragment_plan, paper_table1_schema
from repro.logstore.integrity import IntegrityChecker
from repro.store import StoreConfig, open_durable_store
from repro.workloads import paper_table1_rows

ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "240"))
MAX_RECOVERY_S = float(os.environ.get("REPRO_BENCH_MAX_RECOVERY_S", "30.0"))
STREAM_ROWS = int(os.environ.get("REPRO_BENCH_STREAM_ROWS", "60"))
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_p8.json"

BATCH_SIZE = 16
FSYNC_LADDER = ["off", "batch", "always"]


def _rows(count: int) -> list[dict]:
    base = paper_table1_rows()
    out = []
    for i in range(count):
        row = dict(base[i % len(base)])
        row["Tid"] = f"T{i:07d}"  # unique transaction id per record
        out.append(row)
    return out


def _build(directory: Path, policy: str):
    schema = paper_table1_schema()
    authority = TicketAuthority(b"p8-bench-master-secret-0123456789")
    params = AccumulatorParams.generate(128, DeterministicRng(b"p8-acc"))
    config = StoreConfig(fsync=policy, compact=False)
    store, report = open_durable_store(
        paper_fragment_plan(schema), authority, params, directory, config=config
    )
    assert report is None, "fresh directory must not trigger recovery"
    ticket = authority.issue("U1", {Operation.READ, Operation.WRITE})
    return store, authority, params, ticket


def _ingest(store, ticket, rows: list[dict]) -> dict:
    """Stream ``rows`` through the batched write path; return the rung."""
    start = time.perf_counter()
    receipts = []
    for lo in range(0, len(rows), BATCH_SIZE):
        receipts.extend(store.append_batch(rows[lo : lo + BATCH_SIZE], ticket))
    elapsed = time.perf_counter() - start
    # Integrity must be *current* at full ingest speed: every fragment
    # verifies against its accumulator anchor right now, not eventually.
    reports = IntegrityChecker(store).check_all()
    assert all(r.ok for r in reports), "integrity audit failed after ingest"
    wal_records = sum(w.records_appended for w in store.wals.values())
    return {
        "rows": len(rows),
        "seconds": round(elapsed, 3),
        "rows_per_s": round(len(rows) / elapsed, 1),
        "wal_records": wal_records,
        "integrity_ok": True,
        "receipts": receipts,
    }


def _crash(store) -> None:
    """Drop the store without checkpointing: handles closed, WALs kept."""
    if store.compactor is not None:
        store.compactor.stop()
        store.compactor = None
    for wal in store.wals.values():
        wal.close()
    store._closed = True


class TestDurability:
    def test_ingest_recovery_and_streaming(self):
        results: dict = {
            "experiment": "P8",
            "rows": ROWS,
            "batch_size": BATCH_SIZE,
            "max_recovery_s_asserted": MAX_RECOVERY_S,
        }
        rows = _rows(ROWS)

        # -- fsync ladder: rows/s per policy, integrity current ------------
        ladder: list[dict] = []
        table = []
        for policy in FSYNC_LADDER:
            with tempfile.TemporaryDirectory(prefix=f"p8-{policy}-") as tmp:
                store, _, _, ticket = _build(Path(tmp), policy)
                rung = _ingest(store, ticket, rows)
                rung.pop("receipts")
                rung["fsync"] = policy
                ladder.append(rung)
                table.append(
                    (policy, f"{rung['rows']}", f"{rung['seconds']:.2f}",
                     f"{rung['rows_per_s']:.0f}", f"{rung['wal_records']}")
                )
                store.close()
        results["fsync_ladder"] = ladder
        batch_rung = next(r for r in ladder if r["fsync"] == "batch")
        results["ingest"] = {
            "fsync": "batch",
            "rows_per_s": batch_rung["rows_per_s"],
            "integrity_current": True,
        }
        print_rows(
            f"P8: batched ingest of {ROWS} rows (batch={BATCH_SIZE}), "
            f"integrity audited clean after every rung",
            ["fsync", "rows", "seconds", "rows/s", "wal records"],
            table,
        )

        # -- crash recovery: full WAL replay, bounded and byte-identical ---
        with tempfile.TemporaryDirectory(prefix="p8-recover-") as tmp:
            directory = Path(tmp)
            store, authority, params, ticket = _build(directory, "batch")
            rung = _ingest(store, ticket, rows)
            receipts = rung.pop("receipts")
            expected_glsns = store.glsns
            _crash(store)

            start = time.perf_counter()
            recovered, report = open_durable_store(
                paper_fragment_plan(paper_table1_schema()),
                authority,
                params,
                directory,
                config=StoreConfig(fsync="batch", compact=False),
            )
            recovery_wall = time.perf_counter() - start
            assert report is not None and report.audit_ok
            assert recovered.glsns == expected_glsns
            # Byte-identical answers over the full pre-crash log.
            for receipt, row in zip(receipts, rows):
                assert recovered.read_record(receipt.glsn, ticket).values == row
            assert recovery_wall <= MAX_RECOVERY_S, (
                f"recovery took {recovery_wall:.2f}s, bound is {MAX_RECOVERY_S}s"
            )
            results["recovery"] = {
                "seconds": round(recovery_wall, 3),
                "reported_seconds": round(report.duration_seconds, 3),
                "wal_records_replayed": report.wal_records,
                "rows_recovered": len(recovered.glsns),
                "rows_per_s": round(len(recovered.glsns) / recovery_wall, 1),
                "audit_ok": report.audit_ok,
                "rolled_back": list(report.rolled_back),
            }
            recovered.close()
        print_rows(
            f"P8: crash recovery (no checkpoint, full WAL replay; "
            f"bound {MAX_RECOVERY_S:.0f}s asserted)",
            ["rows", "wal records", "seconds", "rows/s", "audit"],
            [(
                f"{results['recovery']['rows_recovered']}",
                f"{results['recovery']['wal_records_replayed']}",
                f"{results['recovery']['seconds']:.2f}",
                f"{results['recovery']['rows_per_s']:.0f}",
                "clean",
            )],
        )

        # -- streaming ingest through the service, standing query live -----
        schema = paper_table1_schema()
        with tempfile.TemporaryDirectory(prefix="p8-stream-") as tmp:
            service = ConfidentialAuditingService(
                schema,
                paper_fragment_plan(schema),
                prime_bits=64,
                rng=DeterministicRng(b"p8-stream"),
                store_dir=tmp,
                store_config=StoreConfig(fsync="off", compact=False),
                obs_from_env=False,
            )
            try:
                ticket = service.register_user("p8-stream")
                deltas: list = []
                service.register_standing_query(
                    "id = 'U1'", tenant="p8-auditor", on_delta=deltas.append
                )
                stream = iter(_rows(STREAM_ROWS))
                start = time.perf_counter()
                service.append_stream(stream, ticket, batch_size=BATCH_SIZE)
                elapsed = time.perf_counter() - start
                snapshot = service.standing.snapshot()
                matched = sum(len(d.added) for d in deltas)
                results["streaming"] = {
                    "rows": STREAM_ROWS,
                    "seconds": round(elapsed, 3),
                    "rows_per_s": round(STREAM_ROWS / elapsed, 1),
                    "standing_epochs": snapshot["epoch"],
                    "deltas_pushed": len(deltas),
                    "glsns_matched": matched,
                }
                assert matched > 0, "standing query never matched a row"
            finally:
                service.close()
        print_rows(
            f"P8: append_stream of {STREAM_ROWS} rows with one standing "
            f"query (per-epoch delta evaluation included)",
            ["rows", "seconds", "rows/s", "epochs", "deltas"],
            [(
                f"{STREAM_ROWS}",
                f"{results['streaming']['seconds']:.2f}",
                f"{results['streaming']['rows_per_s']:.0f}",
                f"{results['streaming']['standing_epochs']}",
                f"{results['streaming']['deltas_pushed']}",
            )],
        )

        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str]) -> int:
    import pytest

    if "--smoke" in argv:
        os.environ.setdefault("REPRO_BENCH_ROWS", "48")
        os.environ.setdefault("REPRO_BENCH_MAX_RECOVERY_S", "60.0")
        os.environ.setdefault("REPRO_BENCH_STREAM_ROWS", "24")
    return pytest.main([__file__, "-q", "-s"])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
