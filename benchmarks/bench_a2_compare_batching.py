"""Ablation A2: per-glsn vs batched blind-TTP comparison.

Cross-node *order* predicates (``C1 < C2``) need one private comparison
per common glsn.  The naive transcription of §3.3 runs a 4-message TTP
session per glsn; batching submits all blinded values in one message per
party.  Same leakage per comparison, drastically fewer messages — the kind
of engineering the paper leaves implicit.
"""

import pytest

from benchmarks.conftest import print_rows
from repro.audit.executor import QueryExecutor
from repro.crypto import DeterministicRng
from repro.smc.base import SmcContext


def build_executor(loaded_store, schema, prime64, batch: bool, seed: bytes):
    store, _ = loaded_store
    return QueryExecutor(
        store,
        SmcContext(prime64, DeterministicRng(seed)),
        schema,
        batch_compare=batch,
    )


class TestCompareBatching:
    def test_bench_per_glsn(self, benchmark, loaded_store, schema, prime64):
        executor = build_executor(loaded_store, schema, prime64, False, b"a2p")
        result = benchmark(executor.execute, "C1 < C2")
        assert result.glsns

    def test_bench_batched(self, benchmark, loaded_store, schema, prime64):
        executor = build_executor(loaded_store, schema, prime64, True, b"a2b")
        result = benchmark(executor.execute, "C1 < C2")
        assert result.glsns

    def test_ablation_report(self, benchmark, loaded_store, schema, prime64):
        def measure():
            per_glsn = build_executor(loaded_store, schema, prime64, False, b"a2r1")
            costly = per_glsn.execute("C1 < C2")
            batched = build_executor(loaded_store, schema, prime64, True, b"a2r2")
            cheap = batched.execute("C1 < C2")
            assert cheap.glsns == costly.glsns
            return [
                ("per-glsn sessions", costly.messages, costly.bytes),
                ("batched vectors", cheap.messages, cheap.bytes),
            ]

        table = benchmark(measure)
        print_rows(
            "A2: cross-order comparison batching (105 common glsns)",
            ["mode", "messages", "bytes"],
            table,
        )
        per_row, batch_row = table
        assert batch_row[1] < per_row[1] / 10
