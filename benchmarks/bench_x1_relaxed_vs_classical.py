"""Experiment X1: relaxed SMC vs classical circuit MPC (§1, §3).

The paper's core quantitative claim: generic multiparty protocols are
"too costly to be useful for practical systems", and relaxing the model
(selected observers, blind TTP, permitted secondary leakage) buys large
savings.  We implement both sides and measure the gap on the operations
the auditing predicates need: equality and less-than over 32-bit values.

Expected shape: the relaxed primitives beat two-party GMW by >=10x in
messages and wall time.
"""

import time

import pytest

from benchmarks.conftest import print_rows
from repro.baseline.circuits import encode_inputs, equality_circuit, less_than_circuit
from repro.baseline.gmw import GmwEvaluator
from repro.crypto import DeterministicRng
from repro.crypto.schnorr import SchnorrGroup
from repro.net.simnet import SimNetwork
from repro.smc.base import SmcContext
from repro.smc.comparison import secure_compare
from repro.smc.equality import secure_equality

BITS = 32


@pytest.fixture(scope="module")
def group():
    return SchnorrGroup.generate(128, DeterministicRng(b"x1-group"))


class TestRelaxedVsClassical:
    def test_bench_gmw_equality(self, benchmark, group):
        circuit = equality_circuit(BITS)
        inputs = encode_inputs(123456, 123456, BITS)

        def run():
            evaluator = GmwEvaluator(group, DeterministicRng(b"x1a"))
            return evaluator.evaluate(circuit, inputs)

        assert benchmark(run) == [1]

    def test_bench_relaxed_equality(self, benchmark, prime64):
        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"x1b"))
            return secure_equality(ctx, ("A", 123456), ("B", 123456))

        assert benchmark(run).any_value is True

    def test_bench_gmw_less_than(self, benchmark, group):
        circuit = less_than_circuit(BITS)
        inputs = encode_inputs(1000, 2000, BITS)

        def run():
            evaluator = GmwEvaluator(group, DeterministicRng(b"x1c"))
            return evaluator.evaluate(circuit, inputs)

        assert benchmark(run) == [1]

    def test_bench_relaxed_less_than(self, benchmark, prime64):
        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"x1d"))
            return secure_compare(ctx, ("A", 1000), ("B", 2000))

        assert benchmark(run).any_value == "lt"

    def test_gap_report(self, benchmark, group, prime64):
        """The X1 headline table: cost of equality and comparison under
        both models, and the resulting speedup factors."""

        def measure():
            rows = []
            # GMW equality.
            evaluator = GmwEvaluator(group, DeterministicRng(b"x1e"))
            start = time.perf_counter()
            evaluator.evaluate(
                equality_circuit(BITS), encode_inputs(5, 5, BITS)
            )
            gmw_eq_time = time.perf_counter() - start
            rows.append(
                ("equality", "GMW circuit", evaluator.cost.messages,
                 evaluator.cost.bytes, evaluator.cost.modexp,
                 f"{gmw_eq_time * 1000:.1f}")
            )
            # Relaxed equality.
            ctx = SmcContext(prime64, DeterministicRng(b"x1f"))
            net = SimNetwork()
            start = time.perf_counter()
            secure_equality(ctx, ("A", 5), ("B", 5), net=net)
            rel_eq_time = time.perf_counter() - start
            rows.append(
                ("equality", "relaxed (blind TTP)", net.stats.messages,
                 net.stats.bytes, ctx.crypto_ops.modexp,
                 f"{rel_eq_time * 1000:.1f}")
            )
            # GMW less-than.
            evaluator2 = GmwEvaluator(group, DeterministicRng(b"x1g"))
            start = time.perf_counter()
            evaluator2.evaluate(
                less_than_circuit(BITS), encode_inputs(5, 9, BITS)
            )
            gmw_lt_time = time.perf_counter() - start
            rows.append(
                ("less-than", "GMW circuit", evaluator2.cost.messages,
                 evaluator2.cost.bytes, evaluator2.cost.modexp,
                 f"{gmw_lt_time * 1000:.1f}")
            )
            # Relaxed comparison.
            ctx2 = SmcContext(prime64, DeterministicRng(b"x1h"))
            net2 = SimNetwork()
            start = time.perf_counter()
            secure_compare(ctx2, ("A", 5), ("B", 9), net=net2)
            rel_lt_time = time.perf_counter() - start
            rows.append(
                ("less-than", "relaxed (blind TTP)", net2.stats.messages,
                 net2.stats.bytes, ctx2.crypto_ops.modexp,
                 f"{rel_lt_time * 1000:.1f}")
            )
            return rows, (gmw_eq_time, rel_eq_time, gmw_lt_time, rel_lt_time)

        rows, times = benchmark(measure)
        print_rows(
            f"X1: relaxed SMC vs classical GMW ({BITS}-bit operands)",
            ["operation", "protocol", "messages", "bytes", "modexp", "ms"],
            rows,
        )
        gmw_eq, rel_eq, gmw_lt, rel_lt = times
        eq_speedup = gmw_eq / max(rel_eq, 1e-9)
        lt_speedup = gmw_lt / max(rel_lt, 1e-9)
        print(f"speedup: equality {eq_speedup:.0f}x, less-than {lt_speedup:.0f}x")
        # The paper's claim, as shape assertions.
        gmw_eq_msgs = rows[0][2]
        rel_eq_msgs = rows[1][2]
        assert gmw_eq_msgs >= 10 * rel_eq_msgs
        assert rows[2][2] >= 10 * rows[3][2]
        assert eq_speedup > 10 and lt_speedup > 10

    @pytest.mark.parametrize("bits", [8, 16, 32, 64])
    def test_bench_gmw_scaling_in_bits(self, benchmark, group, bits):
        """GMW cost grows linearly in operand width; relaxed cost does not."""
        circuit = equality_circuit(bits)
        inputs = encode_inputs(3, 3, bits)

        def run():
            evaluator = GmwEvaluator(group, DeterministicRng(b"x1i"))
            evaluator.evaluate(circuit, inputs)
            return evaluator.cost

        cost = benchmark(run)
        assert cost.ot_count == bits - 1
