"""Experiment E10-E13: the §5 confidentiality metrics (eq. 10-13).

Regenerates the closed-form metrics and sweeps their drivers:

* C_store (eq. 10) vs the undefined-attribute fraction v/w and the
  cluster size (through the coverage count u);
* C_auditing (eq. 11) vs the cross-predicate fraction t/s;
* C_query (eq. 12) and C_DLA (eq. 13) over a generated query/log workload.
"""

import pytest

from benchmarks.conftest import print_rows
from repro.audit.confidentiality import (
    auditing_confidentiality,
    dla_confidentiality,
    query_confidentiality,
    store_confidentiality,
)
from repro.logstore.fragmentation import round_robin_plan
from repro.logstore.records import LogRecord
from repro.logstore.schema import Attribute, AttributeKind, GlobalSchema
from repro.workloads import WorkloadGenerator, paper_table1_rows


def schema_with_undefined(defined: int, undefined: int) -> GlobalSchema:
    attrs = [Attribute(f"a{i}", AttributeKind.INTEGER) for i in range(defined)]
    attrs += [Attribute(f"C{i + 1}", AttributeKind.UNDEFINED) for i in range(undefined)]
    return GlobalSchema(attrs)


class TestStoreConfidentiality:
    def test_bench_store_metric(self, benchmark, schema, plan):
        record = LogRecord(1, paper_table1_rows()[0])
        result = benchmark(store_confidentiality, record, schema, plan)
        assert result.value == pytest.approx(12 / 7)

    def test_sweep_undefined_fraction(self, benchmark):
        """eq. 10: more undefined attributes => higher C_store."""

        def sweep():
            table = []
            for undefined in (0, 2, 4, 6, 8):
                sch = schema_with_undefined(8 - undefined, undefined)
                pl = round_robin_plan(sch, ["P0", "P1", "P2", "P3"])
                values = {name: 1 for name in sch.names}
                sc = store_confidentiality(LogRecord(1, values), sch, pl)
                table.append((f"{undefined}/8", sc.w, sc.v, sc.u, f"{sc.value:.3f}"))
            return table

        table = benchmark(sweep)
        print_rows(
            "E10: C_store vs undefined-attribute fraction (v/w)",
            ["v/w", "w", "v", "u", "C_store"],
            table,
        )
        scores = [float(row[4]) for row in table]
        assert scores == sorted(scores)
        assert scores[0] == 0.0

    def test_sweep_cluster_size(self, benchmark):
        """eq. 10: wider fragmentation (bigger u) => higher C_store."""
        sch = schema_with_undefined(4, 4)
        values = {name: 1 for name in sch.names}

        def sweep():
            table = []
            for nodes in (1, 2, 4, 8):
                pl = round_robin_plan(sch, [f"P{i}" for i in range(nodes)])
                sc = store_confidentiality(LogRecord(1, values), sch, pl)
                table.append((nodes, sc.u, f"{sc.value:.3f}"))
            return table

        table = benchmark(sweep)
        print_rows("E10: C_store vs cluster size", ["nodes", "u", "C_store"], table)
        scores = [float(row[2]) for row in table]
        assert scores == sorted(scores)


class TestAuditingConfidentiality:
    def test_sweep_cross_fraction(self, benchmark, schema, plan):
        """eq. 11: all-local single-pred = 1/2; all-cross = 1."""
        criteria = [
            ("0/1 cross", "C1 > 5"),
            ("0/2 cross", "C1 > 5 and protocl = 'UDP'"),
            ("1/2 cross", "C1 < C2 and protocl = 'UDP'"),
            ("1/1 cross", "C1 < C2"),
            ("2/2 cross", "C1 < C2 and Tid = id"),
        ]

        def sweep():
            return [
                (label, f"{auditing_confidentiality(text, schema, plan):.3f}")
                for label, text in criteria
            ]

        table = benchmark(sweep)
        print_rows("E11: C_auditing vs cross fraction", ["mix", "C_auditing"], table)
        scores = [float(v) for _, v in table]
        assert scores[0] == 0.5
        assert scores[-1] == 1.0
        assert scores == sorted(scores)


class TestComposedMetrics:
    def test_bench_query_confidentiality(self, benchmark, schema, plan):
        record = LogRecord(1, paper_table1_rows()[0])
        value = benchmark(
            query_confidentiality, "C1 < C2", record, schema, plan
        )
        assert value == pytest.approx(1.0 * 12 / 7)

    def test_bench_dla_over_generated_workload(self, benchmark, schema, plan):
        """eq. 13 over a generated 30-query workload on Table-1-shaped logs."""
        generator = WorkloadGenerator(seed=17)
        records = [
            LogRecord(i, row) for i, row in enumerate(paper_table1_rows())
        ]
        criteria = []
        for _ in range(30):
            criteria.append(
                generator.criterion_mix(schema, plan, clauses=2, cross_fraction=0.5)
            )
        workload = [
            (criterion, records[i % len(records)])
            for i, criterion in enumerate(criteria)
        ]
        value = benchmark(dla_confidentiality, workload, schema, plan)
        print(f"\nE13: C_DLA over 30 generated queries = {value:.4f}")
        assert value > 0.0
