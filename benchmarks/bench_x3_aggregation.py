"""Experiment X3: secure aggregation primitives (§3.4-§3.5).

Measures secure union, secure sum (plain/weighted/thresholded) and the
end-to-end confidential aggregates of the audit executor ("number of
transactions, total of volumes" — the paper's §1 examples).
"""

import pytest

from benchmarks.conftest import print_rows
from repro.audit.executor import QueryExecutor
from repro.crypto import DeterministicRng
from repro.net.simnet import SimNetwork
from repro.smc.base import SmcContext
from repro.smc.sum_ import secure_sum, secure_weighted_sum
from repro.smc.union_ import secure_set_union


class TestSecureUnion:
    @pytest.mark.parametrize("parties", [2, 4, 8])
    def test_bench_union_vs_parties(self, benchmark, prime64, parties):
        sets = {
            f"P{i}": list(range(i * 8, i * 8 + 12)) for i in range(parties)
        }

        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"x3a"))
            return secure_set_union(ctx, sets)

        result = benchmark(run)
        expected = sorted(set().union(*(set(s) for s in sets.values())))
        assert result.any_value == expected


class TestSecureSum:
    @pytest.mark.parametrize("parties", [2, 8, 32])
    def test_bench_sum_vs_parties(self, benchmark, prime64, parties):
        values = {f"P{i}": i * 11 for i in range(parties)}

        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"x3b"))
            return secure_sum(ctx, values)

        result = benchmark(run)
        assert result.any_value == sum(values.values())

    def test_bench_weighted_sum(self, benchmark, prime64):
        values = {f"P{i}": i + 1 for i in range(8)}
        weights = {f"P{i}": 10**i % 97 for i in range(8)}

        def run():
            ctx = SmcContext(prime64, DeterministicRng(b"x3c"))
            return secure_weighted_sum(ctx, values, weights)

        result = benchmark(run)
        assert result.any_value == sum(values[p] * weights[p] for p in values)

    def test_sum_traffic_quadratic_report(self, benchmark, prime64):
        """Share dealing is all-to-all: messages grow as n(n-1) + n·(n-1)."""

        def sweep():
            table = []
            for parties in (2, 4, 8, 16):
                ctx = SmcContext(prime64, DeterministicRng(b"x3d"))
                net = SimNetwork()
                values = {f"P{i}": i for i in range(parties)}
                secure_sum(ctx, values, net=net)
                table.append((parties, net.stats.messages, net.stats.bytes))
            return table

        table = benchmark(sweep)
        print_rows(
            "X3: secure sum traffic vs parties",
            ["parties", "messages", "bytes"],
            table,
        )
        assert all(
            messages == 2 * parties * (parties - 1)
            for parties, messages, _ in table
        )

    def test_bench_threshold_k_effect(self, benchmark, prime64):
        """Lower k = fewer F-shares needed; traffic unchanged, so this is a
        robustness knob, not a cost knob (asserted)."""

        def run():
            out = []
            for k in (2, 8):
                ctx = SmcContext(prime64, DeterministicRng(b"x3e"))
                net = SimNetwork()
                values = {f"P{i}": i for i in range(8)}
                secure_sum(ctx, values, k=k, net=net)
                out.append((k, net.stats.messages))
            return out

        table = benchmark(run)
        assert table[0][1] == table[1][1]


class TestExecutorAggregates:
    """The paper's §1 examples over the loaded store."""

    @pytest.fixture()
    def executor(self, schema, loaded_store, prime64):
        store, _ = loaded_store
        return QueryExecutor(
            store, SmcContext(prime64, DeterministicRng(b"x3f")), schema
        )

    def test_bench_transaction_count(self, benchmark, executor):
        result = benchmark(
            executor.aggregate, "count", "Tid", "C3 = 'order'"
        )
        assert result.value > 0

    def test_bench_total_volume(self, benchmark, executor):
        result = benchmark(executor.aggregate, "sum", "C1")
        assert result.value > 0

    def test_bench_max_amount(self, benchmark, executor):
        result = benchmark(executor.aggregate, "max", "C2")
        assert result.value is not None

    def test_aggregate_report(self, benchmark, executor):
        def collect():
            return [
                ("count of orders", executor.aggregate("count", "Tid", "C3 = 'order'").value),
                ("total volume (C1)", executor.aggregate("sum", "C1").value),
                ("max amount (C2)", executor.aggregate("max", "C2").value),
                ("min amount (C2)", executor.aggregate("min", "C2").value),
            ]

        table = benchmark(collect)
        print_rows("X3: confidential aggregates (§1 examples)", ["statistic", "value"], table)
        values = dict(table)
        assert values["max amount (C2)"] >= values["min amount (C2)"]
