#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

Stdlib only (the CI image installs nothing for docs).  Checks every
inline link ``[text](target)`` in the documentation set:

* **relative targets** must exist on disk (resolved against the linking
  file's directory; a trailing ``#anchor`` must match a heading of the
  target markdown file, GitHub slug rules);
* **absolute URLs** are validated syntactically only (scheme + host) —
  CI must not depend on third-party servers being up;
* bare intra-file anchors (``#section``) must match a local heading;
* **inline-code path references** (`` `src/repro/...` `` and friends)
  must exist in the working tree — prose that names a source file is a
  link in all but syntax, and rots the same way.

Exit status is the number of broken links (0 = clean).

Usage::

    python tools/check_doc_links.py [files...]   # default: the doc set
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from urllib.parse import urlparse

REPO = Path(__file__).resolve().parents[1]

DEFAULT_DOC_SET = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    *sorted(str(p.relative_to(REPO)) for p in (REPO / "docs").glob("*.md")),
]

# [text](target) — target must not contain spaces or nested parens.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `src/repro/foo.py` — repo-relative code paths named in inline code.
# Wildcards (`ring*/wal-*.seg`) are layout illustrations, not references.
_CODE_PATH = re.compile(
    r"`((?:src|tests|tools|benchmarks|examples|docs)/[^`\s*]+)`"
)
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces → dashes."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    body = path.read_text(encoding="utf-8")
    body = _FENCE.sub("", body)  # headings inside code fences don't anchor
    return {github_slug(h) for h in _HEADING.findall(body)}


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    body = path.read_text(encoding="utf-8")
    searchable = _FENCE.sub("", body)  # links inside code fences are examples
    for match in _LINK.finditer(searchable):
        target = match.group(1)
        parsed = urlparse(target)
        if parsed.scheme in ("http", "https"):
            if not parsed.netloc:
                problems.append(f"{path}: malformed URL {target!r}")
            continue
        if parsed.scheme:  # mailto:, etc. — nothing to verify on disk
            continue
        rel, _, anchor = target.partition("#")
        dest = path if not rel else (path.parent / rel).resolve()
        if not dest.exists():
            problems.append(f"{path}: broken link {target!r} (no {dest})")
            continue
        if anchor:
            if dest.is_dir() or dest.suffix.lower() != ".md":
                problems.append(
                    f"{path}: anchor on non-markdown target {target!r}"
                )
            elif github_slug(anchor) not in anchors_of(dest):
                problems.append(
                    f"{path}: dead anchor {target!r} (no heading "
                    f"#{anchor} in {dest.name})"
                )
    for match in _CODE_PATH.finditer(searchable):
        ref = match.group(1).rstrip(".,;:")
        if not (REPO / ref).exists():
            problems.append(
                f"{path}: stale code-path reference `{ref}` "
                f"(no such file in the repo)"
            )
    return problems


def main(argv: list[str]) -> int:
    files = [Path(a) for a in argv] if argv else [
        REPO / rel for rel in DEFAULT_DOC_SET
    ]
    problems: list[str] = []
    checked_links = 0
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file in doc set does not exist")
            continue
        searchable = _FENCE.sub("", path.read_text(encoding="utf-8"))
        checked_links += len(_LINK.findall(searchable))
        problems.extend(check_file(path))
    for line in problems:
        print(f"BROKEN  {line}", file=sys.stderr)
    print(
        f"checked {checked_links} links across {len(files)} files: "
        f"{len(problems)} broken"
    )
    return len(problems)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
