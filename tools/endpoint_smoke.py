#!/usr/bin/env python3
"""Smoke-test the live telemetry endpoint end to end.  Stdlib only.

Builds a small traced DLA service, logs the paper's Table 1 rows, runs
a couple of audited queries (one cross-node, one local), starts the
``ObsServer`` on an ephemeral port, and scrapes all four routes over
real HTTP with :mod:`urllib`:

* ``/metrics`` — must be Prometheus text exposition: correct
  Content-Type, ``# HELP``/``# TYPE`` pairs, a ``+Inf`` histogram
  bucket, one sample per physical line, and the families the traced
  run must have fed (``repro_net_messages_total``,
  ``repro_crypto_ops_total``, ``repro_obs_c_query``);
* ``/healthz`` — JSON, overall ``ok`` with every plan node present;
* ``/traces`` — JSON, at least one assembled trace whose root is
  ``audit.query``;
* ``/leakage`` — JSON, the observatory report with a numeric ``c_dla``
  over the queries we just ran.

Exit 0 when every check passes, 1 with a message on the first failure.
CI runs this as the ``endpoint-smoke`` job; it is also a runnable
example of wiring the endpoint programmatically
(``service.start_obs_server(port=0)``).
"""

from __future__ import annotations

import json
import re
import sys
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro import ApplicationNode, ConfidentialAuditingService  # noqa: E402
from repro.crypto import DeterministicRng  # noqa: E402
from repro.logstore import paper_fragment_plan, paper_table1_schema  # noqa: E402
from repro.obs import MetricsRegistry, Tracer  # noqa: E402
from repro.workloads import paper_table1_rows  # noqa: E402

CROSS_QUERY = "(C1 > 30 or protocl = 'TCP') and Tid = 'T1100267'"
LOCAL_QUERY = "protocl = 'TCP'"


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def fetch(base: str, route: str) -> tuple[str, str]:
    with urllib.request.urlopen(base + route, timeout=10) as resp:
        check(resp.status == 200, f"{route}: HTTP {resp.status}")
        return resp.read().decode("utf-8"), resp.headers.get("Content-Type", "")


def check_metrics(body: str, content_type: str) -> None:
    check(
        content_type.startswith("text/plain") and "version=0.0.4" in content_type,
        f"/metrics: bad Content-Type {content_type!r}",
    )
    lines = [ln for ln in body.splitlines() if ln]
    helps = {ln.split()[2] for ln in lines if ln.startswith("# HELP")}
    types = {ln.split()[2] for ln in lines if ln.startswith("# TYPE")}
    check(helps and helps == types, "/metrics: HELP/TYPE pairs don't match")
    for family in (
        "repro_net_messages_total",
        "repro_net_message_size_bytes",
        "repro_crypto_ops_total",
        "repro_obs_c_query",
    ):
        check(family in helps, f"/metrics: family {family} missing")
    check('le="+Inf"' in body, "/metrics: no +Inf histogram bucket")
    # Exposition format: every non-comment line is exactly
    # ``name[{labels}] value`` on one physical line.
    sample = re.compile(
        r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?\d+(\.\d+)?([eE][+-]?\d+)?$'
    )
    bad = [ln for ln in lines if not ln.startswith("#") and not sample.match(ln)]
    check(not bad, f"/metrics: malformed sample lines: {bad[:3]}")


def main() -> int:
    schema = paper_table1_schema()
    service = ConfidentialAuditingService(
        schema,
        paper_fragment_plan(schema),
        prime_bits=64,
        rng=DeterministicRng(b"endpoint-smoke"),
        tracer=Tracer(),
        metrics=MetricsRegistry(),
    )
    writer = ApplicationNode.register("U1", service)
    for row in paper_table1_rows():
        service.log_event(row, writer.ticket)
    # The signed query runs the telemetry-collection round and assembles
    # the cross-node trace the /traces route serves; the plain query
    # still feeds the observatory and the metrics registry.
    report = service.audited_query(CROSS_QUERY)
    check(service.verify_report(report), "audited query report failed to verify")
    check(service.query(LOCAL_QUERY) is not None, "local query failed")

    server = service.start_obs_server(port=0)
    try:
        base = server.url
        print(f"endpoint up at {base}")

        body, ctype = fetch(base, "/metrics")
        check_metrics(body, ctype)
        print("  /metrics ok (exposition format, traced families present)")

        body, ctype = fetch(base, "/healthz")
        check(ctype.startswith("application/json"), f"/healthz: {ctype!r}")
        health = json.loads(body)
        check(health["status"] == "ok", f"/healthz: status {health['status']!r}")
        check(
            set(service.plan.node_ids) <= set(health["nodes"]),
            "/healthz: plan nodes missing",
        )
        print(f"  /healthz ok ({len(health['nodes'])} nodes)")

        body, ctype = fetch(base, "/traces")
        check(ctype.startswith("application/json"), f"/traces: {ctype!r}")
        traces = json.loads(body)
        check(traces, "/traces: no assembled traces after traced queries")
        roots = [
            s["name"]
            for t in traces
            for s in t["spans"]
            if s.get("parent_id") is None
        ]
        check("audit.query" in roots, f"/traces: no audit.query root in {roots}")
        print(f"  /traces ok ({len(traces)} assembled traces)")

        body, ctype = fetch(base, "/leakage")
        check(ctype.startswith("application/json"), f"/leakage: {ctype!r}")
        leakage = json.loads(body)
        check(leakage["queries"] >= 2, f"/leakage: queries={leakage['queries']}")
        check(
            isinstance(leakage["c_dla"], float) and 0.0 < leakage["c_dla"] <= 1.0,
            f"/leakage: c_dla={leakage['c_dla']!r}",
        )
        print(f"  /leakage ok (C_DLA={leakage['c_dla']:.4f} "
              f"over {leakage['queries']} queries)")
    finally:
        service.stop_obs_server()

    print("endpoint smoke: all four routes verified")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SmokeFailure as exc:
        print(f"endpoint smoke FAILED: {exc}", file=sys.stderr)
        sys.exit(1)
