#!/usr/bin/env python3
"""Performance-trajectory report and regression gate for BENCH_*.json.

Stdlib only (CI installs nothing for tooling).  Each experiment commits
its results file at the repo root; this script gives the committed
numbers a memory:

* **default** — print the perf trajectory: one row per experiment with
  its headline metric, so a reviewer sees the repo's performance story
  at a glance without opening five JSON files;
* **--check** — regression gate: compare each headline against the same
  file at a baseline (a git ref, default ``HEAD``, or a directory) and
  exit nonzero if any headline *regressed* beyond tolerance.

Headline units and their regression semantics:

* ``x`` (speedup ratio) and ``rows/s`` (throughput) — higher is better;
  regress when they drop more than ``--tolerance`` (default 10%)
  relative to baseline.
* ``pct`` (overhead percentage points) — lower is better; regress when
  they rise more than ``--slack-points`` (default 5.0) absolute, since
  relative deltas are meaningless around zero overhead.
* ``s`` (wall seconds, P8 recovery) — lower is better; regress when
  they rise more than ``--slack-seconds`` (default 5.0) absolute, since
  sub-second timings make relative gates pure noise.

Experiments present on only one side are reported but never fail the
gate (a new benchmark must not need a baseline to land).

Usage::

    python tools/bench_trend.py                       # trajectory table
    python tools/bench_trend.py --check               # vs git HEAD
    python tools/bench_trend.py --check --baseline-ref origin/main
    python tools/bench_trend.py --check --baseline-dir /path/to/old
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

# (file name, experiment, headline label, unit, extractor).  A file may
# contribute more than one headline (P1 carries both the engine speedup
# and the observability propagation-overhead guard; P8 carries both the
# ingest throughput and the recovery-time guard).
# Units: "x" = speedup ratio (higher better), "rows/s" = throughput
# (higher better), "pct" = overhead percentage points (lower better),
# "s" = wall seconds (lower better).
HEADLINES = [
    (
        "BENCH_p1.json",
        "P1 parallel exponentiation",
        "best engine speedup",
        "x",
        lambda d: max(e["speedup"] for e in d["engines"]),
    ),
    (
        "BENCH_p1.json",
        "P1 trace propagation",
        "obs propagation overhead",
        "pct",
        lambda d: d["propagation"]["overhead_pct"],
    ),
    (
        "BENCH_p3.json",
        "P3 incremental recomputation",
        "warm-cache query speedup",
        "x",
        lambda d: d["query"]["speedup"],
    ),
    (
        "BENCH_p4.json",
        "P4 fault-tolerant protocols",
        "reliable-delivery overhead",
        "pct",
        lambda d: d["overhead"]["overhead_pct"],
    ),
    (
        "BENCH_p5.json",
        "P5 concurrent scheduler",
        "throughput speedup",
        "x",
        lambda d: d["throughput"]["speedup"],
    ),
    (
        "BENCH_p6.json",
        "P6 offline/online split",
        "online-phase speedup",
        "x",
        lambda d: d["online_phase"]["speedup"],
    ),
    (
        "BENCH_p7.json",
        "P7 horizontal sharding",
        "4-shard aggregate speedup",
        "x",
        lambda d: d["speedup_at_4"],
    ),
    (
        "BENCH_p8.json",
        "P8 durable storage",
        "sustained ingest throughput",
        "rows/s",
        lambda d: d["ingest"]["rows_per_s"],
    ),
    (
        "BENCH_p8.json",
        "P8 crash recovery",
        "WAL-replay recovery time",
        "s",
        lambda d: d["recovery"]["seconds"],
    ),
    (
        "BENCH_p9.json",
        "P9 async fan-out",
        "async/thread speedup at max rung",
        "x",
        lambda d: d["ladder_runs"][-1]["speedup"],
    ),
    (
        "BENCH_p9.json",
        "P9 pipelined rings",
        "virtual-time makespan gain",
        "x",
        lambda d: d["pipelined_rings"]["gain"],
    ),
]

HIGHER_IS_BETTER = {"x", "rows/s"}


def load_current(name: str) -> dict | None:
    path = REPO / name
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def load_baseline(name: str, ref: str, directory: str | None) -> dict | None:
    if directory is not None:
        path = Path(directory) / name
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))
    proc = subprocess.run(
        ["git", "-C", str(REPO), "show", f"{ref}:{name}"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:  # file absent at that ref
        return None
    return json.loads(proc.stdout)


def headline(extractor, data: dict) -> float | None:
    try:
        return float(extractor(data))
    except (KeyError, IndexError, TypeError, ValueError):
        return None


def fmt(value: float | None, unit: str) -> str:
    if value is None:
        return "—"
    if unit == "x":
        return f"{value:.2f}x"
    if unit == "rows/s":
        return f"{value:.0f} rows/s"
    if unit == "s":
        return f"{value:.2f} s"
    return f"{value:.2f} pts"


def print_table(rows: list[tuple[str, ...]], headers: tuple[str, ...]) -> None:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="regression gate: exit 1 if a headline regressed")
    parser.add_argument("--baseline-ref", default="HEAD",
                        help="git ref holding baseline BENCH files (default HEAD)")
    parser.add_argument("--baseline-dir", default=None,
                        help="directory of baseline BENCH files (overrides the ref)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative drop for speedup headlines (default 0.10)")
    parser.add_argument("--slack-points", type=float, default=5.0,
                        help="allowed absolute rise for percentage headlines (default 5.0)")
    parser.add_argument("--slack-seconds", type=float, default=5.0,
                        help="allowed absolute rise for wall-second headlines (default 5.0)")
    args = parser.parse_args(argv)

    rows = []
    regressions = []
    for name, experiment, label, unit, extractor in HEADLINES:
        current = load_current(name)
        value = headline(extractor, current) if current else None
        if not args.check:
            rows.append((experiment, label, fmt(value, unit)))
            continue

        base = load_baseline(name, args.baseline_ref, args.baseline_dir)
        base_value = headline(extractor, base) if base else None
        verdict = "ok"
        if value is None or base_value is None:
            verdict = "skipped (one side missing)"
        elif unit in HIGHER_IS_BETTER:
            if value < base_value * (1.0 - args.tolerance):
                verdict = f"REGRESSED >{args.tolerance:.0%}"
                regressions.append((name, label, base_value, value, unit))
        elif unit == "s":  # lower-is-better wall seconds
            if value > base_value + args.slack_seconds:
                verdict = f"REGRESSED >{args.slack_seconds:g} s"
                regressions.append((name, label, base_value, value, unit))
        else:  # lower-is-better percentage points
            if value > base_value + args.slack_points:
                verdict = f"REGRESSED >{args.slack_points:g} pts"
                regressions.append((name, label, base_value, value, unit))
        rows.append((
            experiment, label, fmt(base_value, unit), fmt(value, unit), verdict,
        ))

    if args.check:
        print_table(rows, ("experiment", "headline", "baseline", "current", "verdict"))
        for name, label, base_value, value, unit in regressions:
            print(
                f"\nFAIL {name}: {label} regressed "
                f"{fmt(base_value, unit)} -> {fmt(value, unit)}",
                file=sys.stderr,
            )
        return 1 if regressions else 0

    print_table(rows, ("experiment", "headline", "value"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
