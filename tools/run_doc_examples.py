#!/usr/bin/env python3
"""Execute the documentation's runnable code examples.

Docs rot fastest where they show code, so CI executes the fenced
``python`` blocks that are written to be self-contained.  The allowlist
below is *curated*: many blocks are intentionally elliptical (``...``
placeholders, fragments referencing objects defined in prose) and can
never run — listing a block here is a promise that it stays executable
against the current API.

Each allowlisted block runs in its own fresh namespace with ``src/`` on
``sys.path``; an exception anywhere is a CI failure pointing at the doc
file and block.

Usage::

    python tools/run_doc_examples.py          # run the allowlist
    python tools/run_doc_examples.py --list   # show every python block
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

#: file (repo-relative) -> 0-based ordinals among that file's ```python blocks.
ALLOWLIST: dict[str, list[int]] = {
    "README.md": [0],               # Quickstart: full service round-trip
    "docs/observability.md": [0,    # Tracer spans/events
                              2,    # TelemetryHub node spans + cost folding
                              4],   # MetricsRegistry counters/histograms
    "docs/resilience.md": [0,       # RetryPolicy / Deadline knobs
                           1],      # failover: crash -> degraded result
}

_BLOCK = re.compile(r"^```python[^\n]*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def python_blocks(path: Path) -> list[str]:
    return _BLOCK.findall(path.read_text(encoding="utf-8"))


def main(argv: list[str]) -> int:
    if "--list" in argv:
        for rel in ["README.md", *sorted(
            str(p.relative_to(REPO)) for p in (REPO / "docs").glob("*.md")
        )]:
            for i, block in enumerate(python_blocks(REPO / rel)):
                mark = "RUN " if i in ALLOWLIST.get(rel, []) else "skip"
                first = block.strip().splitlines()[0] if block.strip() else ""
                print(f"{mark}  {rel}[{i}]  {first}")
        return 0

    failures = 0
    ran = 0
    for rel, ordinals in ALLOWLIST.items():
        blocks = python_blocks(REPO / rel)
        for i in ordinals:
            if i >= len(blocks):
                print(f"FAIL  {rel}[{i}]: block does not exist "
                      f"({len(blocks)} python blocks found)", file=sys.stderr)
                failures += 1
                continue
            ran += 1
            try:
                exec(compile(blocks[i], f"{rel}[{i}]", "exec"), {})
                print(f"ok    {rel}[{i}]")
            except Exception:
                failures += 1
                print(f"FAIL  {rel}[{i}]", file=sys.stderr)
                traceback.print_exc()
    print(f"ran {ran} documentation examples: {failures} failed")
    return failures


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
