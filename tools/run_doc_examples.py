#!/usr/bin/env python3
"""Execute the documentation's runnable code examples.

Docs rot fastest where they show code, so CI executes the fenced
``python`` blocks that are written to be self-contained, plus a curated
set of the ``examples/`` scripts.  The allowlists below are *curated*:
many blocks are intentionally elliptical (``...`` placeholders,
fragments referencing objects defined in prose) and can never run —
listing a block or script here is a promise that it stays executable
against the current API.

Each allowlisted block runs in its own fresh namespace with ``src/`` on
``sys.path``; an exception anywhere is a CI failure pointing at the doc
file and block.

Usage::

    python tools/run_doc_examples.py          # run the allowlist
    python tools/run_doc_examples.py --list   # show every python block
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import traceback
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

#: file (repo-relative) -> 0-based ordinals among that file's ```python blocks.
ALLOWLIST: dict[str, list[int]] = {
    "README.md": [0],               # Quickstart: full service round-trip
    "docs/observability.md": [0,    # Tracer spans/events
                              2,    # TelemetryHub node spans + cost folding
                              4],   # MetricsRegistry counters/histograms
    "docs/resilience.md": [0,       # RetryPolicy / Deadline knobs
                           1],      # failover: crash -> degraded result
}

#: example scripts (under examples/) run end-to-end as subprocesses.
#: Curated like the block allowlist: listing a script here promises it
#: stays runnable in CI; scripts that need a terminal or long wall time
#: stay out.
EXAMPLE_SCRIPTS: list[str] = [
    "quickstart.py",        # minimal service round-trip
    "integrity_audit.py",   # accumulator ring catches a tampered node
    "durable_restart.py",   # crash with a torn WAL tail -> clean recovery
    "async_fanout.py",      # 256-query burst on the event-loop scheduler
]

_BLOCK = re.compile(r"^```python[^\n]*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def python_blocks(path: Path) -> list[str]:
    return _BLOCK.findall(path.read_text(encoding="utf-8"))


def main(argv: list[str]) -> int:
    if "--list" in argv:
        for rel in ["README.md", *sorted(
            str(p.relative_to(REPO)) for p in (REPO / "docs").glob("*.md")
        )]:
            for i, block in enumerate(python_blocks(REPO / rel)):
                mark = "RUN " if i in ALLOWLIST.get(rel, []) else "skip"
                first = block.strip().splitlines()[0] if block.strip() else ""
                print(f"{mark}  {rel}[{i}]  {first}")
        for path in sorted((REPO / "examples").glob("*.py")):
            mark = "RUN " if path.name in EXAMPLE_SCRIPTS else "skip"
            print(f"{mark}  examples/{path.name}")
        return 0

    failures = 0
    ran = 0
    for rel, ordinals in ALLOWLIST.items():
        blocks = python_blocks(REPO / rel)
        for i in ordinals:
            if i >= len(blocks):
                print(f"FAIL  {rel}[{i}]: block does not exist "
                      f"({len(blocks)} python blocks found)", file=sys.stderr)
                failures += 1
                continue
            ran += 1
            try:
                exec(compile(blocks[i], f"{rel}[{i}]", "exec"), {})
                print(f"ok    {rel}[{i}]")
            except Exception:
                failures += 1
                print(f"FAIL  {rel}[{i}]", file=sys.stderr)
                traceback.print_exc()

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    for name in EXAMPLE_SCRIPTS:
        script = REPO / "examples" / name
        if not script.exists():
            print(f"FAIL  examples/{name}: script does not exist",
                  file=sys.stderr)
            failures += 1
            continue
        ran += 1
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, env=env, cwd=REPO,
        )
        if proc.returncode != 0:
            failures += 1
            print(f"FAIL  examples/{name} (exit {proc.returncode})",
                  file=sys.stderr)
            sys.stderr.write(proc.stdout[-2000:] + proc.stderr[-2000:])
        else:
            print(f"ok    examples/{name}")
    print(f"ran {ran} documentation examples: {failures} failed")
    return failures


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
