"""Auditing the cluster over the network — real sockets, verified replies.

The auditor lives outside the cluster: it sends criteria to a DLA front
door over TCP and receives threshold-signed results it verifies locally.
A man-in-the-middle altering a result breaks the signature check.

Run:  python examples/remote_auditing.py
"""

import time

from repro import ApplicationNode, ConfidentialAuditingService
from repro.core.remote import DlaQueryFrontdoor, RemoteAuditorClient
from repro.crypto import DeterministicRng
from repro.logstore import paper_fragment_plan, paper_table1_schema
from repro.net.transport_tcp import TcpCluster
from repro.workloads import paper_table1_rows


def wait_for(client, request_ids, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(r in client.responses for r in request_ids):
            return True
        time.sleep(0.02)
    return False


def main() -> None:
    schema = paper_table1_schema()
    service = ConfidentialAuditingService(
        schema, paper_fragment_plan(schema), prime_bits=128,
        rng=DeterministicRng(b"remote-example"),
    )
    writer = ApplicationNode.register("U1", service)
    for row in paper_table1_rows():
        service.log_event(row, writer.ticket)
    print(f"cluster loaded with {len(service.store.glsns)} records; "
          f"cluster public key {format(service.cluster_public_key, 'x')[:16]}…")

    frontdoor = DlaQueryFrontdoor("dla-frontdoor", service)
    client = RemoteAuditorClient("remote-auditor", "dla-frontdoor", service)

    with TcpCluster(["dla-frontdoor", "remote-auditor"]) as cluster:
        cluster["dla-frontdoor"].set_handler(frontdoor.handle)
        cluster["remote-auditor"].set_handler(client.handle)
        transport = cluster["remote-auditor"]

        print("\n--- pipelined remote requests over TCP ---")
        r1 = client.send_query(transport, "C1 > 30 and protocl = 'UDP'")
        r2 = client.send_query(transport, "Tid = 'T1100265'")
        r3 = client.send_aggregate(transport, "sum", "C1")
        r4 = client.send_aggregate(transport, "max", "C2", "protocl = 'TCP'")
        r5 = client.send_query(transport, "nonsense =")  # deliberately bad
        assert wait_for(client, [r1, r2, r3, r4, r5])

        report = client.result(r1)["report"]
        print(f"  query 1: {len(report.glsns)} records, signature verified "
              f"locally against the cluster key")
        print(f"  query 2: {len(client.result(r2)['report'].glsns)} records "
              f"for T1100265")
        print(f"  sum C1 = {client.result(r3)['value']}")
        print(f"  max C2 over TCP = {client.result(r4)['value']}")
        error = client.result(r5)
        print(f"  malformed criterion answered gracefully: "
              f"{error['kind']} ({error['error'][:40]}…)")

    print(f"\nfrontdoor served {frontdoor.served} requests; every result "
          "carried a 3-of-4 threshold signature the client checked itself")


if __name__ == "__main__":
    main()
