"""Durable storage: crash a service mid-write, recover, re-verify.

The append path journals every mutation to per-node write-ahead logs
before acknowledging (``repro.store``).  This example streams records
into a durable service, kills it without a clean shutdown — including
tearing the tail off one node's WAL, as a real power cut would — then
reopens the same directory.  Recovery replays the journals, rolls the
torn append back on *every* node (vertical fragmentation means a record
is only real if all nodes hold their fragment), resumes the hash chain,
and re-verifies the §4.1 integrity anchors before serving reads.

Run:  python examples/durable_restart.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import ConfidentialAuditingService
from repro.crypto import DeterministicRng
from repro.logstore import paper_fragment_plan, paper_table1_schema
from repro.workloads import paper_table1_rows

CRITERION = "id = 'U1'"


def build_service(store_dir: str) -> ConfidentialAuditingService:
    schema = paper_table1_schema()
    # Same seed on every start: the restarted service derives the same
    # ticket-authority secret, so tickets issued before the crash verify.
    return ConfidentialAuditingService(
        schema, paper_fragment_plan(schema), prime_bits=64,
        rng=DeterministicRng(b"durable-example"), store_dir=store_dir,
    )


def rows():
    for i, row in enumerate(paper_table1_rows() * 4):
        yield {**row, "Tid": f"T{i:07d}"}


def kill(service: ConfidentialAuditingService) -> None:
    """Die without checkpointing: drop WAL handles, skip the clean close."""
    store = service.store
    if store.compactor is not None:
        store.compactor.stop()
        store.compactor = None
    for wal in store.wals.values():
        wal.close()
    store._closed = True
    service.close()  # scheduler/observatory down; store already "dead"


def main() -> None:
    store_dir = tempfile.mkdtemp(prefix="repro-durable-")
    try:
        print(f"--- start a durable service at {store_dir} ---")
        service = build_service(store_dir)
        ticket = service.register_user("U9")
        receipts = service.append_stream(rows(), ticket, batch_size=8)
        before = sorted(service.query(CRITERION).glsns)
        print(f"  streamed {len(receipts)} records; query {CRITERION!r} "
              f"matches {len(before)} glsns")

        print("\n--- crash: no checkpoint, and P1's WAL tail is torn ---")
        kill(service)
        segment = sorted((Path(store_dir) / "P1").glob("wal-*.seg"))[-1]
        data = segment.read_bytes()
        segment.write_bytes(data[:-40])  # a power cut mid-record
        print(f"  truncated {segment.name} by 40 bytes on node P1")

        print("\n--- restart: recovery replays the journals ---")
        service = build_service(store_dir)
        report = service.last_recovery
        assert report is not None
        print(f"  checkpoint loaded: {report.checkpoint_loaded}")
        print(f"  WAL records replayed: {report.wal_records}")
        print(f"  torn nodes: {sorted(report.torn_nodes)}")
        print(f"  rolled back (incomplete on some node): "
              f"{[format(g, 'x') for g in report.rolled_back]}")
        print(f"  hash chain resumed: {report.chain_resumed}")
        print(f"  integrity audit clean: {report.audit_ok}")
        print(f"  recovered in {report.duration_seconds * 1000:.1f} ms")
        assert report.audit_ok

        print("\n--- the surviving prefix answers identically ---")
        ticket = service.register_user("U9")
        after = sorted(service.query(CRITERION).glsns)
        lost = [g for g in before if g not in after]
        assert set(after) <= set(before)
        assert all(g in report.rolled_back for g in lost)
        print(f"  query {CRITERION!r} now matches {len(after)} glsns "
              f"({len(lost)} lost to the torn tail, all accounted for)")
        for receipt in receipts:
            if receipt.glsn in service.store.glsns:
                service.store.read_record(receipt.glsn, ticket)
        print("  every surviving record read back and verified")
        service.close()
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
