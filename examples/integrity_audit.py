"""Integrity cross-checking with one-way accumulators (paper §4.1).

A compromised DLA node silently rewrites a stored fragment.  The
quasi-commutative accumulator ring catches it: each node folds its own
fragment into a circulating token (in any order — eq. 9), and the final
value must match the anchor the writer deposited at log time.

Run:  python examples/integrity_audit.py
"""

from repro import ApplicationNode, ConfidentialAuditingService
from repro.crypto import DeterministicRng
from repro.logstore import paper_fragment_plan, paper_table1_schema, run_integrity_round
from repro.net.simnet import SimNetwork
from repro.workloads import paper_table1_rows


def main() -> None:
    schema = paper_table1_schema()
    service = ConfidentialAuditingService(
        schema, paper_fragment_plan(schema), prime_bits=128,
        rng=DeterministicRng(b"integrity-example"),
    )
    writer = ApplicationNode.register("U1", service)
    receipts = [service.log_event(row, writer.ticket) for row in paper_table1_rows()]
    print(f"logged {len(receipts)} records; each write deposited an "
          "order-independent accumulator anchor on every DLA node")

    print("\n--- clean cluster ---")
    net = SimNetwork()
    reports = run_integrity_round(service.store, net=net)
    print(f"  ring check: {sum(r.ok for r in reports)}/{len(reports)} clean, "
          f"{net.stats.messages} messages "
          f"({len(service.store.stores)} per record)")

    print("\n--- a compromised node rewrites a fragment ---")
    victim = receipts[2]
    before = service.store.node_store("P1").local_fragment(victim.glsn).values["C2"]
    service.store.node_store("P1").tamper(victim.glsn, "C2", "999999.99")
    print(f"  P1 silently changed C2 of glsn {format(victim.glsn, 'x')} "
          f"from {before!r} to '999999.99'")

    reports = run_integrity_round(service.store)
    for report in reports:
        flag = "OK " if report.ok else "TAMPERED"
        print(f"  glsn {format(report.glsn, 'x')}: {flag}")
    bad = [r for r in reports if not r.ok]
    assert len(bad) == 1 and bad[0].glsn == victim.glsn

    print("\n--- the writer can verify its own receipt too ---")
    print(f"  receipt for glsn {format(victim.glsn, 'x')} verifies: "
          f"{writer.verify_receipt(victim)}")
    intact = receipts[0]
    print(f"  receipt for glsn {format(intact.glsn, 'x')} verifies: "
          f"{writer.verify_receipt(intact)}")

    print("\n--- order independence (eq. 9) ---")
    ring = sorted(service.store.stores)
    for initiator in ring:
        reports = run_integrity_round(
            service.store, glsns=[intact.glsn], initiator=initiator
        )
        print(f"  ring starting at {initiator}: "
              f"{'OK' if reports[0].ok else 'TAMPERED'} "
              f"(accumulator {format(reports[0].observed, 'x')[:16]}…)")


if __name__ == "__main__":
    main()
