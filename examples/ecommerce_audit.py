"""E-commerce transaction auditing: the paper's Table 1-6 scenario.

Multiple shops log order transactions into the DLA cluster; an external
auditor verifies transaction rules (atomicity, non-repudiation, fairness)
without ever seeing a complete log record.  Regenerates the paper's
Tables 1-6 along the way.

Run:  python examples/ecommerce_audit.py
"""

from repro import ApplicationNode, Auditor, ConfidentialAuditingService
from repro.core import AtomicityRule, FairnessRule, NonRepudiationRule
from repro.crypto import DeterministicRng
from repro.logstore import LogRecord, paper_fragment_plan, paper_table1_schema, render_table
from repro.workloads import EcommerceWorkload, paper_table1_rows


def regenerate_paper_tables(service, writer) -> None:
    """Log the paper's exact Table 1 rows and print Tables 1-6."""
    receipts = [service.log_event(row, writer.ticket) for row in paper_table1_rows()]
    records = [LogRecord(r.glsn, row) for r, row in zip(receipts, paper_table1_rows())]

    print("\n=== Table 1: the global event log ===")
    print(render_table(records, ["Time", "id", "protocl", "Tid", "C1", "C2", "C3"]))

    plan = service.store.plan
    for i, node_id in enumerate(plan.node_ids):
        frag_records = [
            LogRecord(r.glsn, service.store.node_store(node_id)
                      .local_fragment(r.glsn).values)
            for r in receipts
        ]
        print(f"\n=== Table {i + 2}: fragments stored at {node_id} "
              f"(supports {plan.assignment[node_id]}) ===")
        print(render_table(frag_records, plan.assignment[node_id]))

    print("\n=== Table 6: access control table (replica at P0) ===")
    print(service.store.node_store("P0").acl.render())


def audit_transaction_stream(service, nodes, auditor) -> None:
    """Log a workload with injected violations; let the rules catch them."""
    workload = EcommerceWorkload(users=tuple(nodes), seed=13)
    transactions = workload.tampered_transactions(9, drop_confirm_every=3)
    for transaction in transactions:
        for step, event in enumerate(transaction.events):
            values = event.log_values(transaction.tsn, transaction.ttn, step)
            nodes[event.executor].log_values(values)

    print(f"\nlogged {len(transactions)} transactions "
          f"({sum(len(t.events) for t in transactions)} events); "
          "every third transaction is missing its confirm event")

    print("\n--- rule checking (confidential; auditor sees verdicts only) ---")
    failures = 0
    for transaction in transactions:
        verdict = auditor.check_rule(AtomicityRule(tsn=transaction.tsn, width=2))
        status = "PASS" if verdict.passed else "FAIL"
        if not verdict.passed:
            failures += 1
            print(f"  atomicity {transaction.tsn}: {status} — {verdict.detail}")
    print(f"  atomicity: {failures} incomplete transactions exposed")

    complete = next(t for t in transactions if len(t.events) == 2)
    verdict = auditor.check_rule(
        NonRepudiationRule(tsn=complete.tsn, parties=tuple(complete.executors))
    )
    print(f"  non-repudiation {complete.tsn}: "
          f"{'PASS' if verdict.passed else 'FAIL'} — {verdict.detail}")

    fairness = auditor.check_rule(
        FairnessRule(
            criterion_a="C3 = 'order'",
            criterion_b="C3 = 'confirm'",
            tolerance=0,
        )
    )
    print(f"  fairness orders-vs-confirms: "
          f"{'PASS' if fairness.passed else 'FAIL'} — {fairness.detail}")

    print("\n--- signed audit report ---")
    report = auditor.audited_query(f"Tid = '{complete.tsn}'")
    print(f"  criterion : {report.criterion}")
    print(f"  records   : {[format(g, 'x') for g in report.glsns]}")
    print(f"  digest    : {report.digest[:32]}…")
    print(f"  verified  : {service.verify_report(report)} "
          f"(threshold {service.threshold}/{len(service.store.plan.node_ids)})")


def main() -> None:
    schema = paper_table1_schema()
    service = ConfidentialAuditingService(
        schema, paper_fragment_plan(schema), prime_bits=128,
        rng=DeterministicRng(b"ecommerce-example"),
    )
    writer = ApplicationNode.register("U1", service)
    nodes = {
        uid: (writer if uid == "U1" else ApplicationNode.register(uid, service))
        for uid in ("U1", "U2", "U3")
    }
    auditor = Auditor("external-auditor", service)

    regenerate_paper_tables(service, writer)
    audit_transaction_stream(service, nodes, auditor)

    print("\n--- session confidentiality accounting ---")
    snapshot = service.cost_snapshot()
    print(f"  leakage events    : {snapshot['leakage_events']}")
    print(f"  leakage categories: {snapshot['leakage_categories']}")


if __name__ == "__main__":
    main()
