"""Quickstart: stand up a DLA cluster, log events, audit confidentially.

Run:  python examples/quickstart.py
"""

from repro import ApplicationNode, Auditor, ConfidentialAuditingService
from repro.crypto import DeterministicRng
from repro.logstore import paper_fragment_plan, paper_table1_schema


def main() -> None:
    # 1. A schema (the paper's Table 1 attribute universe) and a fragment
    #    plan assigning attribute subsets to the DLA nodes P0..P3 so that
    #    no single node can reconstruct a log record.
    schema = paper_table1_schema()
    plan = paper_fragment_plan(schema)

    # 2. The full service: ticket authority, credential authority with an
    #    anonymous evidence-chain membership, fragmented log store,
    #    relaxed-SMC query executor, threshold signatures.
    service = ConfidentialAuditingService(
        schema, plan, prime_bits=128, rng=DeterministicRng(b"quickstart")
    )
    print("DLA cluster up:")
    print(service.describe())

    # 3. Application nodes obtain tickets and log events; each record is
    #    vertically fragmented across the cluster.
    shop = ApplicationNode.register("U1", service)
    bank = ApplicationNode.register("U2", service)
    shop.log_values({"Tid": "T1100265", "protocl": "UDP", "C1": 20,
                     "C2": "23.45", "C3": "signature"})
    bank.log_values({"Tid": "T1100265", "protocl": "UDP", "C1": 34,
                     "C2": "345.11", "C3": "evidence"})
    shop.log_values({"Tid": "T1100267", "protocl": "TCP", "C1": 45,
                     "C2": "235.00", "C3": "bank"})
    print(f"\nlogged {len(service.store.glsns)} records; "
          f"fragments per record: {len(plan.node_ids)}")

    # 4. An auditor runs confidential queries.  Cross-node predicates are
    #    evaluated with relaxed secure multiparty computation; the final
    #    conjunction is a secure set intersection keyed by glsn.
    auditor = Auditor("auditor", service)
    result = auditor.query("C1 > 30 and Tid = 'T1100267'")
    print(f"\nquery 'C1 > 30 and Tid = T1100267' -> "
          f"{[format(g, 'x') for g in result.glsns]}")
    print(f"  traffic: {result.messages} messages, {result.bytes} bytes")

    # 5. Signed release: result passes distributed majority agreement and
    #    is threshold-signed by 3 of the 4 DLA nodes.
    report = auditor.audited_query("Tid = 'T1100265'")
    print(f"\nsigned report on T1100265: {len(report.glsns)} records, "
          f"verified={service.verify_report(report)}")

    # 6. Confidential aggregates — "number of transactions, total of
    #    volumes" — without reading any raw row.
    udp_count = auditor.aggregate("count", "C1", "protocl = 'UDP'").value
    print(f"\ntotal volume (sum C1):   {auditor.aggregate('sum', 'C1').value}")
    print(f"max amount   (max C2):   {auditor.aggregate('max', 'C2').value}")
    print(f"UDP records  (count):    {udp_count}")

    # 7. Integrity: the one-way accumulator ring detects any tampering.
    reports = service.check_integrity()
    print(f"\nintegrity: {sum(r.ok for r in reports)}/{len(reports)} records clean")

    # 8. What leaked?  Only secondary information, itemized.
    snapshot = service.cost_snapshot()
    print(f"\nleakage categories this session: {snapshot['leakage_categories']}")
    print(f"modular exponentiations: {snapshot['crypto_ops'].get('total.modexp', 0)}")


if __name__ == "__main__":
    main()
