"""Async fan-out: 256 concurrent audit queries over one shared deployment.

The event-loop scheduler (`repro.aio.AsyncQueryScheduler`, the default
behind `service.submit`) admits the whole burst at once — no worker
pool to size, no queue depth to tune — and every answer is verified
against a serial `service.query` ground truth.

Run:  python examples/async_fanout.py
"""

from repro import ConfidentialAuditingService
from repro.crypto import DeterministicRng
from repro.logstore import paper_fragment_plan, paper_table1_schema

QUERIES = [
    "C1 > C5 and C3 = 'bank'",
    "C3 = 'bank' or C3 = 'salary'",
    "C2 < 400 and C3 = 'salary'",
    "C1 > 30",
]
BURST = 256


def main() -> None:
    # 1. One deployment; a modest log so the example runs in seconds.
    schema = paper_table1_schema()
    service = ConfidentialAuditingService(
        schema, paper_fragment_plan(schema), prime_bits=64,
        rng=DeterministicRng(b"async-fanout"),
    )
    ticket = service.register_user("fanout")
    for i in range(32):
        service.log_event(
            {"Time": f"2004-02-{i % 28 + 1:02d}", "id": f"u{i % 5}", "EID": i,
             "Tid": f"t{i}", "protocl": "tcp", "ip": f"10.0.0.{i % 7}",
             "C": i % 3, "C1": (i * 13) % 100, "C2": (i * 29) % 1000,
             "C3": ["bank", "salary", "shop"][i % 3], "C4": i % 2, "C5": i},
            ticket,
        )

    # 2. Serial ground truth, one evaluation per distinct criterion.
    expected = {criterion: service.query(criterion).glsns for criterion in QUERIES}

    # 3. The burst: 256 queries submitted at once onto the event loop.
    #    Admission never blocks; execution is semaphore-bounded
    #    (REPRO_AIO_MAX_INFLIGHT, default 256).
    batch = (QUERIES * (BURST // len(QUERIES)))[:BURST]
    handles = [service.submit(criterion) for criterion in batch]
    print(f"submitted {len(handles)} queries "
          f"({type(service.scheduler).__name__})")
    results = service.gather(handles)

    # 4. Every concurrent answer matches its serial twin, query by query.
    for criterion, result in zip(batch, results):
        assert result.glsns == expected[criterion], criterion
    coalesced = sum(1 for h in handles if h.coalesced)
    print(f"all {len(results)} answers verified against the serial path")
    print(f"shared executions: {coalesced} of {BURST} queries coalesced "
          f"onto {BURST - coalesced} in-flight computes")

    # 5. Exact reconciliation survives the fan-out: each handle carries
    #    its own cost report and leakage slice.
    messages = sum(h.cost.messages for h in handles if h.cost)
    print(f"aggregate protocol traffic attributed per query: "
          f"{messages} messages")
    service.close()


if __name__ == "__main__":
    main()
