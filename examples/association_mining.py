"""Confidential distributed data mining over the DLA cluster.

The paper's abstract promises "distributed data mining" as one of the
demonstrations.  Here two DLA nodes — one storing the transport protocol
(P3), one storing the opaque business label C3 (P2) — jointly discover
which protocol⇒label associations hold across the log, revealing only
the patterns above the support threshold.  Neither node ever sees the
other's column; the overlap counting runs on the commutative-encryption
intersection-size protocol (the paper's ref [20] toolbox).

Run:  python examples/association_mining.py
"""

from repro import ApplicationNode, ConfidentialAuditingService
from repro.crypto import DeterministicRng
from repro.logstore import paper_fragment_plan, paper_table1_schema
from repro.mining import secure_intersection_size
from repro.net.simnet import SimNetwork
from repro.smc.base import SmcContext


def main() -> None:
    schema = paper_table1_schema()
    service = ConfidentialAuditingService(
        schema, paper_fragment_plan(schema), prime_bits=128,
        rng=DeterministicRng(b"mining-example"),
    )
    writer = ApplicationNode.register("U1", service)

    rng = DeterministicRng(b"mining-data")
    labels = {"UDP": "telemetry", "TCP": "payment"}
    rows = 0
    for _ in range(60):
        protocol = rng.choice(["UDP", "TCP"])
        # 85% of records follow the association; 15% are noise.
        if rng.random() < 0.85:
            label = labels[protocol]
        else:
            label = rng.choice(["telemetry", "payment", "probe"])
        writer.log_values({"protocl": protocol, "C3": label,
                           "C1": rng.randint(1, 99)})
        rows += 1
    print(f"{rows} records logged; protocol lives on P3, label C3 on P2 — "
          "no node holds both columns")

    print("\n--- the primitive: secure intersection size ---")
    ctx = SmcContext(service.ctx.prime, DeterministicRng(b"size-demo"))
    net = SimNetwork()
    result = secure_intersection_size(
        ctx, ("P3", list(range(0, 30))), ("P2", list(range(20, 50))), net=net
    )
    print(f"  |A ∩ B| = {result.any_value} learned in {net.stats.messages} "
          "messages; neither side learns WHICH elements overlap")

    print("\n--- mining: which protocol ⇒ label rules hold? (support ≥ 8) ---")
    rules = service.mine_associations("protocl", "C3", min_support=8,
                                      min_confidence=0.5)
    for rule in rules:
        print(f"  {rule}")
    planted = {(r.value_a, r.value_b) for r in rules}
    assert ("UDP", "telemetry") in planted and ("TCP", "payment") in planted
    print("  (the planted associations surface; sub-threshold pairs like "
          "'probe' labels stay sealed)")

    print("\n--- leakage accounting ---")
    categories = sorted(service.ctx.leakage.categories())
    print(f"  secondary disclosures only: {categories}")


if __name__ == "__main__":
    main()
