"""Distributed intrusion detection via confidential event correlation.

The paper's §4.2 motivation: "distributed security breaching is usually an
aggregated effect of distributed events, each of which alone may appear to
be harmless."  Four hosts each see a handful of suspicious events — all
below their local alarm thresholds — but the confidential global view
crosses the cluster-wide threshold and correlates the campaign across
hosts, without any host (or any DLA node) revealing its raw log.

Run:  python examples/intrusion_correlation.py
"""

from repro import ApplicationNode, Auditor, ConfidentialAuditingService
from repro.core import CorrelationRule, IrregularPatternRule
from repro.crypto import DeterministicRng
from repro.logstore import paper_fragment_plan, paper_table1_schema
from repro.workloads import IntrusionWorkload

LOCAL_ALARM = 5      # per-host IDS alarm threshold
GLOBAL_ALARM = 5     # cluster-wide irregular-pattern threshold


def main() -> None:
    schema = paper_table1_schema()
    service = ConfidentialAuditingService(
        schema, paper_fragment_plan(schema), prime_bits=128,
        rng=DeterministicRng(b"ids-example"),
    )

    workload = IntrusionWorkload(hosts=("U1", "U2", "U3", "U4"), seed=31)
    rows, campaigns = workload.mixed_trace(
        benign=40, probe_per_host=3, stuffing_per_host=2
    )
    collectors = {
        host: ApplicationNode.register(host, service) for host in workload.hosts
    }
    for row in rows:
        collectors[row["id"]].log_values(row)
    print(f"{len(rows)} events logged by {len(collectors)} hosts "
          f"({len(campaigns)} hidden campaigns)")

    auditor = Auditor("soc", service)

    print("\n--- per-host view: everything looks harmless ---")
    for host in workload.hosts:
        count = auditor.query(f"C3 = 'probe' and id = '{host}'").count
        print(f"  {host}: {count} probe events "
              f"({'ALARM' if count > LOCAL_ALARM else 'below local threshold'})")

    print("\n--- global confidential view ---")
    verdict = auditor.check_rule(
        IrregularPatternRule(criterion="C3 = 'probe'", threshold=GLOBAL_ALARM)
    )
    print(f"  irregular-pattern rule: "
          f"{'quiet' if verdict.passed else 'ALARM'} — {verdict.detail}")
    assert not verdict.passed, "the distributed probe must trip the global rule"

    probe = next(c for c in campaigns if c.name == "distributed-probe")
    print(f"\n--- cross-host correlation (fingerprint C2 = {probe.attacker}) ---")
    fingerprint_hits = auditor.query(f"C2 = '{probe.attacker}'")
    print(f"  events sharing the fingerprint: {fingerprint_hits.count} "
          f"(ground truth: {probe.total_events})")
    for a, b in zip(probe.hosts, probe.hosts[1:]):
        rule = CorrelationRule(
            left_criterion=f"C3 = 'probe' and id = '{a}'",
            right_criterion=f"C3 = 'probe' and id = '{b}'",
        )
        v = auditor.check_rule(rule)
        print(f"  {a} <-> {b}: {'correlated' if v.passed else 'uncorrelated'}")

    stuffing = next(c for c in campaigns if c.name == "credential-stuffing")
    total_failed = auditor.aggregate("count", "C1", "C3 = 'auth_fail'")
    print(f"\n--- credential stuffing ---")
    print(f"  failed logins cluster-wide: {total_failed.value} "
          f"(ground truth: {stuffing.total_events}); "
          f"per host only {stuffing.events_per_host}")

    print("\n--- evidence release ---")
    report = auditor.audited_query("C3 = 'probe'")
    print(f"  signed evidence set: {len(report.glsns)} glsns, "
          f"verified={service.verify_report(report)}")

    snapshot = service.cost_snapshot()
    print(f"\nwhat the DLA nodes learned (secondary only): "
          f"{snapshot['leakage_categories']}")


if __name__ == "__main__":
    main()
