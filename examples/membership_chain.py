"""Anonymous-yet-accountable DLA membership (paper §4.2, Figures 6-7).

Walks the full life of an evidence chain:

1. the credential authority blind-signs audit tokens (it cannot link a
   token back to the enrolment — anonymity);
2. nodes join through the three-way PP → SC → RE handshake, producing
   cross-signed evidence pieces; invitation authority transfers;
3. a cheater invites twice with spent authority — detected from the
   evidence alone, and its identity escrow deanonymizes it.

Run:  python examples/membership_chain.py
"""

from repro.cluster import (
    CredentialAuthority,
    DlaMembership,
    ServiceTerms,
    make_evidence,
    run_join_handshake,
)
from repro.crypto import DeterministicRng
from repro.crypto.schnorr import SchnorrGroup
from repro.net.simnet import SimNetwork


def main() -> None:
    rng = DeterministicRng(b"membership-example")
    group = SchnorrGroup.generate(256, rng)
    authority = CredentialAuthority(group, rng)

    print("--- enrolment (blind token issuance) ---")
    real_ids = ["alice.example.org", "bob.example.org",
                "carol.example.org", "dave.example.org"]
    creds = {}
    for real_id in real_ids:
        c = authority.enroll(real_id)
        creds[real_id] = c
        print(f"  {real_id:<22} -> pseudonym {format(c.pseudonym, 'x')[:16]}… "
              f"token valid: {authority.verify_token(c.token)}")
    print("  (the authority signed blindly: it cannot map tokens to names)")

    alice, bob, carol, dave = (creds[r] for r in real_ids)
    membership = DlaMembership(authority, alice)

    print("\n--- Figure 7: three-way join handshakes over the network ---")
    net = SimNetwork()
    piece1 = run_join_handshake(
        net, authority, "Py", alice, "Px", bob,
        proposal=["support:Time", "support:C4"],
        services=["store:Time", "store:C4"],
        chain_index=1, rng=rng,
    )
    membership.admit(piece1)
    print(f"  join #1: {net.stats.messages} messages "
          f"({sorted(net.stats.by_kind)})")

    net2 = SimNetwork()
    piece2 = run_join_handshake(
        net2, authority, "Py", bob, "Px", carol,
        proposal=["support:Tid"], services=["store:Tid", "audit:intersect"],
        chain_index=2, rng=rng,
    )
    membership.admit(piece2)
    print(f"  join #2: authority transferred from pseudonym "
          f"{format(piece1.invitee_token.pseudonym, 'x')[:12]}… onward")

    print(f"\n--- Figure 6: the evidence chain ---")
    print(f"  members: {membership.size}, chain pieces: "
          f"{len(membership.chain.pieces)}")
    for piece in membership.chain.pieces:
        print(f"  e{piece.index}: "
              f"{format(piece.inviter_token.pseudonym, 'x')[:10]}… invited "
              f"{format(piece.invitee_token.pseudonym, 'x')[:10]}…  "
              f"terms={list(piece.terms.commitment)}")
    membership.verify()
    print("  full chain re-verification: OK")

    print("\n--- misconduct: alice invites again with spent authority ---")
    rogue = make_evidence(
        authority, alice, dave,
        ServiceTerms(("support:ip",), ("store:ip",)), index=3, rng=rng,
    )
    try:
        membership.admit(rogue)
    except Exception as exc:
        print(f"  canonical-chain admission rejected: {exc}")
    cheaters = membership.audit_for_double_invitation([rogue])
    print(f"  double-invitation audit over all presented evidence: "
          f"cheating pseudonym(s) {[format(c, 'x')[:12] + '…' for c in cheaters]}")

    print("\n--- deanonymization through the identity escrow ---")
    # alice joined as founder; for the demo, expose bob from piece1 where
    # bob deposited its escrow as invitee.
    report = membership.arbitrate(
        bob.pseudonym, [piece1], "bob.example.org", bob.identity_opening
    )
    print(f"  pseudonym {format(report.cheater_pseudonym, 'x')[:12]}… "
          f"opens to real identity: {report.exposed_real_id}")
    refusal = membership.arbitrate(bob.pseudonym, [piece1], None, None)
    print(f"  refusing to open the escrow is itself evidence: "
          f"refused={refusal.refused_to_open}")


if __name__ == "__main__":
    main()
