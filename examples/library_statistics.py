"""Secret counting for library-patron statistics (paper ref [7]).

Three library branches hold private activity logs.  Together they answer
"how many searches ran system-wide?", "how many records were located?",
and "which branch is busiest?" — through the relaxed secure sum (§3.5)
and blind-TTP ranking (§3.3) — without any branch revealing its tally and
without naming a single patron.

Run:  python examples/library_statistics.py
"""

from repro.crypto import DeterministicRng, shared_prime
from repro.net.simnet import SimNetwork
from repro.smc.base import SmcContext
from repro.smc.ranking import secure_ranking
from repro.smc.sum_ import secure_sum, secure_weighted_sum
from repro.workloads import LibraryWorkload


def main() -> None:
    workload = LibraryWorkload(branches=("U1", "U2", "U3"), seed=77)
    rows = workload.activity_rows(120)
    print(f"{len(rows)} patron events across {len(workload.branches)} branches "
          "(each branch's log is private)")

    ctx = SmcContext(shared_prime(128), DeterministicRng(b"library-example"))

    print("\n--- secret counting: searches per service (secure sum) ---")
    for service_name in workload.SERVICES:
        counts = workload.per_branch_counts(rows, service_name)
        net = SimNetwork()
        result = secure_sum(ctx, counts, net=net)
        print(f"  {service_name:<12} total {result.any_value:>4} "
              f"(branch tallies stayed private; {net.stats.messages} messages)")
        assert result.any_value == sum(counts.values())

    print("\n--- records located by searches (secure sum over volumes) ---")
    located = workload.per_branch_records_located(rows)
    result = secure_sum(ctx, located)
    print(f"  records located system-wide: {result.any_value}")

    print("\n--- weighted usage score (secure weighted sum) ---")
    # Public per-branch weights (e.g. branch size normalization).
    weights = {"U1": 1, "U2": 2, "U3": 3}
    searches = workload.per_branch_counts(rows, "search")
    weighted = secure_weighted_sum(ctx, searches, weights)
    print(f"  weights {weights} -> weighted search score {weighted.any_value}")

    print("\n--- busiest branch (blind-TTP ranking; only argmax revealed) ---")
    totals = {
        branch: sum(
            workload.per_branch_counts(rows, s)[branch]
            for s in workload.SERVICES
        )
        for branch in workload.branches
    }
    ranking = secure_ranking(ctx, totals, group_label="busiest")
    verdict = ranking.any_value
    print(f"  busiest: {verdict['argmax']}, quietest: {verdict['argmin']} "
          f"(absolute tallies never disclosed)")
    for branch in workload.branches:
        print(f"    {branch} learned only its own rank: "
              f"{ranking.value_for(branch)['rank']}/{verdict['n']}")

    print("\n--- what leaked (Definition 1 secondary information) ---")
    for category in sorted(ctx.leakage.categories()):
        print(f"  {category}")


if __name__ == "__main__":
    main()
