"""Real-socket transport on asyncio streams.

The wire format is *identical* to :class:`~repro.net.transport_tcp.TcpNode`
— the CRC-framed codec of :mod:`repro.net.codec`, unchanged byte for
byte — so async and sync nodes interoperate freely on one mesh.  What
changes is the concurrency model:

* **one pooled connection per peer** — the first send to a peer opens an
  asyncio stream and a dedicated *writer task*; subsequent sends (from
  the event loop or from any thread) enqueue frames onto that task's
  queue, preserving per-peer order;
* **writer-drain backpressure** — the writer task awaits
  ``StreamWriter.drain()`` after every write, so a slow peer suspends
  the one coroutine feeding it instead of blocking a thread or growing
  an unbounded kernel buffer;
* **reconnects** — a broken pipe closes the pooled stream and reopens
  it once (mirroring the sync pool's single retry), feeding the same
  per-peer ``repro_net_connections_open`` /
  ``repro_net_reconnects_total`` pool-health ledger.

Handlers keep the sync ``handler(msg, transport)`` signature the whole
protocol suite is written against; they run on the owning event loop.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable

from repro.aio.loop import LoopThread
from repro.errors import NodeUnreachableError, TransportClosedError, TransportTimeout
from repro.net.codec import FRAME_HEADER_BYTES, decode_frames, encode_frame
from repro.net.message import Message, NodeId
from repro.net.stats import NetworkStats
from repro.obs.tracer import NOOP_TRACER
from repro.resilience.delivery import DedupWindow

__all__ = ["AsyncTcpNode", "AsyncTcpCluster"]

Handler = Callable[[Message, "AsyncTcpNode"], None]

_READ_CHUNK = 65536


class AsyncTcpNode:
    """One networked participant on asyncio streams.

    Owns (or shares) a :class:`~repro.aio.loop.LoopThread`; the listener,
    reader tasks, and per-peer writer tasks all live on that loop, while
    ``send`` / ``receive`` stay callable from any thread (sync facade).
    """

    def __init__(
        self,
        node_id: NodeId,
        handler: Handler | None = None,
        loop_thread: LoopThread | None = None,
        tracer=None,
        metrics=None,
        telemetry=None,
    ) -> None:
        self.node_id = node_id
        self.stats = NetworkStats()
        self.tracer = tracer or NOOP_TRACER
        self.telemetry = telemetry
        if metrics is not None:
            self.stats.attach_metrics(metrics)
        self.corrupt_frames = 0
        self.duplicates_dropped = 0
        self._dedup = DedupWindow()
        self._handler = handler
        self._channel_handlers: dict[str, Handler] = {}
        self._address_book: dict[NodeId, tuple[str, int]] = {}
        self._owns_loop = loop_thread is None
        self._loop_thread = loop_thread or LoopThread(name=f"aio-tcp-{node_id}")
        self._closed = threading.Event()
        # Per-peer outbound state, touched only on the loop: frame queue,
        # writer task, open stream, and the ever-connected reconnect flag.
        self._queues: dict[NodeId, asyncio.Queue] = {}
        self._writer_tasks: dict[NodeId, asyncio.Task] = {}
        self._writers: dict[NodeId, asyncio.StreamWriter] = {}
        self._ever_connected: set[NodeId] = set()
        self._inbox: asyncio.Queue = self._loop_thread.run(self._make_inbox())
        self._server: asyncio.base_events.Server = self._loop_thread.run(
            self._start_server()
        )

    @staticmethod
    async def _make_inbox() -> asyncio.Queue:
        return asyncio.Queue()

    async def _start_server(self):
        return await asyncio.start_server(self._serve_connection, "127.0.0.1", 0)

    # -- wiring -----------------------------------------------------------

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop_thread.loop

    @property
    def address(self) -> tuple[str, int]:
        return self._server.sockets[0].getsockname()

    def set_handler(self, handler: Handler) -> None:
        self._handler = handler

    def register_channel(self, tag: str, handler: Handler) -> None:
        """Route deliveries tagged ``channel=tag`` to a dedicated handler."""
        self._channel_handlers[tag] = handler

    def unregister_channel(self, tag: str) -> None:
        self._channel_handlers.pop(tag, None)

    def learn_peers(self, address_book: dict[NodeId, tuple[str, int]]) -> None:
        """Install the cluster address book (node id -> (host, port))."""
        self._address_book.update(address_book)

    # -- sending ----------------------------------------------------------

    def _frame(self, msg: Message) -> bytes:
        if msg.dst not in self._address_book:
            raise NodeUnreachableError(f"unknown peer {msg.dst!r}")
        self._stamp_trace_context(msg)
        frame = encode_frame(msg)
        msg.size_bytes = len(frame) - FRAME_HEADER_BYTES
        return frame

    def _stamp_trace_context(self, msg: Message) -> None:
        hub = self.telemetry
        if (
            hub is None
            or not hub.enabled
            or msg.trace_id is not None
            or msg.kind.startswith("obs.")
        ):
            return
        context = hub.sender_context(msg.src)
        if context is not None:
            msg.trace_id, msg.parent_span_id = context

    def _record_send(self, msg: Message) -> None:
        if not msg.kind.startswith("obs."):
            self.stats.record(msg.kind, msg.size_bytes, msg.src, msg.dst)
        if self.tracer.enabled:
            self.tracer.add_event(
                "net.send",
                {
                    "src": msg.src,
                    "dst": msg.dst,
                    "kind": msg.kind,
                    "bytes": msg.size_bytes,
                },
            )

    def _enqueue(self, dst: NodeId, payload: bytes) -> None:
        """Hand ``payload`` to ``dst``'s writer task.  Runs on the loop."""
        queue = self._queues.get(dst)
        if queue is None:
            queue = self._queues[dst] = asyncio.Queue()
            self._writer_tasks[dst] = self.loop.create_task(self._writer_loop(dst))
        queue.put_nowait(payload)

    def send(self, msg: Message) -> None:
        """Send one framed message; callable from the loop or any thread."""
        if self._closed.is_set():
            raise TransportClosedError(f"{self.node_id} is closed")
        frame = self._frame(msg)
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self.loop:
            self._enqueue(msg.dst, frame)
        else:
            self.loop.call_soon_threadsafe(self._enqueue, msg.dst, frame)
        self._record_send(msg)

    def send_many(self, msgs: list[Message]) -> None:
        """Ship several messages, one queue item (one write) per peer."""
        if self._closed.is_set():
            raise TransportClosedError(f"{self.node_id} is closed")
        batches: dict[NodeId, bytearray] = {}
        for msg in msgs:
            batches.setdefault(msg.dst, bytearray()).extend(self._frame(msg))
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        for dst, payload in batches.items():
            if running is self.loop:
                self._enqueue(dst, bytes(payload))
            else:
                self.loop.call_soon_threadsafe(self._enqueue, dst, bytes(payload))
        for msg in msgs:
            self._record_send(msg)

    async def _connect(self, dst: NodeId) -> asyncio.StreamWriter:
        _reader, writer = await asyncio.open_connection(*self._address_book[dst])
        self._writers[dst] = writer
        self.stats.record_connect(dst, reconnect=dst in self._ever_connected)
        self._ever_connected.add(dst)
        return writer

    async def _writer_loop(self, dst: NodeId) -> None:
        """Drain ``dst``'s frame queue through one pooled connection."""
        queue = self._queues[dst]
        while not self._closed.is_set():
            payload = await queue.get()
            writer = self._writers.get(dst)
            try:
                if writer is None:
                    writer = await self._connect(dst)
                writer.write(payload)
                await writer.drain()
            except (OSError, ConnectionError):
                # One reconnect attempt: the peer may have restarted.
                if self._writers.pop(dst, None) is not None:
                    self.stats.record_disconnect(dst)
                if self._closed.is_set():
                    return
                writer = await self._connect(dst)
                writer.write(payload)
                await writer.drain()

    # -- receiving --------------------------------------------------------

    def _on_corrupt(self, error) -> None:
        self.corrupt_frames += 1
        if self.tracer.enabled:
            self.tracer.add_event(
                "net.corrupt_drop", {"node": self.node_id, "error": str(error)}
            )

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        buffer = bytearray()
        try:
            while not self._closed.is_set():
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    return
                buffer.extend(chunk)
                for msg in decode_frames(buffer, on_corrupt=self._on_corrupt):
                    self._dispatch(msg)
        finally:
            writer.close()

    def _dispatch(self, msg: Message) -> None:
        if msg.msg_id is not None:
            if self._dedup.seen((msg.src, msg.dst), msg.msg_id):
                self.duplicates_dropped += 1
                if self.tracer.enabled:
                    self.tracer.add_event(
                        "resilience.duplicate_dropped",
                        {"node": self.node_id, "mid": msg.msg_id},
                    )
                return
        hub = self.telemetry
        if hub is not None and hub.enabled and not msg.kind.startswith("obs."):
            with hub.node_span(
                self.node_id,
                f"node.{msg.kind}",
                {
                    "node": self.node_id,
                    "kind": msg.kind,
                    "src": msg.src,
                    "messages": 1,
                    "bytes": msg.size_bytes,
                },
                trace_id=msg.trace_id,
                remote_parent=msg.parent_span_id,
            ):
                self._deliver(msg)
        elif self.tracer.enabled:
            with self.tracer.span(
                "tcp.recv",
                {"node": self.node_id, "src": msg.src, "kind": msg.kind},
            ):
                self.tracer.add_event(
                    "net.recv", {"src": msg.src, "dst": msg.dst, "kind": msg.kind}
                )
                self._deliver(msg)
        else:
            self._deliver(msg)

    def _deliver(self, msg: Message) -> None:
        if msg.channel is not None:
            channel_handler = self._channel_handlers.get(msg.channel)
            if channel_handler is not None:
                channel_handler(msg, self)
                return
        if self._handler is not None:
            self._handler(msg, self)
        else:
            self._inbox.put_nowait(msg)

    async def receive_async(self, timeout: float | None = None) -> Message:
        """Await the next inbox message (handler-less pull-style usage)."""
        try:
            if timeout is None:
                return await self._inbox.get()
            return await asyncio.wait_for(self._inbox.get(), timeout)
        except asyncio.TimeoutError as exc:
            raise TransportTimeout(
                f"{self.node_id}: no message within {timeout}s"
            ) from exc

    def receive(self, timeout: float | None = None) -> Message:
        """Blocking sync facade over :meth:`receive_async`."""
        return self._loop_thread.run(
            self.receive_async(timeout), timeout=None if timeout is None else timeout + 5
        )

    # -- lifecycle ---------------------------------------------------------

    async def _shutdown(self) -> None:
        self._server.close()
        for task in self._writer_tasks.values():
            task.cancel()
        for dst, writer in list(self._writers.items()):
            try:
                writer.close()
            except OSError:
                pass
            self.stats.record_disconnect(dst)
        self._writers.clear()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        if self._loop_thread.running:
            try:
                self._loop_thread.run(self._shutdown(), timeout=10.0)
            except Exception:
                pass
        if self._owns_loop:
            self._loop_thread.close()

    def __enter__(self) -> "AsyncTcpNode":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncTcpCluster:
    """``node_ids`` on ephemeral localhost ports, meshed, sharing one loop."""

    def __init__(
        self,
        node_ids: list[NodeId],
        tracer=None,
        metrics=None,
        telemetry=None,
        loop_thread: LoopThread | None = None,
    ) -> None:
        self.telemetry = telemetry
        self._owns_loop = loop_thread is None
        self.loop_thread = loop_thread or LoopThread(name="aio-tcp-cluster")
        self.nodes: dict[NodeId, AsyncTcpNode] = {
            node_id: AsyncTcpNode(
                node_id,
                loop_thread=self.loop_thread,
                tracer=tracer,
                metrics=metrics,
                telemetry=telemetry,
            )
            for node_id in node_ids
        }
        book = {node_id: node.address for node_id, node in self.nodes.items()}
        for node in self.nodes.values():
            node.learn_peers(book)

    def __getitem__(self, node_id: NodeId) -> AsyncTcpNode:
        return self.nodes[node_id]

    def close(self) -> None:
        for node in self.nodes.values():
            node.close()
        if self._owns_loop:
            self.loop_thread.close()

    def __enter__(self) -> "AsyncTcpCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
