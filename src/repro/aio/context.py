"""`AsyncSmcContext`: coroutine entry points over the shared SMC context.

The context object itself needs nothing new — :class:`SmcContext`'s
ledgers are touched only between awaits on one event loop (or under
their own locks), so the sync class is already coroutine-safe.  What the
async core adds is *drivers*: every protocol in :mod:`repro.smc` has a
``secure_*_async`` coroutine twin that drives the rounds with
``await net.drain(...)`` instead of the blocking run loop.

:class:`AsyncSmcContext` packages those twins as methods, mirroring how
callers use the sync drivers::

    ctx = AsyncSmcContext(prime, rng)
    result = await ctx.set_intersection(sets, net=channel)

Two independent runs awaited concurrently (``asyncio.gather``) pipeline
their ring hops over the shared network; results are bitwise-identical
to the sync drivers (the equivalence suite asserts it).
"""

from __future__ import annotations

from repro.smc.base import SmcContext, SmcResult

__all__ = ["AsyncSmcContext"]


class AsyncSmcContext(SmcContext):
    """An :class:`SmcContext` whose protocol entry points are coroutines."""

    async def set_intersection(self, sets, **kwargs) -> SmcResult:
        from repro.smc import secure_set_intersection_async

        return await secure_set_intersection_async(self, sets, **kwargs)

    async def set_union(self, sets, **kwargs) -> SmcResult:
        from repro.smc import secure_set_union_async

        return await secure_set_union_async(self, sets, **kwargs)

    async def equality(self, left, right, **kwargs) -> SmcResult:
        from repro.smc import secure_equality_async

        return await secure_equality_async(self, left, right, **kwargs)

    async def compare(self, left, right, **kwargs) -> SmcResult:
        from repro.smc import secure_compare_async

        return await secure_compare_async(self, left, right, **kwargs)

    async def compare_batch(self, left, right, **kwargs) -> SmcResult:
        from repro.smc import secure_compare_batch_async

        return await secure_compare_batch_async(self, left, right, **kwargs)

    async def ranking(self, values, **kwargs) -> SmcResult:
        from repro.smc import secure_ranking_async

        return await secure_ranking_async(self, values, **kwargs)

    async def sum(self, values, observers, **kwargs) -> SmcResult:
        from repro.smc import secure_sum_async

        return await secure_sum_async(self, values, observers, **kwargs)

    async def weighted_sum(self, values, weights, observers, **kwargs) -> SmcResult:
        from repro.smc import secure_weighted_sum_async

        return await secure_weighted_sum_async(self, values, weights, observers, **kwargs)
