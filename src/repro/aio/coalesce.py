"""Coroutine-safe single-flight coalescing.

The thread-based :class:`~repro.sched.coalesce.SingleFlightCache` parks
joiners on a :class:`threading.Event` — on a single-threaded event loop
that is a deadlock, because the joiner's blocking wait prevents the
suspended holder coroutine from ever resuming.  :class:`AsyncSingleFlight`
is the coroutine-shaped equivalent: the holder computes under an
:class:`asyncio.Event`, joiners ``await`` it, and a failed holder stores
nothing so exactly one retrying joiner becomes the new holder (identical
no-poisoning semantics).

Sharing levels whose computes are *pure sync* (predicate scans,
projections) keep using the thread-based cache even inside coroutines —
a sync compute can never suspend, so the holder always finishes before
anyone could join on the same loop.  Only levels whose computes contain
``await`` (SMC subplans, whole queries) need this class.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from repro.cache import LruCache, caching_enabled

__all__ = ["AsyncSingleFlight"]


class _MISSING:
    pass


_MISS = _MISSING()


class AsyncSingleFlight:
    """An :class:`LruCache` with in-flight deduplication of coroutine computes.

    Same observable surface as the thread-based wrapper: ``name``,
    ``stats``, ``joins``, and joins counted into ``sched.coalesce_hits``
    labelled with the sharing level.  All state is touched only between
    awaits on one event loop, so no lock is needed.
    """

    def __init__(
        self,
        cache: LruCache,
        metrics=None,
        metric_label: str | None = None,
    ) -> None:
        self.cache = cache
        self._inflight: dict[object, asyncio.Event] = {}
        self.joins = 0
        self._metric = None
        if metrics is not None:
            self._metric = metrics.counter(
                "sched.coalesce_hits",
                help="computations served by joining concurrent identical work",
                labels={"level": metric_label or cache.name},
            )

    @property
    def name(self) -> str:
        return self.cache.name

    @property
    def stats(self):
        return self.cache.stats

    async def get_or_compute(self, key, compute: Callable[[], Awaitable[object]]):
        """Serve ``key`` from cache, join an in-flight compute, or compute."""
        if not caching_enabled():
            return await compute()
        while True:
            value = self.cache.get(key, _MISS)
            if value is not _MISS:
                return value
            event = self._inflight.get(key)
            if event is not None:
                # Join: await the holder, then re-check the cache.  A
                # failed holder stores nothing — the loop retries and one
                # joiner becomes the new holder (no exception fan-out).
                self.joins += 1
                if self._metric is not None:
                    self._metric.inc()
                await event.wait()
                continue
            self._inflight[key] = asyncio.Event()
            try:
                value = await compute()
                self.cache.put(key, value)
                return value
            finally:
                done = self._inflight.pop(key, None)
                if done is not None:
                    done.set()
