"""Configuration knobs of the async core (the ``REPRO_AIO_*`` family).

Documented in ``docs/async.md``; the docs-consistency suite sweeps this
package for ``REPRO_AIO_`` references and fails CI on any knob the docs
do not list.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "AioConfig",
    "MAX_INFLIGHT_ENV_VAR",
    "SCHEDULER_ENV_VAR",
    "YIELD_EVERY_ENV_VAR",
    "aio_scheduler_enabled",
]

#: Bound on concurrently *executing* query tasks (admission is unbounded:
#: excess queries are parked asyncio.Tasks awaiting the semaphore, which
#: cost a few KB each instead of an OS thread each).
MAX_INFLIGHT_ENV_VAR = "REPRO_AIO_MAX_INFLIGHT"
#: Whether ``ConfidentialAuditingService.scheduler`` hands out the async
#: scheduler (default) or the legacy thread pool (``off``).
SCHEDULER_ENV_VAR = "REPRO_AIO_SCHEDULER"
#: A drain loop yields to the event loop every this many network steps,
#: so concurrent drains interleave at bounded granularity.
YIELD_EVERY_ENV_VAR = "REPRO_AIO_YIELD_EVERY"

_OFF_VALUES = {"off", "0", "false", "no", "disabled"}


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"{name}={raw!r} is not an integer") from None
    if value < 1:
        raise ConfigurationError(f"{name} must be positive")
    return value


def aio_scheduler_enabled() -> bool:
    """Whether the service's lazy scheduler should be the async one."""
    raw = os.environ.get(SCHEDULER_ENV_VAR, "on").strip().lower()
    return raw not in _OFF_VALUES


@dataclass(frozen=True)
class AioConfig:
    """Async-core knobs; :meth:`from_env` reads the ``REPRO_AIO_*`` set."""

    max_inflight: int = 256
    yield_every: int = 32

    @classmethod
    def from_env(cls) -> "AioConfig":
        return cls(
            max_inflight=_env_int(MAX_INFLIGHT_ENV_VAR, cls.max_inflight),
            yield_every=_env_int(YIELD_EVERY_ENV_VAR, cls.yield_every),
        )
