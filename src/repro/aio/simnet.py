"""Drain-capable simulated network and channels for the event loop.

The sync substrate steps its event queue inside blocking ``run()`` loops
— correct, but a thread that calls ``run()`` is pinned until *its*
traffic quiesces.  On one event loop that model serializes everything,
so the async classes here replace blocking runs with cooperative
coroutine drains:

* :meth:`AsyncSimNetwork.drain` steps the global queue, yielding to the
  event loop every ``REPRO_AIO_YIELD_EVERY`` steps so concurrent drains
  interleave — a ring round for glsn *k+1* departs while *k*'s reply is
  still in flight, because the coroutine that sent *k* is suspended at a
  yield point, not blocking a thread.
* :meth:`AsyncChannel.drain` steps the *same global* queue (work
  conservation: whoever runs next helps deliver everyone's traffic,
  exactly like the sync helping loop) but stops at **channel
  quiescence** — the per-channel backlog counter maintained by
  :class:`~repro.net.simnet.SimNetwork` — instead of global exhaustion,
  so one query's drain returns as soon as its own rounds are done.

Delivery order stays deterministic: the queue is ordered by virtual
time + tiebreak, and steps are serialized under the mux lock, so which
coroutine happens to pump the loop never changes what is delivered when.
"""

from __future__ import annotations

import asyncio

from repro.aio.config import AioConfig
from repro.errors import ConfigurationError
from repro.net.simnet import SimNetwork
from repro.resilience.policy import Deadline
from repro.sched.channel import Channel, ChannelMux

__all__ = ["AsyncChannel", "AsyncChannelMux", "AsyncSimNetwork"]


class AsyncSimNetwork(SimNetwork):
    """A :class:`SimNetwork` whose drain is a coroutine.

    The event queue, fault model, reliability layer, and stats are the
    parent's, untouched — protocol results over this network are
    bitwise-identical to the sync one.  Only the *driver* differs:
    ``await net.drain()`` suspends at bounded intervals instead of
    monopolizing the thread, which is what lets independent protocol
    rounds on one loop pipeline.
    """

    def __init__(self, *args, yield_every: int | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.yield_every = (
            yield_every if yield_every is not None else AioConfig.from_env().yield_every
        )

    async def drain(
        self, max_steps: int = 1_000_000, deadline: Deadline | None = None
    ) -> int:
        """Coroutine twin of :meth:`SimNetwork.run`: drain the queue."""
        steps = 0
        check_deadline = deadline is not None and deadline.is_finite
        while self.step():
            steps += 1
            if steps >= max_steps:
                raise ConfigurationError(
                    f"network did not quiesce within {max_steps} deliveries"
                )
            if check_deadline and deadline.expired:
                if self.metrics is not None:
                    self.metrics.counter(
                        "resilience.deadline_exceeded",
                        help="runs abandoned because their deadline expired",
                    ).inc()
                deadline.check("simnet.drain")
            if steps % self.yield_every == 0:
                await asyncio.sleep(0)
        return steps


class AsyncChannel(Channel):
    """A :class:`~repro.sched.Channel` with a coroutine drain.

    Inherits the whole sync transport interface (``register`` / ``send``
    / ``run`` / per-channel stats and failure views), so the same channel
    object serves sync helpers and coroutine drivers alike.
    """

    async def drain(
        self, max_steps: int = 1_000_000, deadline: Deadline | None = None
    ) -> int:
        """Step the shared queue until *this channel* is quiescent.

        Helping semantics match :meth:`Channel.run`: any step may deliver
        another channel's message.  Quiescence, however, is per-channel —
        the backlog counter reaching zero — so this coroutine returns the
        moment its own query's rounds are done, while neighbors' traffic
        keeps flowing under whichever drain runs next.
        """
        steps = 0
        check_deadline = deadline is not None and deadline.is_finite
        yield_every = getattr(self.mux.net, "yield_every", 32)
        while True:
            with self.mux.lock:
                if self.mux.net.channel_backlog(self.tag) <= 0:
                    return steps
                progressed = self.mux.net.step()
            if not progressed:
                # Backlog says this channel still owes work, yet the global
                # queue is empty.  Every backlog unit corresponds to a live
                # queue entry (a delivery copy, a channel-tagged timer, or
                # a pending reliable send whose ack/retransmit timer chain
                # is global), so on the single-threaded loop this state is
                # an accounting bug — fail loudly rather than spin.
                raise ConfigurationError(
                    f"channel[{self.tag}]: backlog "
                    f"{self.mux.net.channel_backlog(self.tag)} with an empty "
                    "event queue (backlog accounting bug)"
                )
            steps += 1
            if steps >= max_steps:
                raise ConfigurationError(
                    f"network did not quiesce within {max_steps} deliveries"
                )
            if check_deadline and deadline.expired:
                if self.metrics is not None:
                    self.metrics.counter(
                        "resilience.deadline_exceeded",
                        help="runs abandoned because their deadline expired",
                    ).inc()
                deadline.check(f"channel[{self.tag}].drain")
            if steps % yield_every == 0:
                await asyncio.sleep(0)


class AsyncChannelMux(ChannelMux):
    """A :class:`~repro.sched.ChannelMux` handing out drain-capable channels."""

    channel_class = AsyncChannel
