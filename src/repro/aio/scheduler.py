"""Coroutine audit-query scheduler (semaphore admission, pipelined drains).

The drop-in async twin of :class:`~repro.sched.QueryScheduler`: the same
admission/isolation/coalescing/deadline contract, but each admitted query
runs as one :class:`asyncio.Task` on an owned event loop
(:class:`~repro.aio.loop.LoopThread`) instead of occupying a pool thread.

* **Admission** — unbounded: every :meth:`submit` immediately becomes a
  parked task, a few KB each instead of an OS thread each, so thousands
  of queries can be in flight.  An :class:`asyncio.Semaphore`
  (``REPRO_AIO_MAX_INFLIGHT``) bounds how many *execute* concurrently;
  the rest await it, with the wait charged to the query's deadline
  exactly like the sync scheduler's admission queue.
* **Isolation** — unchanged: a private :class:`~repro.smc.base.SmcContext`
  and one :class:`~repro.aio.simnet.AsyncChannel` per query over a shared
  :class:`~repro.aio.simnet.AsyncSimNetwork`, ledgers merged per query.
* **Pipelining** — drains are cooperative coroutines: query B's ring
  round departs while query A's reply is still in flight, because A is
  suspended at a yield point rather than blocking a worker thread.
* **Coalescing** — same four sharing levels and epoch-stamped keys.
  Scans and projections keep the thread-based single-flight caches
  (their computes are pure sync, so they cannot suspend mid-hold);
  subplans and whole queries — whose computes ``await`` — use
  :class:`~repro.aio.coalesce.AsyncSingleFlight`.

The sync facade is total: :meth:`submit`, :meth:`gather`,
:meth:`coalesce_stats`, and :meth:`shutdown` are plain methods bridging
onto the owned loop, the returned handles are the same
:class:`~repro.sched.QueryHandle` objects, and every metric, span,
leakage event, and error message matches the thread scheduler verbatim —
callers cannot tell which scheduler served them except by throughput.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.aio.config import AioConfig
from repro.aio.coalesce import AsyncSingleFlight
from repro.aio.loop import LoopThread
from repro.aio.simnet import AsyncChannelMux, AsyncSimNetwork
from repro.audit.executor import QueryExecutor, QueryResult
from repro.audit.planner import QueryPlan, plan_query
from repro.cache import LruCache
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    SchedulerShutdownError,
)
from repro.net.stats import CostReport
from repro.resilience.policy import Deadline
from repro.sched.coalesce import SingleFlightCache
from repro.sched.scheduler import QueryHandle, SchedulerConfig
from repro.smc.base import SmcContext
from repro.smc.leakage import LeakageEvent

__all__ = ["AsyncQueryScheduler"]


class AsyncQueryScheduler:
    """Admits, pipelines, and coalesces concurrent queries on one event loop.

    Built over one service deployment, like the thread scheduler; the
    constructor arguments override the environment defaults
    (``REPRO_AIO_MAX_INFLIGHT``, ``REPRO_SCHED_COALESCE``).  Passing a
    ``loop_thread`` shares an existing loop (the scheduler then never
    closes it); by default the scheduler owns its loop and tears it down
    on :meth:`shutdown`.
    """

    def __init__(
        self,
        service,
        max_inflight: int | None = None,
        coalesce: bool | None = None,
        metrics=None,
        loop_thread: LoopThread | None = None,
    ) -> None:
        env = AioConfig.from_env()
        self.config = AioConfig(
            max_inflight=(
                max_inflight if max_inflight is not None else env.max_inflight
            ),
            yield_every=env.yield_every,
        )
        if self.config.max_inflight < 1:
            raise ConfigurationError("scheduler needs max_inflight >= 1")
        sched_env = SchedulerConfig.from_env()
        self.coalesce = coalesce if coalesce is not None else sched_env.coalesce
        self.service = service
        self.metrics = metrics if metrics is not None else service.metrics
        if self.metrics is None:
            from repro.obs.metrics import MetricsRegistry

            self.metrics = MetricsRegistry()
        self.loop_thread = loop_thread if loop_thread is not None else LoopThread(
            name="repro-aio-sched"
        )
        self._owns_loop = loop_thread is None
        self.net: AsyncSimNetwork = service._fresh_net(net_class=AsyncSimNetwork)
        self.mux = AsyncChannelMux(self.net)
        self._seq = 0
        self._state_lock = threading.Lock()
        self._closed = False
        #: Created lazily inside the first task so it binds the owned loop.
        self._sem: asyncio.Semaphore | None = None
        self._waiting = 0
        self._futures: set = set()
        if self.coalesce:
            m = self.metrics
            self._scan_flight = SingleFlightCache(
                LruCache("sched.scan", metrics=m), metrics=m, metric_label="scan"
            )
            self._projection_flight = SingleFlightCache(
                LruCache("sched.projection", metrics=m),
                metrics=m,
                metric_label="projection",
            )
            self._subplan_flight = AsyncSingleFlight(
                LruCache("sched.subplan", metrics=m), metrics=m, metric_label="subplan"
            )
            self._query_flight = AsyncSingleFlight(
                LruCache("sched.query", metrics=m), metrics=m, metric_label="query"
            )
        else:
            self._scan_flight = None
            self._projection_flight = None
            self._subplan_flight = None
            self._query_flight = None
        self._depth_gauge = self.metrics.gauge(
            "sched.queue_depth", help="queries waiting for a worker"
        )
        self._inflight_gauge = self.metrics.gauge(
            "sched.in_flight", help="queries currently executing"
        )
        self._admission_hist = self.metrics.histogram(
            "sched.admission_wait_seconds",
            help="seconds between submit and worker pickup",
        )
        self._submitted = self.metrics.counter(
            "sched.submitted", help="queries admitted"
        )
        self._completed = self.metrics.counter(
            "sched.completed", help="queries finished successfully"
        )
        self._failed = self.metrics.counter(
            "sched.failed", help="queries finished with an error"
        )

    # -- admission ---------------------------------------------------------

    def submit(self, criterion, timeout: float | None = None) -> QueryHandle:
        """Admit one query; returns immediately with its handle.

        ``criterion`` is a criterion string or a pre-built
        :class:`~repro.audit.planner.QueryPlan`.  ``timeout`` starts the
        query's deadline *now* — time parked behind the in-flight
        semaphore spends it.  Admission itself never blocks: the query
        becomes an event-loop task straight away.
        """
        with self._state_lock:
            if self._closed:
                raise SchedulerShutdownError("scheduler is shut down")
            self._seq += 1
            handle = QueryHandle(self._seq, criterion, Deadline.after(timeout))
            future = self.loop_thread.submit(self._process(handle))
            self._futures.add(future)
        future.add_done_callback(self._discard_future)
        self._submitted.inc()
        return handle

    def _discard_future(self, future) -> None:
        with self._state_lock:
            self._futures.discard(future)

    def gather(self, handles: list[QueryHandle]) -> list[QueryResult]:
        """Results of ``handles`` in submission order (first failure raises)."""
        return [handle.result() for handle in handles]

    # -- per-query task ----------------------------------------------------

    async def _process(self, handle: QueryHandle) -> None:
        # run_coroutine_threadsafe copies the *submitting* thread's
        # context, which may carry an open span stack; each query task
        # must start from a clean slate or spans would mis-parent.
        self.service.tracer.detach_context()
        if self._sem is None:
            self._sem = asyncio.Semaphore(self.config.max_inflight)
        self._waiting += 1
        self._depth_gauge.set(self._waiting)
        try:
            await self._sem.acquire()
        finally:
            self._waiting -= 1
            self._depth_gauge.set(self._waiting)
        self._inflight_gauge.inc()
        try:
            wait = time.perf_counter() - handle.submitted_at
            self._admission_hist.observe(wait)
            handle.started_at = time.perf_counter()
            handle.deadline.check(f"sched.admission[q{handle.seq}]")
            qplan = (
                handle.criterion
                if isinstance(handle.criterion, QueryPlan)
                else plan_query(
                    handle.criterion,
                    self.service.schema,
                    self.service.store.plan,
                    tracer=self.service.tracer,
                )
            )
            if self._query_flight is None:
                result = await self._execute(handle, qplan)
            else:
                ran = False

                async def compute() -> QueryResult:
                    nonlocal ran
                    ran = True
                    return await self._execute(handle, qplan)

                key = (qplan.fingerprint(), self._epoch_vector())
                value = await self._query_flight.get_or_compute(key, compute)
                if ran:
                    result = value
                else:
                    result = self._fan_out(handle, qplan, value)
            handle._resolve(result)
            self._completed.inc()
        except DeadlineExceededError as exc:
            handle._fail(exc)
            self._failed.inc()
        except Exception as exc:  # typed repro errors and genuine bugs alike
            handle._fail(exc)
            self._failed.inc()
        finally:
            self._inflight_gauge.dec()
            self._sem.release()

    # -- execution ---------------------------------------------------------

    def _epoch_vector(self) -> tuple:
        """Every node store's epoch — the coalescing validity stamp."""
        store = self.service.store
        return tuple(
            (node_id, store.node_store(node_id).epoch)
            for node_id in store.plan.node_ids
        )

    async def _execute(self, handle: QueryHandle, qplan: QueryPlan) -> QueryResult:
        service = self.service
        # One ring of a sharded cluster prefixes its channel tags with the
        # shard label, so multiplexed traffic stays attributable per shard.
        shard = getattr(service, "shard_label", None)
        tag = f"{shard}.q{handle.seq}" if shard else f"q{handle.seq}"
        channel = self.mux.channel(tag)
        qctx = SmcContext(
            service.ctx.prime,
            service.rng.spawn(f"sched:{handle.seq}"),
            engine=service.ctx.engine,
            tracer=service.tracer,
            metrics=service.metrics,
            encoder=service.ctx.encoder,
            precompute=service.precompute,
            telemetry=service.telemetry,
        )
        executor = QueryExecutor(
            service.store,
            qctx,
            service.schema,
            value_bound=service.executor.value_bound,
            batch_compare=service.executor.batch_compare,
            projection_cache=self._projection_flight,
            scan_cache=self._scan_flight,
            subplan_cache=self._subplan_flight,
        )
        vt_start = self.net.now
        span_attrs = {"criterion": qplan.criterion_text, "channel": tag}
        if shard:
            span_attrs["shard"] = shard
        try:
            with service.tracer.span("sched.query", span_attrs) as span:
                result = await executor.execute_async(
                    qplan, net=channel, deadline=handle.deadline
                )
                if service.tracer.enabled:
                    span.set_attribute("matches", len(result.glsns))
            # Concurrent queries feed the confidentiality observatory too
            # (it is thread-safe); leakage is this query's private ledger.
            service.observe_query_result(result, len(qctx.leakage.events))
            return result
        finally:
            # Cost and leakage are attributed even on failure: the query
            # spent the traffic and disclosed the entries regardless.
            handle.cost = CostReport.collect(
                channel.stats, qctx.crypto_ops, virtual_time=self.net.now - vt_start
            )
            handle.leakage = qctx.leakage.events
            service.ctx.leakage.extend(handle.leakage)
            service.ctx.crypto_ops.merge(qctx.crypto_ops)
            channel.close()

    def _fan_out(
        self, handle: QueryHandle, qplan: QueryPlan, value: QueryResult
    ) -> QueryResult:
        """Hand a coalesced query its private copy of the shared result."""
        handle.coalesced = True
        handle.cost = CostReport(messages=0, bytes=0, crypto_ops={})
        events = [
            LeakageEvent(
                "scheduler",
                "*",
                "coalesced_result",
                f"query #{handle.seq} fanned out from a concurrent identical "
                f"query (equal plan fingerprint at equal store epochs)",
            )
        ]
        handle.leakage = events
        self.service.ctx.leakage.extend(events)
        return QueryResult(
            plan=qplan,
            glsns=list(value.glsns),
            subquery_glsns={k: list(v) for k, v in value.subquery_glsns.items()},
            messages=value.messages,
            bytes=value.bytes,
        )

    # -- introspection -----------------------------------------------------

    def coalesce_stats(self) -> dict:
        """Hit/miss/join counts per sharing level (empty when disabled)."""
        out: dict = {}
        for flight in (
            self._scan_flight,
            self._projection_flight,
            self._subplan_flight,
            self._query_flight,
        ):
            if flight is None:
                continue
            s = flight.stats
            out[flight.name] = {
                "hits": s.hits,
                "misses": s.misses,
                "joins": flight.joins,
            }
        return out

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop admitting, drain every in-flight query, stop the loop."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            futures = list(self._futures)
        if wait:
            for future in futures:
                try:
                    future.result()
                except Exception:
                    # The failure is already recorded on its handle; the
                    # task future is only awaited here for quiescence.
                    pass
        if self._owns_loop:
            self.loop_thread.close()

    def __enter__(self) -> "AsyncQueryScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
