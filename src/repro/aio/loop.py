"""One owned event loop on a daemon thread, with a sync facade.

Loop ownership is the central design decision of :mod:`repro.aio` (see
``docs/async.md``): the async scheduler *owns* its event loop rather
than borrowing the caller's, so sync entry points keep working whether
or not the caller has a loop running.  :class:`LoopThread` encapsulates
that ownership — it starts the loop lazily on a daemon thread, bridges
sync callers in via :func:`asyncio.run_coroutine_threadsafe`, and stops
the loop cleanly on close.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Any, Coroutine

__all__ = ["LoopThread"]


class LoopThread:
    """A lazily-started daemon thread running one asyncio event loop."""

    def __init__(self, name: str = "repro-aio-loop") -> None:
        self.name = name
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._lock = threading.Lock()
        self._closed = False

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The owned loop, starting the thread on first access."""
        self._ensure()
        assert self._loop is not None
        return self._loop

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _ensure(self) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError(f"{self.name}: loop thread is closed")
            if self._thread is not None:
                return
            self._loop = asyncio.new_event_loop()
            self._thread = threading.Thread(
                target=self._run, name=self.name, daemon=True
            )
            self._thread.start()
        self._started.wait()

    def _run(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        try:
            self._loop.run_forever()
        finally:
            # Cancel whatever is still pending, then let cancellations run.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

    # -- sync facade -------------------------------------------------------

    def submit(self, coro: Coroutine) -> concurrent.futures.Future:
        """Schedule ``coro`` on the owned loop; returns a waitable future."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def run(self, coro: Coroutine, timeout: float | None = None) -> Any:
        """Run ``coro`` on the owned loop and block for its result."""
        return self.submit(coro).result(timeout)

    def close(self) -> None:
        """Stop the loop and join the thread (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)

    def __enter__(self) -> "LoopThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
