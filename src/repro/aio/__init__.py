"""`asyncio`-native core under the sync facade (see ``docs/async.md``).

The thread-pool scheduler (:mod:`repro.sched`) buys concurrency with one
OS thread per in-flight query — tens of queries before lock contention
and stack cost dominate.  The paper's workload is I/O-bound message
ping-pong around TTP rings, which is exactly what a single event loop
pipelines best.  This package supplies that loop:

* :class:`AsyncSimNetwork` / :class:`AsyncChannel` /
  :class:`AsyncChannelMux` — the simulated network and the per-query
  channel multiplexer with a cooperative ``await drain()`` in place of
  the blocking stepped run loop, so independent protocol rounds on one
  loop overlap instead of serializing;
* :class:`AsyncTcpNode` / :class:`AsyncTcpCluster` — real-socket
  transport on asyncio streams (one pooled connection per peer,
  writer-drain backpressure, the CRC framing of :mod:`repro.net.codec`
  unchanged on the wire);
* :class:`AsyncSmcContext` — an :class:`~repro.smc.base.SmcContext`
  whose protocol entry points are coroutines (the ``secure_*_async``
  drivers in :mod:`repro.smc`);
* :class:`AsyncQueryScheduler` — per-query ``asyncio.Task`` s with
  semaphore-bounded execution (``REPRO_AIO_MAX_INFLIGHT``) behind the
  same sync ``submit``/``gather`` facade as
  :class:`~repro.sched.QueryScheduler`, driven by a :class:`LoopThread`
  that owns the event loop.

Every sync entry point (``ConfidentialAuditingService.query``, the
scheduler facade, the shard front door) keeps working unmodified; the
coroutine paths preserve the exact-reconciliation invariants for spans,
cost reports, and leakage ledgers.
"""

from repro.aio.config import (
    AioConfig,
    MAX_INFLIGHT_ENV_VAR,
    SCHEDULER_ENV_VAR,
    YIELD_EVERY_ENV_VAR,
    aio_scheduler_enabled,
)
from repro.aio.context import AsyncSmcContext
from repro.aio.coalesce import AsyncSingleFlight
from repro.aio.loop import LoopThread
from repro.aio.scheduler import AsyncQueryScheduler
from repro.aio.simnet import AsyncChannel, AsyncChannelMux, AsyncSimNetwork
from repro.aio.transport_tcp import AsyncTcpCluster, AsyncTcpNode

__all__ = [
    "AioConfig",
    "AsyncChannel",
    "AsyncChannelMux",
    "AsyncQueryScheduler",
    "AsyncSimNetwork",
    "AsyncSingleFlight",
    "AsyncSmcContext",
    "AsyncTcpCluster",
    "AsyncTcpNode",
    "LoopThread",
    "MAX_INFLIGHT_ENV_VAR",
    "SCHEDULER_ENV_VAR",
    "YIELD_EVERY_ENV_VAR",
    "aio_scheduler_enabled",
]
