"""``python -m repro`` — a one-command demonstration of the DLA service.

Runs the paper's core loop end to end with narration: Table 1 logging,
fragmentation, a confidential query with a Figure 3 decomposition, a
signed report, integrity checking, and the session leakage summary.

``python -m repro trace-report <trace.jsonl>`` renders the cost-
attribution table of a span trace captured with ``--trace-out``.
"""

from __future__ import annotations

import argparse
import sys

from repro import ApplicationNode, Auditor, ConfidentialAuditingService
from repro.cache import cache_stats_snapshot
from repro.crypto import DeterministicRng
from repro.logstore import LogRecord, paper_fragment_plan, paper_table1_schema, render_table
from repro.workloads import paper_table1_rows


def run_demo(prime_bits: int, seed: str, trace_out: str | None = None) -> int:
    tracer = None
    if trace_out is not None:
        from repro.obs import Tracer

        tracer = Tracer()
    schema = paper_table1_schema()
    service = ConfidentialAuditingService(
        schema,
        paper_fragment_plan(schema),
        prime_bits=prime_bits,
        rng=DeterministicRng(seed),
        tracer=tracer,
    )
    print("== DLA cluster ==")
    print(service.describe())
    print(f"membership: {service.membership_summary()}")

    # Offline phase: fill the correlated-randomness pools while "idle"
    # (REPRO_PRECOMPUTE=off falls back to inline computation).
    service.warm_pools(include_witnesses=False)

    writer = ApplicationNode.register("U1", service)
    receipts = [service.log_event(row, writer.ticket) for row in paper_table1_rows()]
    records = [LogRecord(r.glsn, row) for r, row in zip(receipts, paper_table1_rows())]
    print("\n== Table 1 (logged through the cluster) ==")
    print(render_table(records, ["Time", "id", "protocl", "Tid", "C1", "C2", "C3"]))

    auditor = Auditor("demo-auditor", service)
    criterion = "(C1 > 30 or protocl = 'TCP') and Tid = 'T1100267'"
    print(f"\n== query plan: {criterion} ==")
    print(service.plan_criterion(criterion).describe())
    result = auditor.query(criterion)
    print(f"matches: {[format(g, 'x') for g in result.glsns]} "
          f"({result.messages} msgs, {result.bytes} bytes)")
    # The same criterion again: epoch-keyed caches serve the projections.
    rerun = auditor.query(criterion)
    assert rerun.glsns == result.glsns
    print("\n== caches (after repeating the query; REPRO_CACHE=off disables) ==")
    for name, row in cache_stats_snapshot().items():
        total = row["hits"] + row["misses"]
        rate = row["hits"] / total if total else 0.0
        print(f"  {name:18s} hits={row['hits']:<4d} misses={row['misses']:<4d} "
              f"hit_rate={rate:.0%}")

    print("\n== precompute pools (offline/online split; REPRO_PRECOMPUTE=off disables) ==")
    print(f"  pool hit rate: {service.precompute.hit_rate():.0%}")
    for name, row in sorted(service.precompute.pool_snapshot().items()):
        print(f"  {name:20s} depth={row['depth']:<4d} hits={row['hits']:<4d} "
              f"misses={row['misses']:<4d} refills={row['refills']}")

    report = auditor.audited_query("Tid = 'T1100265'")
    print(f"\n== signed report ==\nrecords {len(report.glsns)}, "
          f"verified={service.verify_report(report)}")

    print(f"\n== aggregates ==")
    print(f"sum C1 = {auditor.aggregate('sum', 'C1').value}, "
          f"max C2 = {auditor.aggregate('max', 'C2').value}")

    clean = sum(r.ok for r in service.check_integrity())
    print(f"\n== integrity == {clean}/{len(receipts)} records verified")
    print(f"\n== leakage == {service.cost_snapshot()['leakage_categories']}")

    observatory = service.observatory.report()
    c_dla = observatory["c_dla"]
    print(f"\n== confidentiality observatory == "
          f"C_DLA={c_dla if c_dla is not None else 'n/a'} "
          f"over {observatory['queries']} queries")

    if tracer is not None:
        from repro.obs import write_jsonl

        # Coordinator spans plus the node spans the collection rounds
        # shipped back — trace-report assembles them into one id space.
        spans = tracer.finished_spans() + list(service.last_node_spans)
        write_jsonl(spans, trace_out)
        print(f"\n== trace == {len(spans)} spans written to {trace_out}")
    return 0


def run_trace_report(
    path: str, tree: bool = False, critical_path: bool = False
) -> int:
    """Render the cost-attribution table (or span tree) of a JSONL trace."""
    from repro.obs import (
        assemble_forest,
        load_jsonl,
        render_attribution,
        render_critical_path,
        render_tree,
    )

    # Traces may mix coordinator and per-node flight-recorder spans with
    # colliding per-tracer ids; assembly renumbers them into one id space
    # (a pure renumbering no-op for single-tracer traces).
    spans = assemble_forest(load_jsonl(path))
    if critical_path:
        print(render_critical_path(spans))
    elif tree:
        print(render_tree(spans))
    else:
        print(render_attribution(spans))
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "trace-report":
        sub = argparse.ArgumentParser(
            prog="python -m repro trace-report",
            description="Cost-attribution report over a span trace (JSONL)",
        )
        sub.add_argument("trace", help="span trace written by --trace-out")
        sub.add_argument(
            "--tree", action="store_true",
            help="render the span tree instead of the attribution table",
        )
        sub.add_argument(
            "--critical-path", action="store_true",
            help="show the chain of spans that determined the root's end "
                 "time (which ring hop dominated the query)",
        )
        sub_args = sub.parse_args(argv[1:])
        return run_trace_report(
            sub_args.trace,
            tree=sub_args.tree,
            critical_path=sub_args.critical_path,
        )

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Confidential DLA reproduction demo (Shen/Liu/Zhao, ICDCS 2004)",
    )
    parser.add_argument(
        "--prime-bits", type=int, default=128,
        help="commutative-cipher prime size (default 128)",
    )
    parser.add_argument(
        "--seed", default="repro-demo", help="deterministic RNG seed"
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="trace the run and write the span tree as JSON lines to PATH",
    )
    args = parser.parse_args(argv)
    return run_demo(args.prime_bits, args.seed, trace_out=args.trace_out)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed early (e.g. `trace-report | head`);
        # detach stdout so the interpreter doesn't complain on shutdown.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
