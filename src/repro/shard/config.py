"""Environment knobs for the sharded cluster (``REPRO_SHARD_*``).

* ``REPRO_SHARD_COUNT`` — default shard (ring) count when the caller
  does not pass one (default 2);
* ``REPRO_SHARD_BLOCK_SIZE`` — glsn-range stripe width of the default
  placement rule and the tenant-pinning lease size (default 64; 1 is
  per-record round-robin, the most balanced split);
* ``REPRO_SHARD_TENANT_PINNING`` — ``on`` enables tenant→shard pinning
  with per-shard (hence per-pinned-tenant) fresh SMC primes and keys
  (default ``off``).

All three are read once at :class:`ShardConfig.from_env`; explicit
constructor arguments always win over the environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "ShardConfig",
    "SHARD_COUNT_ENV_VAR",
    "SHARD_BLOCK_SIZE_ENV_VAR",
    "SHARD_TENANT_PINNING_ENV_VAR",
]

SHARD_COUNT_ENV_VAR = "REPRO_SHARD_COUNT"
SHARD_BLOCK_SIZE_ENV_VAR = "REPRO_SHARD_BLOCK_SIZE"
SHARD_TENANT_PINNING_ENV_VAR = "REPRO_SHARD_TENANT_PINNING"

_ON_VALUES = {"on", "1", "true", "yes", "enabled"}


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"{name}={raw!r} is not an integer") from None
    if value < 1:
        raise ConfigurationError(f"{name} must be positive")
    return value


@dataclass(frozen=True)
class ShardConfig:
    """Sharding knobs; :meth:`from_env` reads the ``REPRO_SHARD_*`` set."""

    count: int = 2
    block_size: int = 64
    tenant_pinning: bool = False

    @classmethod
    def from_env(cls) -> "ShardConfig":
        raw_pin = os.environ.get(SHARD_TENANT_PINNING_ENV_VAR, "off")
        return cls(
            count=_env_int(SHARD_COUNT_ENV_VAR, cls.count),
            block_size=_env_int(SHARD_BLOCK_SIZE_ENV_VAR, cls.block_size),
            tenant_pinning=raw_pin.strip().lower() in _ON_VALUES,
        )
