"""The shard map: versioned glsn-range → shard placement metadata.

Placement is two-layered:

* a **default striping rule** — the glsn space is cut into fixed-width
  blocks of ``block_size`` starting at the allocator origin, and block
  ``k`` lands on shard ``k mod shards``.  This needs no stored state, so
  the map stays O(overrides) however large the log grows, and (with a
  sequential global allocator) assigns every record the *same* glsn it
  would have in a single-ring deployment — the property the scatter-gather
  result-identity tests pin down;
* **explicit overrides** — half-open ``[lo, hi)`` ranges materialized by
  rebalancing (:meth:`ShardMap.split_range`, :meth:`ShardMap.move_range`)
  and tenant-pinning leases, consulted before the striping rule.

Every placement change bumps :attr:`ShardMap.version`.  Routers embed the
version in receipts; an append presented with a stale version is rejected
with the typed :class:`~repro.errors.StaleShardMapError` instead of being
silently mis-sharded.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import ConfigurationError, ShardMapError, UnknownShardError
from repro.logstore.glsn import PAPER_GLSN_START

__all__ = ["ShardRange", "ShardMap"]


@dataclass(frozen=True)
class ShardRange:
    """A half-open glsn range ``[lo, hi)`` placed on one shard."""

    lo: int
    hi: int
    shard: int

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise ShardMapError(f"empty shard range [{self.lo:#x}, {self.hi:#x})")

    def __contains__(self, glsn: int) -> bool:
        return self.lo <= glsn < self.hi


class ShardMap:
    """Versioned placement: glsn → shard via overrides, else striping."""

    def __init__(
        self,
        shards: int,
        start: int = PAPER_GLSN_START,
        block_size: int = 64,
    ) -> None:
        if shards < 1:
            raise ConfigurationError("a cluster needs at least one shard")
        if block_size < 1:
            raise ConfigurationError("shard block size must be positive")
        if start < 0:
            raise ConfigurationError("glsn origin must be non-negative")
        self.shards = shards
        self.start = start
        self.block_size = block_size
        self._version = 1
        # Sorted, non-overlapping explicit ranges; consulted before the
        # striping rule.  bisect keys on lo.
        self._overrides: list[ShardRange] = []

    # -- readout -----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic placement version; bumped by every mutation."""
        return self._version

    @property
    def shard_ids(self) -> list[int]:
        return list(range(self.shards))

    def check_shard(self, shard: int) -> int:
        if not 0 <= shard < self.shards:
            raise UnknownShardError(
                f"shard {shard} outside cluster of {self.shards}"
            )
        return shard

    def _override_for(self, glsn: int) -> ShardRange | None:
        idx = bisect.bisect_right(self._overrides, glsn, key=lambda r: r.lo) - 1
        if idx >= 0 and glsn in self._overrides[idx]:
            return self._overrides[idx]
        return None

    def _default_block(self, glsn: int) -> ShardRange:
        """The striping block containing ``glsn`` with its default shard."""
        if glsn < self.start:
            raise ShardMapError(
                f"glsn {glsn:#x} precedes the allocator origin {self.start:#x}"
            )
        k = (glsn - self.start) // self.block_size
        lo = self.start + k * self.block_size
        return ShardRange(lo=lo, hi=lo + self.block_size, shard=k % self.shards)

    def shard_for(self, glsn: int) -> int:
        """The shard owning ``glsn`` under the current map."""
        override = self._override_for(glsn)
        if override is not None:
            return override.shard
        return self._default_block(glsn).shard

    def range_for(self, glsn: int) -> ShardRange:
        """The placement range containing ``glsn`` (override or block)."""
        override = self._override_for(glsn)
        return override if override is not None else self._default_block(glsn)

    # -- mutation ----------------------------------------------------------

    def _bump(self) -> int:
        self._version += 1
        return self._version

    def _insert(self, new: ShardRange) -> None:
        idx = bisect.bisect_left(self._overrides, new.lo, key=lambda r: r.lo)
        before = self._overrides[idx - 1] if idx > 0 else None
        after = self._overrides[idx] if idx < len(self._overrides) else None
        if (before is not None and before.hi > new.lo) or (
            after is not None and new.hi > after.lo
        ):
            raise ShardMapError(
                f"range [{new.lo:#x}, {new.hi:#x}) overlaps an existing override"
            )
        self._overrides.insert(idx, new)

    def split_range(self, pivot: int) -> tuple[ShardRange, ShardRange]:
        """Split the placement range containing ``pivot`` at ``pivot``.

        Materializes the containing range (a striping block, unless it is
        already an override) as two explicit overrides with unchanged
        placement, bumps the version, and returns the pair.  The split is
        the preparation step for :meth:`move_range`: afterwards either
        half can move independently.
        """
        current = self.range_for(pivot)
        if pivot <= current.lo or pivot >= current.hi:
            raise ShardMapError(
                f"pivot {pivot:#x} does not strictly split "
                f"[{current.lo:#x}, {current.hi:#x})"
            )
        if current in self._overrides:
            self._overrides.remove(current)
        low = ShardRange(lo=current.lo, hi=pivot, shard=current.shard)
        high = ShardRange(lo=pivot, hi=current.hi, shard=current.shard)
        self._insert(low)
        self._insert(high)
        self._bump()
        return low, high

    def move_range(self, lo: int, hi: int, dst: int) -> int:
        """Re-place the exact range ``[lo, hi)`` onto shard ``dst``.

        Bounds must name an existing override or one whole striping block
        — anything else raises :class:`~repro.errors.ShardMapError`
        (``split_range`` first to carve finer boundaries).  Returns the
        source shard; bumps the version even when ``dst`` equals it, so
        clients observing the move always see a new map.
        """
        self.check_shard(dst)
        current = self.range_for(lo)
        if (current.lo, current.hi) != (lo, hi):
            raise ShardMapError(
                f"[{lo:#x}, {hi:#x}) is not a placement range boundary "
                f"(containing range is [{current.lo:#x}, {current.hi:#x})); "
                f"split_range first"
            )
        src = current.shard
        if current in self._overrides:
            self._overrides.remove(current)
        self._insert(ShardRange(lo=lo, hi=hi, shard=dst))
        self._bump()
        return src

    def pin_range(self, lo: int, hi: int, shard: int) -> ShardRange:
        """Place a brand-new override (tenant-pinning lease blocks)."""
        self.check_shard(shard)
        pinned = ShardRange(lo=lo, hi=hi, shard=shard)
        self._insert(pinned)
        self._bump()
        return pinned

    # -- introspection -----------------------------------------------------

    @property
    def overrides(self) -> list[ShardRange]:
        return list(self._overrides)

    def describe(self) -> dict:
        """JSON-safe dump for telemetry and the docs examples."""
        return {
            "shards": self.shards,
            "version": self._version,
            "block_size": self.block_size,
            "start": self.start,
            "overrides": [
                {"lo": r.lo, "hi": r.hi, "shard": r.shard}
                for r in self._overrides
            ],
        }
