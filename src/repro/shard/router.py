"""The shard router: global glsn allocation + placement + stale-map guard.

One :class:`ShardRouter` fronts the whole multi-ring cluster.  It owns the
single global :class:`~repro.logstore.glsn.GlsnAllocator` (glsns stay
unique and sequential across shards — identical to what a single-ring
deployment would assign) and the :class:`~repro.shard.map.ShardMap` that
places each glsn on a ring.

Tenant pinning (``REPRO_SHARD_TENANT_PINNING``): a pinned tenant's
appends bypass the striping rule.  The router leases a block of glsns
from the global allocator, materializes it as an explicit map override
onto the pinned shard, and allocates inside the lease — so pinned data is
*physically* confined to one ring (which, under pinning, runs its own
fresh SMC prime and authority keys) while glsn uniqueness still holds
globally.

The stale-map guard: callers may present the map version they last
observed; if placement has changed since, the route is refused with the
typed :class:`~repro.errors.StaleShardMapError` rather than silently
landing records on the wrong ring.
"""

from __future__ import annotations

import threading

from repro.errors import ConfigurationError, StaleShardMapError
from repro.logstore.glsn import GlsnAllocator, GlsnBlock
from repro.shard.map import ShardMap, ShardRange

__all__ = ["ShardRouter"]


class ShardRouter:
    """Routes appends: allocates the glsn, names the owning shard."""

    def __init__(
        self,
        shard_map: ShardMap,
        allocator: GlsnAllocator | None = None,
        tenant_pinning: bool = False,
        lease_size: int | None = None,
    ) -> None:
        self.map = shard_map
        self.allocator = allocator or GlsnAllocator(start=shard_map.start)
        self.tenant_pinning = tenant_pinning
        self.lease_size = lease_size or shard_map.block_size
        if self.lease_size < 1:
            raise ConfigurationError("lease size must be positive")
        self._pins: dict[str, int] = {}
        self._leases: dict[str, GlsnBlock] = {}
        self._lock = threading.Lock()

    # -- versioning --------------------------------------------------------

    @property
    def version(self) -> int:
        return self.map.version

    def check_version(self, presented: int | None) -> None:
        """Refuse a route taken under an out-of-date shard map."""
        if presented is None:
            return
        current = self.map.version
        if presented != current:
            raise StaleShardMapError(
                f"shard map moved: client routed with version {presented}, "
                f"cluster is at {current} — re-fetch the map and retry",
                expected=current,
                presented=presented,
            )

    # -- tenant pinning ----------------------------------------------------

    def pin_tenant(self, tenant: str, shard: int) -> int:
        """Pin every future append of ``tenant`` onto ``shard``.

        Requires ``REPRO_SHARD_TENANT_PINNING`` (or the equivalent
        constructor knob); placement changes, so the map version bumps.
        Returns the new version.
        """
        if not self.tenant_pinning:
            raise ConfigurationError(
                "tenant pinning is disabled — set REPRO_SHARD_TENANT_PINNING=on"
            )
        self.map.check_shard(shard)
        with self._lock:
            self._pins[tenant] = shard
            self._leases.pop(tenant, None)  # next append leases on the new shard
            return self.map._bump()

    def pinned_shard(self, tenant: str | None) -> int | None:
        if tenant is None:
            return None
        with self._lock:
            return self._pins.get(tenant)

    def _pinned_route(self, tenant: str, shard: int) -> tuple[int, int]:
        """Allocate inside the tenant's lease, leasing a fresh block as
        needed (lock held)."""
        lease = self._leases.get(tenant)
        if lease is None or lease.remaining == 0:
            lo = self.allocator.next_value
            self.allocator.allocate_many(self.lease_size)
            self.map.pin_range(lo, lo + self.lease_size, shard)
            lease = GlsnBlock(start=lo, end=lo + self.lease_size)
            self._leases[tenant] = lease
        return lease.take(), shard

    # -- routing -----------------------------------------------------------

    def route(
        self,
        tenant: str | None = None,
        shard_map_version: int | None = None,
    ) -> tuple[int, int]:
        """Assign the next glsn and its owning shard: ``(glsn, shard)``."""
        with self._lock:
            self.check_version(shard_map_version)
            if self.tenant_pinning and tenant is not None:
                shard = self._pins.get(tenant)
                if shard is not None:
                    return self._pinned_route(tenant, shard)
            glsn = self.allocator.allocate()
            return glsn, self.map.shard_for(glsn)

    # -- rebalancing (delegated map mutations) -----------------------------

    def split_range(self, pivot: int) -> tuple[ShardRange, ShardRange]:
        with self._lock:
            return self.map.split_range(pivot)

    def move_range(self, lo: int, hi: int, dst: int) -> int:
        with self._lock:
            return self.map.move_range(lo, hi, dst)

    def describe(self) -> dict:
        body = self.map.describe()
        body["tenant_pinning"] = self.tenant_pinning
        with self._lock:
            body["pinned_tenants"] = dict(sorted(self._pins.items()))
        return body
