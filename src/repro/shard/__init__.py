"""repro.shard — horizontal sharding: a multi-ring DLA cluster.

The paper's DLA is one ring of TTP nodes holding vertical fragments of
every record.  This package scales it *horizontally*: the log stream is
partitioned by glsn range (and, optionally, by tenant) into shards, each
a complete, independent :class:`~repro.core.ConfidentialAuditingService`
ring with its own fragment stores, epoch/version space, integrity rings,
credential realm, and precompute pools.

* :class:`ShardMap` / :class:`ShardRange` — versioned placement metadata
  (block striping + explicit overrides; every change bumps the version);
* :class:`ShardRouter` — the single global glsn allocator + placement
  lookup + the :class:`~repro.errors.StaleShardMapError` guard and
  tenant-pinning leases;
* :func:`merge_shard_glsns` / :func:`rollup_cost` — the scatter-gather
  coordinator's secure-union merge and cost/leakage roll-up;
* :class:`ShardedAuditingService` — the cluster facade: routed appends,
  concurrently scattered queries with merged answers asserted identical
  to a single-ring execution, rebalancing with live fragment migration,
  and composed §5 confidentiality metrics.

Knobs: ``REPRO_SHARD_COUNT``, ``REPRO_SHARD_BLOCK_SIZE``,
``REPRO_SHARD_TENANT_PINNING`` (see :class:`ShardConfig`).
"""

from repro.shard.config import (
    SHARD_BLOCK_SIZE_ENV_VAR,
    SHARD_COUNT_ENV_VAR,
    SHARD_TENANT_PINNING_ENV_VAR,
    ShardConfig,
)
from repro.shard.map import ShardMap, ShardRange
from repro.shard.merge import merge_shard_glsns, rollup_cost
from repro.shard.router import ShardRouter
from repro.shard.service import (
    MoveReport,
    ShardedAuditingService,
    ShardedQueryResult,
    ShardedTicket,
    ShardedWriteReceipt,
)

__all__ = [
    "ShardConfig",
    "SHARD_COUNT_ENV_VAR",
    "SHARD_BLOCK_SIZE_ENV_VAR",
    "SHARD_TENANT_PINNING_ENV_VAR",
    "ShardMap",
    "ShardRange",
    "ShardRouter",
    "merge_shard_glsns",
    "rollup_cost",
    "ShardedAuditingService",
    "ShardedTicket",
    "ShardedWriteReceipt",
    "ShardedQueryResult",
    "MoveReport",
]
