"""Coordinator-side merge of per-shard partial query results.

Shards hold *disjoint* glsn ranges, so the cross-shard combinator for a
scatter-gathered criterion is always set union on glsn — the same
criterion ran on every ring, each over its own slice of the log.  Two
merge paths:

* **Disjointness-proof concatenation** (the fast path): when the caller
  supplies the cluster's :class:`~repro.shard.map.ShardMap` and every
  partial element is owned by the ring that reported it, the partials
  are *provably* pairwise disjoint — concatenation is exactly the union,
  with zero protocol traffic and zero crypto.  This is what makes
  scatter-gather throughput scale near-linearly: an n-party secure union
  costs O(n × |result|) modular exponentiations at the coordinator,
  which would dwarf the per-ring savings (BENCH_p7 measures both).
* **Secure set union** (the safe path): without a map, or whenever any
  element falls outside its reporting ring's current ownership (e.g. a
  partial computed concurrently with a ``move_shard``), the merge runs
  the paper's secure set union (§3.4): each shard acts as one party
  contributing its partial result set, and the coordinator collects the
  union without learning multiplicities.

What the coordinator *does* learn — each shard's partial result set for
the criterion — is a secondary disclosure, recorded per contributing
shard in the coordinator's leakage ledger under the ``shard_partial``
category (documented in docs/threat-model.md).  The query-level ledger is
then exactly: every shard's own subquery events, plus these merge events,
plus the union protocol's standard entries.
"""

from __future__ import annotations

from collections import Counter

from repro.net.simnet import SimNetwork
from repro.net.stats import CostReport, CryptoOpCounter
from repro.resilience import Deadline
from repro.smc.base import SmcContext
from repro.smc.union_ import secure_set_union

__all__ = ["merge_shard_glsns", "rollup_cost"]


def _provably_disjoint(per_shard: dict[int, list[int]], shard_map) -> bool:
    """True when every partial element is owned by the ring reporting it.

    Ownership under the *current* map implies pairwise disjointness (the
    map is a partition of the glsn space), so concatenation is exactly
    the union.  Any stray element — say, a partial computed while its
    range was mid-``move_shard`` — fails the proof and forces the secure
    union instead.
    """
    if shard_map is None:
        return False
    try:
        return all(
            shard_map.shard_for(glsn) == shard
            for shard, glsns in per_shard.items()
            for glsn in glsns
        )
    except Exception:
        return False  # unmapped glsn: no proof, run the protocol


def merge_shard_glsns(
    ctx: SmcContext,
    per_shard: dict[int, list[int]],
    net: SimNetwork | None = None,
    deadline: Deadline | None = None,
    shard_map=None,
    force_union: bool = False,
) -> tuple[list[int], CostReport]:
    """Union the per-shard partial glsn sets at the coordinator.

    ``per_shard`` maps shard id → that ring's matched glsns.  Returns the
    merged, sorted glsn list plus the merge round's own
    :class:`~repro.net.stats.CostReport` (the scatter legs' costs live on
    their shard handles; callers roll both up with :func:`rollup_cost`).

    ``shard_map`` enables the disjointness-proof concatenation fast path
    (see the module docstring); ``force_union`` disables it so the naive
    n-party secure union can be measured.  Every contributing (non-empty)
    shard costs one ``shard_partial`` ledger entry on either path; with
    at most one contributor the union is the identity and no protocol
    traffic is spent.
    """
    net = net or SimNetwork(tracer=ctx.tracer, metrics=ctx.metrics)
    ops_before = Counter(ctx.crypto_ops.ops)
    vt_start = net.now
    for shard, glsns in sorted(per_shard.items()):
        if glsns:
            ctx.leakage.record(
                "shard.merge",
                "coordinator",
                "shard_partial",
                f"shard s{shard} disclosed its {len(glsns)}-element partial "
                f"result set to the scatter-gather coordinator",
            )
    contributing = {
        f"shard:{sid}": list(glsns) for sid, glsns in per_shard.items() if glsns
    }
    if len(contributing) <= 1:
        # Union with ≤1 input is the input; skip the ring round-trip.
        merged = sorted(next(iter(contributing.values()), []))
    elif not force_union and _provably_disjoint(per_shard, shard_map):
        merged = sorted(g for glsns in contributing.values() for g in glsns)
    else:
        result = secure_set_union(
            ctx, contributing, net=net, deadline=deadline
        )
        merged = sorted(result.any_value)
    delta = CryptoOpCounter(ops=Counter(ctx.crypto_ops.ops) - ops_before)
    cost = CostReport.collect(net.stats, delta, virtual_time=net.now - vt_start)
    return merged, cost


def rollup_cost(shard_costs: dict[int, CostReport], merge: CostReport) -> CostReport:
    """One query-level report from per-shard legs plus the merge round.

    Messages/bytes/crypto/drops add up; virtual time does *not* — the
    rings are independent networks running concurrently, so the scatter
    phase's virtual makespan is the **max** over shards, and the merge
    round (which starts only after the slowest shard answers) adds on
    top.  This is the quantity BENCH_p7's near-linear-scaling headline is
    measured in.
    """
    crypto: Counter = Counter()
    for cost in shard_costs.values():
        crypto.update(cost.crypto_ops)
    crypto.update(merge.crypto_ops)
    return CostReport(
        messages=sum(c.messages for c in shard_costs.values()) + merge.messages,
        bytes=sum(c.bytes for c in shard_costs.values()) + merge.bytes,
        crypto_ops=dict(crypto),
        virtual_time=(
            max((c.virtual_time for c in shard_costs.values()), default=0.0)
            + merge.virtual_time
        ),
        dropped=sum(c.dropped for c in shard_costs.values()) + merge.dropped,
    )
