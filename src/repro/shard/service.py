"""The sharded auditing service: N independent DLA rings, one front door.

:class:`ShardedAuditingService` horizontally partitions the log stream
across ``shards`` complete :class:`~repro.core.ConfidentialAuditingService`
deployments — each its own TTP ring with private fragment stores,
epoch/version space, integrity rings, credential authority (realm
``shard<k>``), and precompute pools.  On top it runs:

* **routing** — a :class:`~repro.shard.ShardRouter` with one global glsn
  allocator and a versioned :class:`~repro.shard.ShardMap`; appends land
  on the ring the map names, at the exact glsn a single-ring deployment
  would have assigned (the scatter-gather result-identity invariant);
* **scatter-gather queries** — a criterion fans out to every target
  ring's persistent :class:`~repro.sched.QueryScheduler` (one channel per
  shard, rings progress concurrently on independent virtual networks) and
  the partial glsn sets merge at the coordinator through the paper's
  secure set union, with the ``shard_partial`` disclosures recorded;
* **roll-ups** — per-shard :class:`~repro.net.stats.CostReport` legs and
  leakage ledgers compose into one query-level report (virtual makespan =
  max over rings + merge), and per-shard ``C_query``/``C_DLA`` compose in
  the coordinator's confidentiality observatory;
* **rebalancing** — :meth:`split_range` / :meth:`move_shard` with
  epoch-bumped map versioning, fragment migration between rings, and the
  stale-version append guard;
* **tenant pinning** — ``REPRO_SHARD_TENANT_PINNING`` confines a tenant
  to one ring; under pinning every ring runs a *fresh* SMC prime and its
  own authority keys, so pinned tenants share no cipher modulus.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.audit.executor import QueryResult
from repro.audit.planner import QueryPlan, plan_query
from repro.core.service import ConfidentialAuditingService
from repro.crypto.pohlig_hellman import shared_prime
from repro.crypto.rng import DeterministicRng, system_rng
from repro.crypto.tickets import Operation, Ticket
from repro.errors import UnknownShardError
from repro.logstore.fragmentation import FragmentPlan
from repro.logstore.glsn import RoutedGlsnAllocator
from repro.logstore.schema import GlobalSchema
from repro.net.simnet import SimNetwork
from repro.net.stats import CostReport
from repro.obs.confidentiality import ConfidentialityObservatory
from repro.obs.server import ObsServer, start_from_env
from repro.obs.tracer import NOOP_TRACER
from repro.resilience import Deadline
from repro.shard.config import ShardConfig
from repro.shard.map import ShardMap, ShardRange
from repro.shard.merge import merge_shard_glsns, rollup_cost
from repro.shard.router import ShardRouter
from repro.smc.base import SmcContext
from repro.smc.leakage import LeakageEvent
from repro.store import StoreConfig

__all__ = [
    "ShardedAuditingService",
    "ShardedTicket",
    "ShardedWriteReceipt",
    "ShardedQueryResult",
    "MoveReport",
]


@dataclass(frozen=True)
class ShardedTicket:
    """One user's access tickets, one per ring (authorities are per-shard)."""

    user_id: str
    tickets: dict[int, Ticket]

    def for_shard(self, shard: int) -> Ticket:
        try:
            return self.tickets[shard]
        except KeyError as exc:
            raise UnknownShardError(
                f"ticket for {self.user_id!r} has no shard {shard}"
            ) from exc


@dataclass(frozen=True)
class ShardedWriteReceipt:
    """A routed write: the per-ring receipt plus placement provenance."""

    glsn: int
    accumulator: int
    nodes: tuple[str, ...]
    shard: int
    shard_map_version: int


@dataclass
class ShardedQueryResult:
    """A scatter-gathered query: merged answer + full per-shard accounting."""

    plan: QueryPlan
    glsns: list[int]
    per_shard: dict[int, QueryResult]
    shard_leakage: dict[int, list[LeakageEvent]] = field(default_factory=dict)
    coordinator_leakage: list[LeakageEvent] = field(default_factory=list)
    cost: CostReport | None = None
    shard_costs: dict[int, CostReport] = field(default_factory=dict)
    merge_cost: CostReport | None = None
    shard_map_version: int = 0
    c_query: float | None = None

    @property
    def count(self) -> int:
        return len(self.glsns)

    @property
    def leakage(self) -> list[LeakageEvent]:
        """Query-level ledger: every shard's events + the merge's, in order."""
        events: list[LeakageEvent] = []
        for shard in sorted(self.shard_leakage):
            events.extend(self.shard_leakage[shard])
        events.extend(self.coordinator_leakage)
        return events

    def leakage_reconciliation(self) -> dict:
        """The exact accounting identity the acceptance bench asserts:
        merged total == Σ per-shard + coordinator merge events."""
        per_shard = {
            shard: len(events) for shard, events in sorted(self.shard_leakage.items())
        }
        return {
            "per_shard": per_shard,
            "coordinator": len(self.coordinator_leakage),
            "total": len(self.leakage),
            "reconciles": len(self.leakage)
            == sum(per_shard.values()) + len(self.coordinator_leakage),
        }


@dataclass(frozen=True)
class MoveReport:
    """Outcome of one ``move_shard``: what moved where, at which version."""

    lo: int
    hi: int
    src: int
    dst: int
    glsns: tuple[int, ...]
    shard_map_version: int


class ShardedAuditingService:
    """N-ring DLA cluster behind one append/query facade."""

    def __init__(
        self,
        schema: GlobalSchema,
        plan: FragmentPlan,
        shards: int | None = None,
        prime_bits: int = 128,
        threshold: int | None = None,
        rng: DeterministicRng | None = None,
        tracer=None,
        metrics=None,
        resilience=None,
        faults=None,
        block_size: int | None = None,
        tenant_pinning: bool | None = None,
        store_dir: str | None = None,
        store_config=None,
    ) -> None:
        config = ShardConfig.from_env()
        count = shards if shards is not None else config.count
        # Resolve the durable-store directory here rather than per ring:
        # with only REPRO_STORE_DIR set, every ring would otherwise read
        # the same path from the environment and interleave its WALs.
        if store_dir is None:
            store_dir = (store_config or StoreConfig.from_env()).directory
        self.block_size = block_size if block_size is not None else config.block_size
        self.tenant_pinning = (
            tenant_pinning if tenant_pinning is not None else config.tenant_pinning
        )
        self.schema = schema
        self.plan = plan
        self.rng = rng or system_rng()
        self.tracer = tracer or NOOP_TRACER
        self.metrics = metrics
        self.map = ShardMap(count, block_size=self.block_size)
        self.router = ShardRouter(
            self.map,
            tenant_pinning=self.tenant_pinning,
            lease_size=self.block_size,
        )
        #: ``faults`` may be one FaultPlan (applied to every ring) or a
        #: ``{shard: FaultPlan}`` dict (chaos tests crash one ring only).
        fault_for = (
            faults.get if isinstance(faults, dict) else (lambda _i: faults)
        )
        self.shards: list[ConfidentialAuditingService] = []
        for i in range(count):
            shard_rng = self.rng.spawn(f"shard:{i}")
            # Tenant pinning promises per-tenant primes/keys: every ring
            # gets a freshly generated safe prime instead of the shared
            # table entry, so no two pinned tenants share a modulus.
            prime = (
                shared_prime(prime_bits, rng=shard_rng.spawn("prime"), fresh=True)
                if self.tenant_pinning
                else None
            )
            self.shards.append(
                ConfidentialAuditingService(
                    schema,
                    plan,
                    prime_bits=prime_bits,
                    threshold=threshold,
                    rng=shard_rng,
                    tracer=tracer,
                    metrics=metrics.labeled(shard=f"s{i}")
                    if metrics is not None
                    else None,
                    resilience=resilience,
                    faults=fault_for(i),
                    prime=prime,
                    allocator=RoutedGlsnAllocator(),
                    realm=f"shard{i}",
                    shard_label=f"s{i}",
                    obs_from_env=False,
                    # Durable cluster: every ring journals under its own
                    # subdirectory, so per-ring WALs and checkpoints never
                    # interleave and a single ring can be recovered alone.
                    store_dir=(
                        str(Path(store_dir) / f"ring{i}")
                        if store_dir is not None
                        else None
                    ),
                    store_config=store_config,
                )
            )
        #: ``"auto"`` (default) lets the merge concatenate whenever the
        #: shard map proves the partials disjoint, falling back to the
        #: secure union; ``"union"`` always runs the n-party secure union
        #: (the naive mode BENCH_p7 measures against).
        self.merge_mode = "auto"
        # Coordinator-side merge context: its own prime/rng/ledger; the
        # union over glsns never touches any ring's private key material.
        self.ctx = SmcContext(
            shared_prime(prime_bits),
            self.rng.spawn("coordinator"),
            tracer=self.tracer,
            metrics=metrics,
        )
        #: Query-level §5 metrics over the *merged* answers; per-shard
        #: observatories keep composing underneath (see
        #: :meth:`composed_c_dla`).
        self.observatory = ConfidentialityObservatory(schema, plan, metrics=metrics)
        self.last_query_cost: CostReport | None = None
        self._append_lock = threading.Lock()
        self._migration_tickets: dict[int, Ticket] = {}
        #: One merged telemetry endpoint for the whole cluster (per-shard
        #: auto-binds are suppressed; series separate by ``shard`` label).
        self.obs_server: ObsServer | None = start_from_env(self)

    # -- lifecycle ---------------------------------------------------------

    def shard(self, shard_id: int) -> ConfidentialAuditingService:
        try:
            return self.shards[self.map.check_shard(shard_id)]
        except IndexError as exc:  # pragma: no cover - check_shard guards
            raise UnknownShardError(f"shard {shard_id}") from exc

    def warm_pools(self, include_witnesses: bool = True) -> dict:
        """Offline phase on every ring; returns per-shard pool snapshots."""
        return {
            i: svc.warm_pools(include_witnesses=include_witnesses)
            for i, svc in enumerate(self.shards)
        }

    def shutdown(self) -> None:
        for svc in self.shards:
            svc.close()
        if self.obs_server is not None:
            self.obs_server.stop()
            self.obs_server = None

    def __enter__(self) -> "ShardedAuditingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- write path --------------------------------------------------------

    def register_user(
        self,
        user_id: str,
        operations: set[Operation] | None = None,
        lifetime: int | None = None,
    ) -> ShardedTicket:
        """Issue one ticket per ring (each shard authenticates its own)."""
        return ShardedTicket(
            user_id=user_id,
            tickets={
                i: svc.register_user(user_id, operations, lifetime)
                for i, svc in enumerate(self.shards)
            },
        )

    def log_event(
        self,
        values: dict,
        ticket: ShardedTicket,
        tenant: str | None = None,
        shard_map_version: int | None = None,
    ) -> ShardedWriteReceipt:
        """Route one append: allocate the global glsn, write to its ring.

        ``shard_map_version`` is the client's cached placement version;
        presenting a stale one raises the typed
        :class:`~repro.errors.StaleShardMapError` instead of mis-sharding.
        """
        with self._append_lock:
            glsn, sid = self.router.route(
                tenant=tenant, shard_map_version=shard_map_version
            )
            shard = self.shards[sid]
            shard.store.allocator.pin(glsn)
            receipt = shard.store.append(values, ticket.for_shard(sid))
        return ShardedWriteReceipt(
            glsn=receipt.glsn,
            accumulator=receipt.accumulator,
            nodes=receipt.nodes,
            shard=sid,
            shard_map_version=self.map.version,
        )

    def pin_tenant(self, tenant: str, shard: int) -> int:
        """Confine ``tenant``'s future appends (and queries) to one ring."""
        return self.router.pin_tenant(tenant, shard)

    # -- scatter-gather query path -----------------------------------------

    def target_shards(self, tenant: str | None = None) -> list[int]:
        """Rings a query must touch: all, unless the tenant is pinned."""
        pinned = self.router.pinned_shard(tenant)
        if pinned is not None:
            return [pinned]
        return list(range(len(self.shards)))

    def scatter(
        self, criterion: str, timeout: float | None = None,
        tenant: str | None = None,
    ) -> dict[int, object]:
        """Fan a criterion out to each target ring's scheduler.

        Returns ``{shard: QueryHandle}`` — the chaos tests settle handles
        individually so one ring's failover never poisons a sibling's.
        """
        return {
            sid: self.shards[sid].submit(criterion, timeout=timeout)
            for sid in self.target_shards(tenant)
        }

    def _merge(
        self,
        qplan: QueryPlan,
        handles: dict[int, object],
        per_shard: dict[int, QueryResult],
        timeout: float | None,
        tenant: str | None,
    ) -> ShardedQueryResult:
        """Union the partials, roll up cost/leakage, observe C_query."""
        coord_before = self.ctx.leakage.count()
        merged, merge_cost = merge_shard_glsns(
            self.ctx,
            {sid: r.glsns for sid, r in per_shard.items()},
            net=SimNetwork(tracer=self.tracer, metrics=self.metrics),
            deadline=Deadline.after(timeout),
            shard_map=self.map,
            force_union=self.merge_mode == "union",
        )
        coordinator_events = self.ctx.leakage.events[coord_before:]
        shard_costs = {
            sid: h.cost
            for sid, h in handles.items()
            if getattr(h, "cost", None) is not None
        }
        cost = rollup_cost(shard_costs, merge_cost)
        self.last_query_cost = cost
        result = ShardedQueryResult(
            plan=qplan,
            glsns=merged,
            per_shard=per_shard,
            shard_leakage={sid: list(h.leakage) for sid, h in handles.items()},
            coordinator_leakage=list(coordinator_events),
            cost=cost,
            shard_costs=shard_costs,
            merge_cost=merge_cost,
            shard_map_version=self.map.version,
        )
        obs = self.observatory.observe_query(
            qplan,
            [self.reconstruct_record(glsn) for glsn in merged],
            len(result.leakage),
            tenant=tenant or "default",
        )
        result.c_query = obs.c_query
        return result

    def query(
        self,
        criterion: str,
        timeout: float | None = None,
        tenant: str | None = None,
    ) -> ShardedQueryResult:
        """One confidential query over the whole sharded log.

        Scatter to every target ring, gather, merge via secure union.
        The merged answer is glsn-identical to a single-ring execution of
        the same criterion over the same records (the property suite and
        BENCH_p7 assert it).
        """
        qplan = plan_query(criterion, self.schema, self.plan, tracer=self.tracer)
        attrs = {
            "criterion": criterion,
            "shard": "coord",
            "shards": len(self.target_shards(tenant)),
        }
        with self.tracer.span("shard.query", attrs) as span:
            handles = self.scatter(criterion, timeout=timeout, tenant=tenant)
            per_shard = {sid: h.result() for sid, h in handles.items()}
            result = self._merge(qplan, handles, per_shard, timeout, tenant)
            if self.tracer.enabled:
                span.set_attributes(
                    {
                        "matches": result.count,
                        "messages": result.cost.messages,
                        "bytes": result.cost.bytes,
                        "modexp": result.cost.modexp,
                        "leakage_events": len(result.leakage),
                        "c_query": result.c_query,
                        "shard_map_version": result.shard_map_version,
                    }
                )
        return result

    def query_many(
        self,
        criteria,
        timeout: float | None = None,
        tenant: str | None = None,
    ) -> list[ShardedQueryResult]:
        """Scatter a batch: every (criterion × ring) leg is in flight at
        once, merges happen as each criterion's slowest ring answers."""
        criteria = list(criteria)
        plans = [
            plan_query(c, self.schema, self.plan, tracer=self.tracer)
            for c in criteria
        ]
        fanned = [
            self.scatter(c, timeout=timeout, tenant=tenant) for c in criteria
        ]
        results = []
        for qplan, handles in zip(plans, fanned):
            per_shard = {sid: h.result() for sid, h in handles.items()}
            results.append(self._merge(qplan, handles, per_shard, timeout, tenant))
        return results

    def reconstruct_record(self, glsn: int):
        """Reassemble one record from its owning ring (map names it)."""
        return self.shards[self.map.shard_for(glsn)]._reconstruct_record(glsn)

    # -- rebalancing -------------------------------------------------------

    def split_range(self, pivot: int) -> tuple[ShardRange, ShardRange]:
        """Carve the placement range containing ``pivot`` in two (no data
        moves; placement unchanged; map version bumps)."""
        return self.router.split_range(pivot)

    def _migration_ticket(self, shard: int) -> Ticket:
        ticket = self._migration_tickets.get(shard)
        if ticket is None:
            ticket = self.shards[shard].register_user(
                "__shard_migration__", {Operation.READ, Operation.WRITE}
            )
            self._migration_tickets[shard] = ticket
        return ticket

    def move_shard(self, lo: int, hi: int, dst: int) -> MoveReport:
        """Re-place ``[lo, hi)`` onto ring ``dst`` and migrate its data.

        The map mutation (with its version bump) lands first, so routes
        taken mid-migration already name the destination; then every
        stored record in the range moves fragment-by-fragment: the
        destination ring adopts each fragment through the ordinary
        ticketed write path (accumulator digests preserved, so §4.1
        integrity checks keep passing), the source ring evicts its copy.
        Combined-ring chain anchors break on both sides — the batched
        integrity ring falls back to per-glsn mode, slower but exact.
        """
        with self._append_lock:
            src = self.router.move_range(lo, hi, dst)
            if src == dst:
                return MoveReport(
                    lo=lo, hi=hi, src=src, dst=dst, glsns=(),
                    shard_map_version=self.map.version,
                )
            src_store = self.shards[src].store
            dst_store = self.shards[dst].store
            ticket = self._migration_ticket(dst)
            moved = [g for g in src_store.glsns if lo <= g < hi]
            for glsn in moved:
                for node_id, node_store in src_store.stores.items():
                    fragment = node_store.local_fragment(glsn)
                    digest = node_store.expected_accumulator(glsn)
                    dst_store.stores[node_id].put(
                        fragment, ticket, digest, chain_anchor=None
                    )
                for node_store in src_store.stores.values():
                    node_store.evict(glsn)
            if moved:
                src_store.suspend_chain()
                dst_store.suspend_chain()
        return MoveReport(
            lo=lo, hi=hi, src=src, dst=dst, glsns=tuple(moved),
            shard_map_version=self.map.version,
        )

    # -- integrity ---------------------------------------------------------

    def check_integrity(
        self, distributed: bool = True, batched: bool = True,
        timeout: float | None = None,
    ) -> dict[int, list]:
        """§4.1 cross-check on every ring; per-shard report lists."""
        return {
            i: svc.check_integrity(
                distributed=distributed, batched=batched, timeout=timeout
            )
            for i, svc in enumerate(self.shards)
        }

    # -- §5 composition ----------------------------------------------------

    def c_dla(self, tenant: str | None = None) -> float | None:
        """Query-level C_DLA (eq. 13) over merged scatter-gather answers."""
        return self.observatory.c_dla(tenant)

    def c_dla_by_shard(self, tenant: str | None = None) -> dict[int, float | None]:
        """Each ring's own C_DLA over the subqueries it executed."""
        return {
            i: svc.observatory.c_dla(tenant) for i, svc in enumerate(self.shards)
        }

    def composed_c_dla(self, tenant: str | None = None) -> float | None:
        """Cluster C_DLA composed from the per-shard observatories.

        Eq. 13 is a mean over queries, so composition is the
        query-count-weighted mean of the per-shard means — exactly the
        value a single observatory watching every subquery would report.
        """
        total = 0.0
        queries = 0
        for svc in self.shards:
            report = svc.observatory.report()
            buckets = (
                report["tenants"].values()
                if tenant is None
                else [report["tenants"].get(tenant, {"queries": 0, "c_dla": None})]
            )
            for bucket in buckets:
                if bucket["queries"] and bucket["c_dla"] is not None:
                    total += bucket["c_dla"] * bucket["queries"]
                    queries += bucket["queries"]
        return total / queries if queries else None

    # -- observability -----------------------------------------------------

    def health_snapshot(self) -> dict:
        """Cluster ``/healthz``: per-shard node liveness, worst-of overall."""
        per_shard = {
            f"s{i}": svc.health_snapshot() for i, svc in enumerate(self.shards)
        }
        overall = (
            "ok"
            if all(s["status"] == "ok" for s in per_shard.values())
            else "degraded"
        )
        return {
            "status": overall,
            "shards": per_shard,
            "shard_map": self.router.describe(),
        }

    def recent_traces_snapshot(self) -> list[dict]:
        out: list[dict] = []
        for svc in self.shards:
            out.extend(svc.recent_traces_snapshot())
        return out

    def start_obs_server(self, port: int = 0) -> ObsServer:
        """The cluster's merged telemetry endpoint (one bind, all shards)."""
        if self.obs_server is None:
            self.obs_server = ObsServer(
                metrics=self.metrics,
                health=self.health_snapshot,
                traces=self.recent_traces_snapshot,
                leakage=self.observatory.report,
                port=port,
            ).start()
        return self.obs_server

    def cost_snapshot(self) -> dict:
        return {
            "coordinator": {
                "crypto_ops": self.ctx.crypto_ops.snapshot(),
                "leakage_events": len(self.ctx.leakage.events),
            },
            "shards": {i: svc.cost_snapshot() for i, svc in enumerate(self.shards)},
        }

    def describe(self) -> dict:
        return {
            "shards": len(self.shards),
            "map": self.router.describe(),
            "nodes_per_shard": list(self.plan.node_ids),
            "tenant_pinning": self.tenant_pinning,
        }
