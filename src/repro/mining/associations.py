"""Confidential cross-node association mining (paper abstract & ref [20]).

"Simple auditing query statements together with a relaxed type of
multiparty private computations and distributed data mining demonstrate
the effectiveness of [the] proposed scheme."

The mining question: given attribute ``A`` stored at DLA node ``P_i`` and
attribute ``B`` at ``P_j``, which value associations ``A=a ⇒ B=b`` hold
with support ≥ ``min_support`` — without either node revealing its value
column, and revealing *only* the qualifying rules?

Protocol (Clifton-Kantarcioglu-Vaidya style, on our primitives):

1. each owner groups its glsns by attribute value, producing candidate
   itemsets ``S_a = {glsn : A(glsn) = a}`` / ``T_b``; values are replaced
   by opaque *blinded labels* before anything leaves the node;
2. for every candidate label pair, run the two-party secure
   intersection-size protocol (:mod:`repro.mining.size_protocol`) on the
   glsn sets — supports are learned, glsn overlap membership is not;
3. pairs meeting ``min_support`` are *opened*: the owners reveal the
   plaintext values behind the qualifying labels only.

Leakage (recorded): per-value group sizes (secondary; Definition 1) and
the support matrix over blinded labels.  Sub-threshold value labels are
never opened.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import AuditError
from repro.logstore.store import DistributedLogStore
from repro.mining.size_protocol import secure_intersection_size
from repro.net.simnet import SimNetwork
from repro.smc.base import SmcContext

__all__ = ["AssociationRule", "ValueGroups", "mine_cross_associations"]

PROTOCOL = "confidential_association_mining"


@dataclass(frozen=True)
class AssociationRule:
    """A qualifying association ``A=value_a ⇒ B=value_b``."""

    attribute_a: str
    value_a: object
    attribute_b: str
    value_b: object
    support: int          # records matching both
    support_a: int        # records matching A=value_a
    confidence: float     # support / support_a

    def __str__(self) -> str:
        return (
            f"{self.attribute_a}={self.value_a!r} ⇒ "
            f"{self.attribute_b}={self.value_b!r} "
            f"(support {self.support}, confidence {self.confidence:.2f})"
        )


@dataclass
class ValueGroups:
    """One owner's per-value glsn groups with blinded labels.

    ``label -> (plaintext value, glsn list)``; labels are salted hashes so
    the counterpart (and the transcript) see opaque identifiers.
    """

    node_id: str
    attribute: str
    groups: dict[str, tuple[object, list[int]]]

    @classmethod
    def build(
        cls, store: DistributedLogStore, node_id: str, attribute: str, salt: bytes
    ) -> "ValueGroups":
        by_value: dict[object, list[int]] = {}
        for fragment in store.node_store(node_id).scan():
            if attribute in fragment.values:
                by_value.setdefault(fragment.values[attribute], []).append(
                    fragment.glsn
                )
        groups = {}
        for value, glsns in by_value.items():
            label = hashlib.sha256(
                salt + repr(value).encode("utf-8")
            ).hexdigest()[:12]
            groups[label] = (value, sorted(glsns))
        return cls(node_id=node_id, attribute=attribute, groups=groups)

    @property
    def labels(self) -> list[str]:
        return sorted(self.groups)


def mine_cross_associations(
    store: DistributedLogStore,
    ctx: SmcContext,
    attribute_a: str,
    attribute_b: str,
    min_support: int = 2,
    min_confidence: float = 0.0,
    net: SimNetwork | None = None,
) -> list[AssociationRule]:
    """Mine ``A=a ⇒ B=b`` rules across two DLA nodes confidentially.

    Returns only rules with ``support >= min_support`` and
    ``confidence >= min_confidence``, sorted by (support, repr) descending.

    Raises
    ------
    AuditError
        If both attributes live on the same node (use a local ``GROUP BY``
        instead — no protocol needed) or either has no owner.
    """
    if min_support < 1:
        raise AuditError("min_support must be at least 1")
    plan = store.plan
    node_a = plan.home_of(attribute_a)
    node_b = plan.home_of(attribute_b)
    if node_a == node_b:
        raise AuditError(
            f"attributes {attribute_a!r} and {attribute_b!r} share node "
            f"{node_a}; cross-node mining is unnecessary"
        )
    net = net or SimNetwork()
    salt_a = ctx.party_rng(f"mine:{node_a}").randbytes(8)
    salt_b = ctx.party_rng(f"mine:{node_b}").randbytes(8)
    groups_a = ValueGroups.build(store, node_a, attribute_a, salt_a)
    groups_b = ValueGroups.build(store, node_b, attribute_b, salt_b)

    ctx.leakage.record(
        PROTOCOL, node_b, "group_sizes",
        f"{node_a} exposes {len(groups_a.groups)} blinded value-group sizes",
    )
    ctx.leakage.record(
        PROTOCOL, node_a, "group_sizes",
        f"{node_b} exposes {len(groups_b.groups)} blinded value-group sizes",
    )

    rules: list[AssociationRule] = []
    for label_a in groups_a.labels:
        value_a, glsns_a = groups_a.groups[label_a]
        if len(glsns_a) < min_support:
            continue  # cannot possibly qualify; skip the protocol run
        for label_b in groups_b.labels:
            value_b, glsns_b = groups_b.groups[label_b]
            if len(glsns_b) < min_support:
                continue
            result = secure_intersection_size(
                ctx,
                (f"{node_a}:{label_a}", glsns_a),
                (f"{node_b}:{label_b}", glsns_b),
                net=net,
            )
            support = result.any_value
            if support < min_support:
                continue  # labels stay closed — values never revealed
            confidence = support / len(glsns_a)
            if confidence < min_confidence:
                continue
            rules.append(
                AssociationRule(
                    attribute_a=attribute_a,
                    value_a=value_a,
                    attribute_b=attribute_b,
                    value_b=value_b,
                    support=support,
                    support_a=len(glsns_a),
                    confidence=confidence,
                )
            )
    rules.sort(key=lambda r: (-r.support, repr(r.value_a), repr(r.value_b)))
    return rules
