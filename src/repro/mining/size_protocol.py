"""Secure *size* of set intersection (paper §3 pointer to ref [20]).

"A commutative cryptography system gives us the freedom to route a secret
(encrypted) message in a group for secret information processing in any
order, e.g., secure computation [of] the size of set intersection [20]."

The Clifton-Kantarcioglu-Vaidya construction for two parties:

1. each party encrypts its own set with its key and sends it over
   (shuffled — order must not leak);
2. each party encrypts the *other's* set with its key and returns it;
3. now both hold both sets doubly encrypted; commutativity makes the
   encodings comparable, so either party computes
   ``|E_ab(S_a) ∩ E_ba(S_b)|`` — the intersection *cardinality* — while
   the shuffling prevents mapping matches back to elements.

Unlike the full secure intersection (§3.1), the output is only a number:
the parties learn how much they overlap but not *where*.  This is the
primitive behind the confidential association mining in
:mod:`repro.mining.associations`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.pohlig_hellman import PohligHellmanCipher
from repro.errors import ConfigurationError, ProtocolAbortError
from repro.net.message import Message
from repro.net.simnet import SimNetwork
from repro.smc.base import SmcContext, SmcResult

__all__ = ["SizeParty", "secure_intersection_size"]

PROTOCOL = "secure_intersection_size"


@dataclass
class _SizeState:
    own_double: list[int] | None = None   # E_other(E_self(S_self))
    peer_double: list[int] | None = None  # E_self(E_other(S_peer))
    result: int | None = None


class SizeParty:
    """One of the two parties in the intersection-size protocol."""

    def __init__(
        self,
        party_id: str,
        private_set: list,
        ctx: SmcContext,
        peer_id: str,
    ) -> None:
        if party_id == peer_id:
            raise ConfigurationError("intersection size needs two distinct parties")
        self.party_id = party_id
        self.peer_id = peer_id
        self.ctx = ctx
        self._rng = ctx.party_rng(party_id)
        self.cipher = PohligHellmanCipher.generate(ctx.prime, self._rng)
        encoded = sorted(
            set(ctx.encoder.encode_hashed_many(private_set, engine=ctx.engine))
        )
        with ctx.node_span(party_id, "node.ssize.encrypt", {"node": party_id}):
            self._own_encrypted = self.cipher.encrypt_set(encoded, engine=ctx.engine)
            ctx.count_modexp(party_id, len(self._own_encrypted))
        self._rng.shuffle(self._own_encrypted)
        self.state = _SizeState()

    def start(self, transport) -> None:
        """Phase 1: ship our singly-encrypted (shuffled) set to the peer."""
        transport.send(
            Message(
                src=self.party_id,
                dst=self.peer_id,
                kind="ssize.single",
                payload={"elements": list(self._own_encrypted)},
            )
        )

    def handle(self, msg: Message, transport) -> None:
        if msg.kind == "ssize.single":
            # Phase 2: double-encrypt the peer's set and return it.
            with transport.stats.time_stage("ssize.encrypt"):
                doubled = self.cipher.encrypt_set(
                    msg.payload["elements"], engine=self.ctx.engine
                )
            self.ctx.count_modexp(self.party_id, len(doubled))
            self._rng.shuffle(doubled)
            self.ctx.leakage.record(
                PROTOCOL, self.party_id, "set_size",
                f"peer set size |S| = {len(doubled)} observed",
            )
            # We now hold the peer's set doubly encrypted.
            self.state.peer_double = doubled
            transport.send(
                Message(
                    src=self.party_id,
                    dst=self.peer_id,
                    kind="ssize.double",
                    payload={"elements": doubled},
                )
            )
            self._maybe_finish()
        elif msg.kind == "ssize.double":
            # Our own set, now doubly encrypted by the peer.
            self.state.own_double = msg.payload["elements"]
            self._maybe_finish()
        else:
            raise ProtocolAbortError(f"unexpected message kind {msg.kind!r}")

    def _maybe_finish(self) -> None:
        if self.state.own_double is None or self.state.peer_double is None:
            return
        overlap = set(self.state.own_double) & set(self.state.peer_double)
        self.state.result = len(overlap)
        self.ctx.leakage.record(
            PROTOCOL, self.party_id, "result_cardinality",
            f"intersection size {len(overlap)} learned",
        )


def secure_intersection_size(
    ctx: SmcContext,
    left: tuple[str, list],
    right: tuple[str, list],
    net: SimNetwork | None = None,
) -> SmcResult:
    """Run the two-party intersection-size protocol.

    Both parties learn ``|S_left ∩ S_right|`` and nothing about which
    elements match (relay shuffling destroys position linkage).
    """
    (lid, lset), (rid, rset) = left, right
    net = net or SimNetwork()
    parties = {
        lid: SizeParty(lid, lset, ctx, rid),
        rid: SizeParty(rid, rset, ctx, lid),
    }
    for pid, party in parties.items():
        net.register(pid, party.handle)
    for party in parties.values():
        party.start(net)
    net.run()

    values = {}
    for pid, party in parties.items():
        if party.state.result is None:
            raise ProtocolAbortError(f"party {pid} never computed the size")
        values[pid] = party.state.result
    return SmcResult(
        protocol=PROTOCOL,
        observers=frozenset(parties),
        values=values,
        rounds=2,
    )
