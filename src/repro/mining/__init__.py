"""Confidential distributed data mining over the DLA cluster.

The paper's abstract promises "a relaxed type of multiparty private
computations and distributed data mining"; ref [20] (Clifton et al.,
*Tools for Privacy Preserving Distributed Data Mining*) supplies the
toolbox.  This package implements the two pieces the DLA setting needs:

* :func:`~repro.mining.size_protocol.secure_intersection_size` — the
  commutative-encryption protocol for the *cardinality* of a set
  intersection (overlap count without overlap membership);
* :func:`~repro.mining.associations.mine_cross_associations` —
  confidential association-rule mining between attributes held by
  different DLA nodes, revealing only rules above the support threshold.
"""

from repro.mining.associations import (
    AssociationRule,
    ValueGroups,
    mine_cross_associations,
)
from repro.mining.size_protocol import SizeParty, secure_intersection_size

__all__ = [
    "secure_intersection_size",
    "SizeParty",
    "mine_cross_associations",
    "AssociationRule",
    "ValueGroups",
]
