"""Shamir (k, n) secret sharing over a prime field (paper §3.5).

The paper's secure sum builds on each node ``P_i`` choosing a random
polynomial ``f_i`` of degree ``k-1`` with ``f_i(0) = a_i`` and sending the
evaluation ``s_ij = f_i(x_j)`` to node ``P_j``.  Summing received shares
gives every node one share of ``F(z) = Σ f_i(z)``, whose free coefficient is
the sum of the secrets.  Any ``k`` shares reconstruct ``F`` by Lagrange
interpolation.

This module provides the polynomial machinery: share generation, Lagrange
reconstruction (full polynomial and constant-term-only fast path), and
share-wise addition / scalar multiplication used for weighted sums.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.modmath import modinv
from repro.crypto.rng import system_rng
from repro.errors import ParameterError, SecretSharingError, ThresholdError

__all__ = ["Share", "ShamirScheme"]


@dataclass(frozen=True)
class Share:
    """One evaluation point ``(x, y)`` of a sharing polynomial mod ``p``."""

    x: int
    y: int
    p: int

    def __add__(self, other: "Share") -> "Share":
        """Pointwise share addition: a share of the *sum* of the secrets.

        Both shares must sit at the same evaluation point in the same field.
        """
        if not isinstance(other, Share):
            return NotImplemented
        if self.p != other.p:
            raise SecretSharingError("cannot add shares from different fields")
        if self.x != other.x:
            raise SecretSharingError(
                "cannot add shares at different evaluation points "
                f"({self.x} vs {other.x})"
            )
        return Share(self.x, (self.y + other.y) % self.p, self.p)

    def scale(self, factor: int) -> "Share":
        """Scalar multiplication: a share of ``factor * secret``."""
        return Share(self.x, (self.y * factor) % self.p, self.p)


class ShamirScheme:
    """A (k, n) threshold sharing scheme over ``Z_p``.

    Parameters
    ----------
    k:
        Reconstruction threshold (minimum shares needed).
    n:
        Number of shares issued.
    p:
        Prime field modulus; must exceed every secret and ``n``.
    xs:
        Optional fixed evaluation points (the paper has the nodes
        predetermine non-zero ``x_0 .. x_{n-1}``); defaults to ``1..n``.
    """

    def __init__(self, k: int, n: int, p: int, xs: list[int] | None = None) -> None:
        if k < 1:
            raise ParameterError("threshold k must be at least 1")
        if n < k:
            raise ParameterError(f"need n >= k shares, got n={n} < k={k}")
        if p <= n:
            raise ParameterError("field must be larger than the share count")
        if xs is None:
            xs = list(range(1, n + 1))
        if len(xs) != n:
            raise ParameterError(f"expected {n} evaluation points, got {len(xs)}")
        reduced = [x % p for x in xs]
        if 0 in reduced:
            raise ParameterError("evaluation points must be non-zero mod p")
        if len(set(reduced)) != n:
            raise ParameterError("evaluation points must be distinct mod p")
        self.k = k
        self.n = n
        self.p = p
        self.xs = reduced

    def random_polynomial(self, secret: int, rng=None) -> list[int]:
        """Coefficients ``[a_0 .. a_{k-1}]`` with ``a_0 = secret``."""
        rng = rng or system_rng()
        secret %= self.p
        return [secret] + [rng.randbelow(self.p) for _ in range(self.k - 1)]

    def evaluate(self, coeffs: list[int], x: int) -> int:
        """Horner evaluation of a coefficient list at ``x`` mod ``p``."""
        acc = 0
        for c in reversed(coeffs):
            acc = (acc * x + c) % self.p
        return acc

    def share(self, secret: int, rng=None) -> list[Share]:
        """Split ``secret`` into ``n`` shares, any ``k`` of which recover it."""
        coeffs = self.random_polynomial(secret, rng)
        return [Share(x, self.evaluate(coeffs, x), self.p) for x in self.xs]

    def reconstruct(self, shares: list[Share]) -> int:
        """Recover the secret (``f(0)``) from at least ``k`` shares.

        Uses the Lagrange basis evaluated at zero only, which is O(k^2)
        instead of full interpolation's O(k^2) with larger constants.
        """
        if len(shares) < self.k:
            raise ThresholdError(
                f"need at least {self.k} shares, got {len(shares)}"
            )
        subset = shares[: self.k]
        xs = [s.x % self.p for s in subset]
        if len(set(xs)) != len(xs):
            raise SecretSharingError("duplicate evaluation points in shares")
        if any(s.p != self.p for s in subset):
            raise SecretSharingError("shares come from a different field")
        secret = 0
        for i, s_i in enumerate(subset):
            num, den = 1, 1
            for j, s_j in enumerate(subset):
                if i == j:
                    continue
                num = (num * (-s_j.x)) % self.p
                den = (den * (s_i.x - s_j.x)) % self.p
            secret = (secret + s_i.y * num * modinv(den, self.p)) % self.p
        return secret

    def interpolate(self, shares: list[Share], x: int) -> int:
        """Evaluate the unique degree-(k-1) polynomial through ``shares`` at ``x``."""
        if len(shares) < self.k:
            raise ThresholdError(
                f"need at least {self.k} shares, got {len(shares)}"
            )
        subset = shares[: self.k]
        result = 0
        for i, s_i in enumerate(subset):
            num, den = 1, 1
            for j, s_j in enumerate(subset):
                if i == j:
                    continue
                num = (num * (x - s_j.x)) % self.p
                den = (den * (s_i.x - s_j.x)) % self.p
            result = (result + s_i.y * num * modinv(den, self.p)) % self.p
        return result

    @staticmethod
    def add_shares(per_point_shares: list[list[Share]]) -> list[Share]:
        """Column-wise addition of share lists.

        ``per_point_shares[i]`` is node ``i``'s full share vector; the result
        is the share vector of the sum polynomial ``F(z) = Σ f_i(z)`` — the
        core step of the paper's secure sum.
        """
        if not per_point_shares:
            raise SecretSharingError("no share vectors to add")
        width = len(per_point_shares[0])
        if any(len(vec) != width for vec in per_point_shares):
            raise SecretSharingError("share vectors have differing lengths")
        totals = per_point_shares[0]
        for vec in per_point_shares[1:]:
            totals = [a + b for a, b in zip(totals, vec)]
        return totals
