"""Pohlig-Hellman commutative encryption (paper §3, eq. 6-7, ref [21]).

The cipher encrypts a message ``M`` in ``Z_p^*`` as ``C = M^e mod p`` and
decrypts with ``M = C^d mod p`` where ``e*d ≡ 1 (mod p-1)``.  Because
exponentiation composes multiplicatively,

    E_a(E_b(M)) = M^(e_a * e_b) = E_b(E_a(M)),

any set of parties sharing the prime ``p`` can encrypt a message in *any*
order and decrypt it with the matching keys in *any* order — the property
eq. 6 requires.  Equation 7 (distinct plaintexts stay distinct) holds because
``x -> x^e`` is a bijection of ``Z_p^*``.

Two subtleties the paper glosses over, handled here:

* **Plaintext domain.**  Log attribute values are arbitrary bytes/strings,
  not group elements.  :class:`MessageEncoder` hashes values into
  ``Z_p^*`` (quadratic-residue subgroup for safe primes, so the image lies
  in a prime-order group and small-subgroup leakage is avoided).  Hash
  encoding is one-way; the secure set protocols only ever need equality of
  encodings, never inversion — parties that hold the plaintext candidate
  set re-encode to match.  A reversible integer encoder is also provided
  for numeric payloads that must be recovered (secure union).
* **Key hygiene.**  Exponents are sampled coprime to ``p - 1`` and, for
  safe primes, odd exponents are chosen so they are automatically coprime
  to the factor 2.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto import primes
from repro.crypto.modmath import int_to_bytes, modinv
from repro.crypto.rng import system_rng
from repro.errors import ParameterError
from repro.perf.engine import resolve_engine

__all__ = [
    "CommutativeKey",
    "PohligHellmanCipher",
    "MessageEncoder",
    "shared_prime",
]


def shared_prime(bits: int = 256, rng=None, fresh: bool = False) -> int:
    """Return a safe prime suitable as the cluster-wide cipher modulus."""
    return primes.safe_prime(bits, rng=rng, fresh=fresh)


@dataclass(frozen=True)
class CommutativeKey:
    """An (e, d) exponent pair for a fixed prime modulus ``p``.

    ``e * d ≡ 1 (mod p - 1)``, so ``(M^e)^d ≡ M (mod p)``.
    """

    p: int
    e: int
    d: int

    def __post_init__(self) -> None:
        if (self.e * self.d) % (self.p - 1) != 1:
            raise ParameterError("e*d != 1 mod p-1: not a valid key pair")

    @property
    def public_modulus(self) -> int:
        return self.p


class PohligHellmanCipher:
    """Commutative cipher bound to one key pair.

    Instances are cheap; every DLA node builds one per protocol run.

    Examples
    --------
    >>> from repro.crypto.rng import DeterministicRng
    >>> rng = DeterministicRng(7)
    >>> p = shared_prime(64)
    >>> a = PohligHellmanCipher.generate(p, rng)
    >>> b = PohligHellmanCipher.generate(p, rng)
    >>> m = 123456789
    >>> a.encrypt(b.encrypt(m)) == b.encrypt(a.encrypt(m))
    True
    >>> a.decrypt(b.decrypt(b.encrypt(a.encrypt(m)))) == m
    True
    """

    def __init__(self, key: CommutativeKey) -> None:
        self.key = key

    @classmethod
    def generate(cls, p: int, rng=None) -> "PohligHellmanCipher":
        """Generate a fresh key pair for prime modulus ``p``."""
        rng = rng or system_rng()
        order = p - 1
        while True:
            e = rng.randrange(3, order) | 1  # odd => coprime to the factor 2
            try:
                d = modinv(e, order)
            except ParameterError:
                continue
            return cls(CommutativeKey(p=p, e=e, d=d))

    @property
    def p(self) -> int:
        return self.key.p

    def _check_element(self, value: int) -> int:
        value %= self.key.p
        if value == 0:
            raise ParameterError("0 is not in Z_p^* and cannot be encrypted")
        return value

    def encrypt(self, m: int) -> int:
        """Encrypt a group element: ``C = M^e mod p``."""
        return pow(self._check_element(m), self.key.e, self.key.p)

    def decrypt(self, c: int) -> int:
        """Decrypt a group element: ``M = C^d mod p``."""
        return pow(self._check_element(c), self.key.d, self.key.p)

    def encrypt_set(self, values: list[int], engine=None) -> list[int]:
        """Encrypt every element of a list (order preserved).

        ``engine`` is an :class:`~repro.perf.engine.ExponentiationEngine`
        (or spec); ``None`` uses the process-wide default.  Every engine
        returns results identical to serial per-element encryption.
        """
        checked = [self._check_element(v) for v in values]
        return resolve_engine(engine).pow_many(checked, self.key.e, self.key.p)

    def decrypt_set(self, values: list[int], engine=None) -> list[int]:
        """Decrypt every element of a list (order preserved)."""
        checked = [self._check_element(v) for v in values]
        return resolve_engine(engine).pow_many(checked, self.key.d, self.key.p)


class MessageEncoder:
    """Encode application values into the cipher's plaintext domain.

    Two encodings:

    * :meth:`encode_hashed` — SHA-256 the canonical byte form of the value,
      reduce into ``Z_p^*`` and square (for a safe prime the squares form
      the prime-order subgroup of quadratic residues).  One-way; collision
      probability is negligible for |p| >= 64 bits relative to set sizes
      here.  This is what the secure set intersection uses: equality of
      encodings <=> equality of values.
    * :meth:`encode_int` / :meth:`decode_int` — reversible shift encoding
      for integers in ``[0, p//4)``; used when the plaintext must be
      recovered after full decryption (secure set union).

    ``cache`` is an optional :class:`~repro.cache.LruCache` memoizing
    hashed encodings.  ``encode_hashed`` is a pure function of
    ``(value, p)`` and ``p`` is fixed per encoder, so the memo key is
    just the value's canonical bytes; repeated queries then skip the
    SHA-256 rejection-sampling loop and the squaring entirely.  Cached
    and uncached encodings are identical by construction.
    """

    def __init__(self, p: int, cache=None) -> None:
        if p < 17:
            raise ParameterError("modulus too small to encode messages")
        self.p = p
        self._cache = cache

    def _canonical_bytes(self, value) -> bytes:
        if isinstance(value, bytes):
            return b"b:" + value
        if isinstance(value, str):
            return b"s:" + value.encode("utf-8")
        if isinstance(value, bool):
            return b"o:" + (b"1" if value else b"0")
        if isinstance(value, int):
            sign = b"-" if value < 0 else b"+"
            return b"i:" + sign + int_to_bytes(abs(value))
        raise ParameterError(f"cannot canonically encode {type(value)!r}")

    def _hash_to_unit(self, value) -> int:
        """Hash a value into ``Z_p^* \\ {1, p-1}`` (pre-squaring)."""
        digest = self._canonical_bytes(value)
        counter = 0
        while True:
            h = hashlib.sha256(digest + counter.to_bytes(4, "big")).digest()
            x = int.from_bytes(h, "big") % self.p
            if x not in (0, 1, self.p - 1):
                return x
            counter += 1

    def encode_hashed(self, value) -> int:
        """One-way encoding of an arbitrary value into the QR subgroup."""
        if self._cache is None:
            return pow(self._hash_to_unit(value), 2, self.p)
        key = self._canonical_bytes(value)
        return self._cache.get_or_compute(
            key, lambda: pow(self._hash_to_unit(value), 2, self.p)
        )

    def encode_hashed_many(self, values, engine=None) -> list[int]:
        """Bulk :meth:`encode_hashed` (order preserved).

        Hashing is cheap; the squarings route through the exponentiation
        engine.  Element-wise equal to ``[encode_hashed(v) for v in values]``.
        With a cache attached, only memo misses are hashed and squared.
        """
        if self._cache is None:
            units = [self._hash_to_unit(v) for v in values]
            return resolve_engine(engine).pow_many(units, 2, self.p)
        out: list[int | None] = []
        miss_positions: list[int] = []
        miss_units: list[int] = []
        miss_keys: list[bytes] = []
        for i, value in enumerate(values):
            key = self._canonical_bytes(value)
            hit = self._cache.get(key)
            out.append(hit)
            if hit is None:
                miss_positions.append(i)
                miss_units.append(self._hash_to_unit(value))
                miss_keys.append(key)
        if miss_units:
            squared = resolve_engine(engine).pow_many(miss_units, 2, self.p)
            for position, key, encoding in zip(miss_positions, miss_keys, squared):
                out[position] = encoding
                self._cache.put(key, encoding)
        return out  # type: ignore[return-value]

    def encode_int(self, value: int) -> int:
        """Reversible encoding of a small non-negative integer.

        The value is only shifted by 2, so that 0 (not a group element)
        and 1 (a fixed point of exponentiation) are never used as
        plaintexts.  Unlike :meth:`encode_hashed`, the result is *not*
        squared into the QR subgroup: squaring is two-to-one on
        ``Z_p^*`` and would make decoding ambiguous.  Skipping it is
        safe here because the cipher is a bijection on all of
        ``Z_p^*``, so encryption needs no subgroup confinement — only
        the hashed (never-decoded) encoding pays the square for its
        small-subgroup hygiene.
        """
        if value < 0 or value >= self.p // 4:
            raise ParameterError(
                f"reversible encoding requires 0 <= value < p//4, got {value}"
            )
        return value + 2

    def decode_int(self, element: int) -> int:
        """Inverse of :meth:`encode_int`."""
        value = element - 2
        if value < 0 or value >= self.p // 4:
            raise ParameterError(f"element {element} is not a valid int encoding")
        return value
