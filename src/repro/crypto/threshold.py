"""(k, n) threshold Schnorr signatures for DLA audit reports.

Paper §2: "DLA nodes use secure multiparty computations, threshold
signature and distributed majority agreement to provide trusted and
reliable auditing."  A final audit result is signed by at least ``k`` of the
``n`` DLA nodes so that no single (possibly compromised) node can forge a
report.

Construction: a dealer (the credential authority at cluster setup) Shamir-
shares the signing key ``x``; each node ``i`` holds ``x_i = f(i)``.  To sign,
a subset ``S`` with ``|S| >= k``:

1. each ``i ∈ S`` samples a nonce ``k_i`` and publishes ``R_i = g^{k_i}``;
2. everyone computes ``R = Π R_i`` and ``c = H(R ‖ y ‖ msg)``;
3. each ``i`` sends the partial ``s_i = k_i - c · λ_i(S) · x_i mod q`` where
   ``λ_i(S)`` is the Lagrange coefficient of ``i`` at zero over ``S``;
4. ``s = Σ s_i``; the pair ``(c, s)`` is an ordinary Schnorr signature
   under the cluster public key ``y = g^x``.

This is the textbook dealer-based scheme — adequate for the honest-but-
curious DLA threat model (the paper's); it is not robust against malicious
nonce biasing (a production system would use FROST-style commitments).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.modmath import modinv
from repro.crypto.rng import system_rng
from repro.crypto.schnorr import SchnorrGroup, SchnorrSignature, SchnorrSigner
from repro.crypto.shamir import ShamirScheme
from repro.errors import ParameterError, ThresholdError

__all__ = ["ThresholdKeyShare", "ThresholdScheme", "PartialSignature"]


@dataclass(frozen=True)
class ThresholdKeyShare:
    """One node's share of the cluster signing key."""

    index: int        # the Shamir evaluation point (1-based node index)
    value: int        # x_i = f(index) mod q
    public_y: int     # cluster public key g^x (same for every share)


@dataclass(frozen=True)
class PartialSignature:
    """One node's contribution in round 2 of threshold signing."""

    index: int
    s_i: int


class ThresholdScheme:
    """Dealer, coordinator and verifier roles for threshold Schnorr."""

    def __init__(self, group: SchnorrGroup, k: int, n: int) -> None:
        if k < 1 or n < k:
            raise ParameterError(f"invalid threshold parameters k={k}, n={n}")
        self.group = group
        self.k = k
        self.n = n
        self._shamir = ShamirScheme(k=k, n=n, p=group.q)

    def deal(self, rng=None) -> tuple[int, list[ThresholdKeyShare]]:
        """Generate a key, share it; return ``(public_y, shares)``.

        The dealer must erase ``x`` after dealing; we never return it.
        """
        rng = rng or system_rng()
        x = self.group.random_scalar(rng)
        public_y = pow(self.group.g, x, self.group.p)
        shares = self._shamir.share(x, rng=rng)
        return public_y, [
            ThresholdKeyShare(index=s.x, value=s.y, public_y=public_y)
            for s in shares
        ]

    def lagrange_at_zero(self, indices: list[int]) -> dict[int, int]:
        """Lagrange coefficients λ_i(S) at zero over subset ``indices`` mod q."""
        q = self.group.q
        if len(set(indices)) != len(indices):
            raise ParameterError("duplicate signer indices")
        coeffs: dict[int, int] = {}
        for i in indices:
            num, den = 1, 1
            for j in indices:
                if j == i:
                    continue
                num = (num * (-j)) % q
                den = (den * (i - j)) % q
            coeffs[i] = (num * modinv(den, q)) % q
        return coeffs

    def nonce_round(self, signer_indices: list[int], rng=None) -> tuple[dict[int, int], int]:
        """Round 1: per-signer nonces and the combined commitment ``R``.

        Returns ``(nonces, R)`` where ``nonces[i] = k_i``.  In a networked
        run each node keeps its own ``k_i``; this helper centralizes them
        for in-process simulation.
        """
        if len(signer_indices) < self.k:
            raise ThresholdError(
                f"need {self.k} signers, got {len(signer_indices)}"
            )
        rng = rng or system_rng()
        nonces = {i: self.group.random_scalar(rng) for i in signer_indices}
        r = 1
        for k_i in nonces.values():
            r = (r * pow(self.group.g, k_i, self.group.p)) % self.group.p
        return nonces, r

    def partial_sign(
        self,
        share: ThresholdKeyShare,
        nonce: int,
        challenge: int,
        lagrange: int,
    ) -> PartialSignature:
        """Round 2: one node's partial signature."""
        s_i = (nonce - challenge * lagrange * share.value) % self.group.q
        return PartialSignature(index=share.index, s_i=s_i)

    def combine(
        self, challenge: int, partials: list[PartialSignature]
    ) -> SchnorrSignature:
        """Aggregate partials into a standard Schnorr signature."""
        if len(partials) < self.k:
            raise ThresholdError(
                f"need {self.k} partial signatures, got {len(partials)}"
            )
        s = sum(p.s_i for p in partials) % self.group.q
        return SchnorrSignature(c=challenge, s=s)

    def sign(
        self,
        shares: list[ThresholdKeyShare],
        message: bytes,
        rng=None,
    ) -> SchnorrSignature:
        """Run the full signing protocol in-process with the given shares."""
        if len(shares) < self.k:
            raise ThresholdError(f"need {self.k} shares, got {len(shares)}")
        subset = shares[: self.k]
        indices = [s.index for s in subset]
        nonces, r = self.nonce_round(indices, rng=rng)
        public_y = subset[0].public_y
        challenge = self.group.hash_to_scalar(r, public_y, message)
        lagrange = self.lagrange_at_zero(indices)
        partials = [
            self.partial_sign(s, nonces[s.index], challenge, lagrange[s.index])
            for s in subset
        ]
        return self.combine(challenge, partials)

    def verify(self, public_y: int, message: bytes, sig: SchnorrSignature) -> bool:
        """Threshold signatures verify as ordinary Schnorr signatures."""
        return SchnorrSigner(self.group).verify(public_y, message, sig)
