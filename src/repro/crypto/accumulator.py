"""One-way quasi-commutative accumulator (paper §4.1, eq. 8-9, refs [26][27]).

The construction is Benaloh-de Mare's: over an RSA modulus ``n`` with
unknown factorization,

    A(x, y) = x^y mod n.

Accumulating a multiset of values ``y_1 .. y_k`` into a base ``x_0`` gives
``x_0^(y_1 * ... * y_k) mod n`` — independent of order (eq. 9), which is the
property the DLA integrity cross-check exploits: each DLA node folds in the
digest of its own fragment as the token circulates the ring, and the final
value matches the application node's precomputed accumulator no matter which
ring order was used.

Accumulated values must be odd integers > 1 (even exponents interact with
the group structure; we map arbitrary byte strings through SHA-256 and force
the low bit).  The modulus generator (the credential authority in the DLA
architecture) must discard the factorization.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto import primes
from repro.crypto.rng import system_rng
from repro.errors import ParameterError
from repro.obs.tracer import NOOP_TRACER
from repro.perf.engine import resolve_engine

__all__ = ["AccumulatorParams", "OneWayAccumulator", "digest_to_exponent"]


def digest_to_exponent(data: bytes, bits: int = 128) -> int:
    """Map arbitrary bytes to an odd exponent of about ``bits`` bits.

    SHA-256 based; the forced-odd low bit keeps exponents in the units and
    cannot merge two distinct digests (they would have to differ only in
    the bit we force, which SHA-256 output does with probability 2^-255).
    """
    if bits < 16 or bits > 256:
        raise ParameterError("exponent size must be in [16, 256] bits")
    h = hashlib.sha256(b"acc-exp:" + data).digest()
    value = int.from_bytes(h, "big") >> (256 - bits)
    return value | 1 | (1 << (bits - 1))


@dataclass(frozen=True)
class AccumulatorParams:
    """Public parameters: RSA modulus ``n`` and agreed base ``x0``.

    The paper requires ``n`` (product of two primes) and ``x0`` to be agreed
    in advance by the application and DLA subsystems.
    """

    n: int
    x0: int

    def __post_init__(self) -> None:
        if self.n < 15:
            raise ParameterError("modulus too small for an accumulator")
        if not 1 < self.x0 < self.n - 1:
            raise ParameterError("base x0 must satisfy 1 < x0 < n-1")

    @classmethod
    def generate(cls, bits: int = 256, rng=None) -> "AccumulatorParams":
        """Generate fresh parameters, discarding the factorization."""
        rng = rng or system_rng()
        n, _p, _q = primes.rsa_modulus(bits, rng=rng)
        x0 = rng.randrange(2, n - 1)
        return cls(n=n, x0=x0)


class OneWayAccumulator:
    """Stateful accumulator over fixed :class:`AccumulatorParams`.

    Examples
    --------
    >>> params = AccumulatorParams(n=3233 * 5, x0=42)  # doctest: +SKIP
    >>> acc = OneWayAccumulator(params)
    >>> a = acc.accumulate_all([b"frag0", b"frag1", b"frag2"])
    >>> b = acc.accumulate_all([b"frag2", b"frag0", b"frag1"])
    >>> a == b
    True
    """

    def __init__(self, params: AccumulatorParams, tracer=None) -> None:
        self.params = params
        self.tracer = tracer or NOOP_TRACER

    def step(self, current: int, item: bytes | int) -> int:
        """One application of eq. 8: ``A(current, y) = current^y mod n``."""
        exponent = item if isinstance(item, int) else digest_to_exponent(item)
        if exponent <= 1:
            raise ParameterError("accumulated exponents must exceed 1")
        return pow(current, exponent, self.params.n)

    def accumulate_all(self, items: list[bytes | int], start: int | None = None) -> int:
        """Fold every item into the base (or ``start``), any order-equivalent."""
        with self.tracer.span("acc.accumulate", {"items": len(items)}):
            acc = self.params.x0 if start is None else start
            for item in items:
                acc = self.step(acc, item)
            return acc

    def verify(self, items: list[bytes | int], expected: int) -> bool:
        """Check that accumulating ``items`` reproduces ``expected``."""
        return self.accumulate_all(items) == expected

    def witness(self, items: list[bytes | int], index: int) -> int:
        """Membership witness for ``items[index]``: the accumulator of all
        *other* items.  ``step(witness, items[index]) == accumulate_all(items)``.

        Costs one ``pow``: the chain ``(((x0^e_a)^e_b)...)`` equals
        ``x0`` raised to the pre-multiplied exponent product (eq. 9), so
        the per-item chain collapses into a single exponentiation.
        """
        if not 0 <= index < len(items):
            raise ParameterError(f"index {index} out of range")
        product = 1
        for i, item in enumerate(items):
            if i != index:
                product *= self._exponent_for(item)
        return pow(self.params.x0, product, self.params.n)

    def _exponent_for(self, item: bytes | int) -> int:
        exponent = item if isinstance(item, int) else digest_to_exponent(item)
        if exponent <= 1:
            raise ParameterError("accumulated exponents must exceed 1")
        return exponent

    def exponent_product(self, items: list[bytes | int]) -> int:
        """Plain integer product of the items' digest exponents.

        Public integers — no group-order reduction exists (or is needed)
        for an RSA modulus of unknown factorization, so the product is
        exact and ``pow(base, exponent_product(items), n)`` equals the
        item-by-item :meth:`step` chain.
        """
        product = 1
        for item in items:
            product *= self._exponent_for(item)
        return product

    def fold_product(self, current: int, items: list[bytes | int]) -> int:
        """Fold every item into ``current`` with a single ``pow``.

        Value-identical to repeated :meth:`step` (eq. 9); the batched
        integrity ring uses this to collapse one hop's k fragment folds
        into one exponentiation.
        """
        return pow(current, self.exponent_product(items), self.params.n)

    def step_many(
        self, currents: list[int], items: list[bytes | int], engine=None
    ) -> list[int]:
        """Element-wise :meth:`step` over aligned lists, engine-routed."""
        if len(currents) != len(items):
            raise ParameterError(
                f"value count {len(currents)} != item count {len(items)}"
            )
        exponents = [self._exponent_for(item) for item in items]
        return resolve_engine(engine).pow_many(currents, exponents, self.params.n)

    def witness_all(self, items: list[bytes | int], engine=None) -> list[int]:
        """Membership witnesses for *every* item at once.

        Witness ``i`` is ``x0`` raised to the product of all other items'
        exponents; exponentiation by the pre-multiplied product equals the
        per-item chain (``(x^a)^b = x^(a·b) mod n``, eq. 9), so each
        result is identical to :meth:`witness`.

        Computed with the divide-and-conquer *RootFactor* subset-product
        tree: the root holds ``x0`` over all k exponents; each node
        covering exponent range ``[lo, hi)`` spawns a left child raised to
        the product of the *right* half and vice versa, until the leaves
        — exactly the k witnesses — remain.  Each of the ``log k`` levels
        costs ``2^d`` modexps whose exponents total ~k small exponents, so
        the whole tree is O(k log k) small-exponent work where the naive
        per-index chains (or the prefix/suffix construction's k pows with
        ~k-fold exponents) cost O(k²).  Every level's pows are batched
        through the exponentiation engine, so wide levels fan out across
        workers.
        """
        with self.tracer.span(
            "acc.witness_all",
            {"items": len(items), "engine": resolve_engine(engine).name},
        ):
            return self._witness_all(items, engine)

    def _witness_all(self, items: list[bytes | int], engine=None) -> list[int]:
        exponents = [self._exponent_for(item) for item in items]
        k = len(exponents)
        if k == 0:
            return []
        engine = resolve_engine(engine)
        n = self.params.n
        # Balanced product tree over exponent ranges (plain integer
        # products: public exponents, no group-order reduction exists for
        # an RSA modulus of unknown factorization).  Built once, read at
        # every descent level.
        products: dict[tuple[int, int], int] = {}

        def build(lo: int, hi: int) -> int:
            if hi - lo == 1:
                products[(lo, hi)] = exponents[lo]
            else:
                mid = (lo + hi) // 2
                products[(lo, hi)] = build(lo, mid) * build(mid, hi)
            return products[(lo, hi)]

        build(0, k)

        witnesses = [0] * k
        frontier: list[tuple[int, int, int]] = [(self.params.x0, 0, k)]
        while frontier:
            bases: list[int] = []
            powers: list[int] = []
            spans: list[tuple[int, int]] = []
            for value, lo, hi in frontier:
                if hi - lo == 1:
                    witnesses[lo] = value
                    continue
                mid = (lo + hi) // 2
                # Left child excludes the right half's exponents and vice
                # versa — descending to a leaf excludes everything but it.
                bases.append(value)
                powers.append(products[(mid, hi)])
                spans.append((lo, mid))
                bases.append(value)
                powers.append(products[(lo, mid)])
                spans.append((mid, hi))
            if not bases:
                break
            level = engine.pow_many(bases, powers, n)
            frontier = [
                (value, lo, hi) for value, (lo, hi) in zip(level, spans)
            ]
        return witnesses

    def verify_membership(
        self, item: bytes | int, witness: int, accumulated: int
    ) -> bool:
        """Check ``item`` is a member given its witness and the full value."""
        return self.step(witness, item) == accumulated
