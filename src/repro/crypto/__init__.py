"""Cryptographic substrate for the DLA reproduction.

Everything here is implemented from scratch over Python big integers:

* :mod:`repro.crypto.rng` — deterministic (seedable) and OS-entropy RNGs;
* :mod:`repro.crypto.primes` — Miller-Rabin, safe primes, RSA moduli;
* :mod:`repro.crypto.modmath` — inverses, CRT, Jacobi, generators;
* :mod:`repro.crypto.pohlig_hellman` — the commutative cipher of paper §3;
* :mod:`repro.crypto.shamir` — (k, n) secret sharing for secure sum (§3.5);
* :mod:`repro.crypto.accumulator` — one-way accumulator (§4.1 eq. 8-9);
* :mod:`repro.crypto.commitments` — Pedersen commitments (evidence binding);
* :mod:`repro.crypto.schnorr` / :mod:`repro.crypto.blind` — signatures and
  the blind variant behind anonymous e-coin evidence (§4.2);
* :mod:`repro.crypto.threshold` — threshold signatures on audit reports;
* :mod:`repro.crypto.tickets` — Kerberos-style access tickets (§4).

SECURITY NOTE: this is research code for protocol reproduction, not a
hardened cryptographic library; parameters default to sizes chosen for
test/benchmark speed.
"""

from repro.crypto.rng import DeterministicRng, SystemRng, system_rng
from repro.crypto.primes import (
    is_probable_prime,
    prime_above,
    random_prime,
    rsa_modulus,
    safe_prime,
    sophie_germain_pair,
)
from repro.crypto.pohlig_hellman import (
    CommutativeKey,
    MessageEncoder,
    PohligHellmanCipher,
    shared_prime,
)
from repro.crypto.shamir import ShamirScheme, Share
from repro.crypto.accumulator import (
    AccumulatorParams,
    OneWayAccumulator,
    digest_to_exponent,
)
from repro.crypto.commitments import Commitment, PedersenCommitter, PedersenParams
from repro.crypto.schnorr import (
    SchnorrGroup,
    SchnorrKeyPair,
    SchnorrSignature,
    SchnorrSigner,
)
from repro.crypto.blind import BlindingClient, BlindSigner, issue_blind_signature
from repro.crypto.threshold import PartialSignature, ThresholdKeyShare, ThresholdScheme
from repro.crypto.tickets import Operation, Ticket, TicketAuthority

__all__ = [
    "DeterministicRng",
    "SystemRng",
    "system_rng",
    "is_probable_prime",
    "prime_above",
    "random_prime",
    "rsa_modulus",
    "safe_prime",
    "sophie_germain_pair",
    "CommutativeKey",
    "MessageEncoder",
    "PohligHellmanCipher",
    "shared_prime",
    "ShamirScheme",
    "Share",
    "AccumulatorParams",
    "OneWayAccumulator",
    "digest_to_exponent",
    "Commitment",
    "PedersenCommitter",
    "PedersenParams",
    "SchnorrGroup",
    "SchnorrKeyPair",
    "SchnorrSignature",
    "SchnorrSigner",
    "BlindingClient",
    "BlindSigner",
    "issue_blind_signature",
    "PartialSignature",
    "ThresholdKeyShare",
    "ThresholdScheme",
    "Operation",
    "Ticket",
    "TicketAuthority",
]
