"""Modular-arithmetic helpers shared by every cryptographic module.

All group operations in the library happen in ``Z_p`` (prime field) or
``Z_n`` (RSA-style composite).  Python's built-in ``pow`` does modular
exponentiation; this module adds inverses, egcd, CRT, Jacobi symbols and
generator searching so higher layers never hand-roll number theory.
"""

from __future__ import annotations

from repro.errors import ParameterError


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def modinv(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises
    ------
    ParameterError
        If ``a`` is not invertible mod ``m`` (``gcd(a, m) != 1``).
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ParameterError(f"{a} is not invertible modulo {m} (gcd={g})")
    return x % m


def crt(residues: list[int], moduli: list[int]) -> int:
    """Chinese Remainder Theorem for pairwise-coprime ``moduli``.

    Returns the unique ``x`` modulo ``prod(moduli)`` with
    ``x ≡ residues[i] (mod moduli[i])`` for every ``i``.
    """
    if len(residues) != len(moduli):
        raise ParameterError("residue and modulus lists differ in length")
    if not moduli:
        raise ParameterError("CRT needs at least one congruence")
    x, m = residues[0] % moduli[0], moduli[0]
    for r_i, m_i in zip(residues[1:], moduli[1:]):
        g, p, _ = egcd(m, m_i)
        if g != 1:
            raise ParameterError("CRT moduli must be pairwise coprime")
        x = (x + (r_i - x) * p % m_i * m) % (m * m_i)
        m *= m_i
    return x % m


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` for odd ``n > 0``; returns -1, 0 or 1."""
    if n <= 0 or n % 2 == 0:
        raise ParameterError("Jacobi symbol requires odd positive n")
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def is_quadratic_residue(a: int, p: int) -> bool:
    """Euler criterion: is ``a`` a non-zero square modulo prime ``p``?"""
    a %= p
    if a == 0:
        return False
    return pow(a, (p - 1) // 2, p) == 1


def find_generator(p: int, factors: list[int], rng) -> int:
    """Find a generator of ``Z_p^*`` given the prime factors of ``p - 1``.

    Samples candidates and checks ``g^((p-1)/q) != 1`` for each prime
    factor ``q`` of ``p - 1``.
    """
    order = p - 1
    while True:
        g = rng.randrange(2, p - 1)
        if all(pow(g, order // q, p) != 1 for q in factors):
            return g


def find_safe_prime_generator(p: int, rng) -> int:
    """Find a generator of ``Z_p^*`` for a safe prime ``p = 2q + 1``."""
    return find_generator(p, [2, (p - 1) // 2], rng)


def find_subgroup_generator(p: int, q: int, rng) -> int:
    """Find a generator of the order-``q`` subgroup of ``Z_p^*``.

    Requires ``q`` to divide ``p - 1``.  The returned element has exact
    order ``q`` (used for Schnorr groups and Pedersen commitments).
    """
    if (p - 1) % q:
        raise ParameterError("q must divide p - 1")
    cofactor = (p - 1) // q
    while True:
        h = rng.randrange(2, p - 1)
        g = pow(h, cofactor, p)
        if g != 1:
            return g


def int_to_bytes(value: int) -> bytes:
    """Minimal big-endian encoding of a non-negative integer (0 -> b'\\x00')."""
    if value < 0:
        raise ParameterError("cannot encode a negative integer")
    length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Big-endian decoding, inverse of :func:`int_to_bytes`."""
    return int.from_bytes(data, "big")
