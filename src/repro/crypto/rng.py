"""Deterministic cryptographic-style random number generation.

The protocols in this library are *randomized*: key generation, Shamir
coefficients, blinding factors, nonces.  For a research reproduction we need
two properties simultaneously:

* unpredictability good enough that protocol transcripts look like the
  paper's (no accidental structure), and
* **reproducibility** — a test or benchmark seeded with the same value must
  generate the same keys, shares and nonces every run.

Python's :mod:`secrets` gives the first but not the second; :mod:`random`
gives the second but its Mersenne Twister output is distinguishable.  We use
a small HMAC-SHA256 counter construction (an HMAC_DRBG reduced to the parts
we need): seeded, forward-secure enough for tests, and fast.

Use :func:`system_rng` for callers that want OS entropy and do not care
about reproducibility.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from repro.errors import ConfigurationError

_BLOCK_BITS = 256


class DeterministicRng:
    """HMAC-SHA256 counter DRBG with the subset of the ``random.Random``
    interface the library needs.

    Parameters
    ----------
    seed:
        Any bytes or int or str.  Two instances with equal seeds produce
        identical streams.
    """

    def __init__(self, seed: int | bytes | str = 0) -> None:
        if isinstance(seed, int):
            if seed < 0:
                seed = -seed * 2 + 1
            seed_bytes = seed.to_bytes((seed.bit_length() + 8) // 8, "big")
        elif isinstance(seed, str):
            seed_bytes = seed.encode("utf-8")
        elif isinstance(seed, bytes):
            seed_bytes = seed
        else:
            raise ConfigurationError(f"unsupported seed type: {type(seed)!r}")
        self._key = hashlib.sha256(b"repro-drbg-key:" + seed_bytes).digest()
        self._counter = 0

    def _next_block(self) -> bytes:
        block = hmac.new(
            self._key, self._counter.to_bytes(16, "big"), hashlib.sha256
        ).digest()
        self._counter += 1
        return block

    def getrandbits(self, k: int) -> int:
        """Return a uniform integer with at most ``k`` random bits."""
        if k < 0:
            raise ConfigurationError("number of bits must be non-negative")
        if k == 0:
            return 0
        blocks_needed = (k + _BLOCK_BITS - 1) // _BLOCK_BITS
        raw = b"".join(self._next_block() for _ in range(blocks_needed))
        value = int.from_bytes(raw, "big")
        excess = blocks_needed * _BLOCK_BITS - k
        return value >> excess

    def randbytes(self, n: int) -> bytes:
        """Return ``n`` uniform random bytes."""
        if n < 0:
            raise ConfigurationError("byte count must be non-negative")
        return self.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def randbelow(self, upper: int) -> int:
        """Return a uniform integer in ``[0, upper)`` by rejection sampling."""
        if upper <= 0:
            raise ConfigurationError("upper bound must be positive")
        k = upper.bit_length()
        while True:
            candidate = self.getrandbits(k)
            if candidate < upper:
                return candidate

    def randrange(self, start: int, stop: int | None = None) -> int:
        """Return a uniform integer in ``[start, stop)`` (or ``[0, start)``)."""
        if stop is None:
            start, stop = 0, start
        if stop <= start:
            raise ConfigurationError(f"empty range [{start}, {stop})")
        return start + self.randbelow(stop - start)

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in the inclusive range ``[low, high]``."""
        return self.randrange(low, high + 1)

    def choice(self, seq):
        """Return a uniform element of a non-empty sequence."""
        if not seq:
            raise ConfigurationError("cannot choose from an empty sequence")
        return seq[self.randbelow(len(seq))]

    def shuffle(self, items: list) -> None:
        """Fisher-Yates shuffle of ``items`` in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randbelow(i + 1)
            items[i], items[j] = items[j], items[i]

    def sample(self, population, k: int) -> list:
        """Return ``k`` distinct elements drawn without replacement."""
        population = list(population)
        if k > len(population):
            raise ConfigurationError("sample larger than population")
        self.shuffle(population)
        return population[:k]

    def random(self) -> float:
        """Return a float in ``[0, 1)`` with 53 bits of precision."""
        return self.getrandbits(53) / (1 << 53)

    def spawn(self, label: str) -> "DeterministicRng":
        """Derive an independent child stream tied to ``label``.

        Protocol components each take their own spawned stream so that
        adding a random draw in one component does not shift every other
        component's stream (which would invalidate recorded test vectors).
        """
        child = DeterministicRng(b"")
        child._key = hmac.new(
            self._key, b"spawn:" + label.encode("utf-8"), hashlib.sha256
        ).digest()
        return child


class SystemRng(DeterministicRng):
    """OS-entropy RNG with the same interface as :class:`DeterministicRng`."""

    def __init__(self) -> None:  # noqa: D107 - interface matches base
        super().__init__(0)

    def getrandbits(self, k: int) -> int:
        if k < 0:
            raise ConfigurationError("number of bits must be non-negative")
        if k == 0:
            return 0
        return secrets.randbits(k)

    def spawn(self, label: str) -> "SystemRng":
        return SystemRng()


def system_rng() -> SystemRng:
    """Return a fresh OS-entropy RNG (non-reproducible)."""
    return SystemRng()
