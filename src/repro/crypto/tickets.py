"""Kerberos-style tickets for log access control (paper §4, ref [28]).

"Before a user u_j can log (write) a message in a DLA cluster, it must
obtain a ticket to authenticate the user and control the user's access
operations (read/query, write/log, delete)."

We implement a KDC-lite: a ticket authority holds a master secret, issues
tickets binding ``(principal, operations, expiry)`` under an HMAC-SHA256
tag, and any DLA node holding the authority's verification secret can check
a ticket offline.  Tickets carry an ID so access-control tables (paper
Table 6) can key glsn grants by ticket.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import TicketError

__all__ = ["Operation", "Ticket", "TicketAuthority"]


class Operation(str, Enum):
    """The three access primitives the paper names."""

    READ = "read"      # read / query
    WRITE = "write"    # write / log
    DELETE = "delete"

    @classmethod
    def parse(cls, text: str) -> "Operation":
        try:
            return cls(text.lower())
        except ValueError as exc:
            raise TicketError(f"unknown operation {text!r}") from exc


@dataclass(frozen=True)
class Ticket:
    """An issued ticket: the credential a user presents with each request."""

    ticket_id: str
    principal: str
    operations: frozenset[Operation]
    issued_at: int          # logical clock of the authority
    expires_at: int | None  # None = never expires
    tag: bytes = field(repr=False)

    def payload_bytes(self) -> bytes:
        """Canonical byte serialization of everything covered by the tag."""
        body = {
            "ticket_id": self.ticket_id,
            "principal": self.principal,
            "operations": sorted(op.value for op in self.operations),
            "issued_at": self.issued_at,
            "expires_at": self.expires_at,
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()

    def permits(self, op: Operation) -> bool:
        return op in self.operations


class TicketAuthority:
    """Issues and verifies tickets under one master secret.

    The authority keeps a logical clock; expiry is expressed in its ticks so
    tests are deterministic (no wall-clock reads).
    """

    def __init__(self, master_secret: bytes, name: str = "kdc") -> None:
        if len(master_secret) < 16:
            raise TicketError("master secret must be at least 16 bytes")
        self._secret = master_secret
        self.name = name
        self._clock = 0
        self._issued = 0
        self._revoked: set[str] = set()

    def tick(self, amount: int = 1) -> int:
        """Advance the authority's logical clock (simulating time passing)."""
        if amount < 0:
            raise TicketError("clock cannot run backwards")
        self._clock += amount
        return self._clock

    @property
    def now(self) -> int:
        return self._clock

    def _tag(self, payload: bytes) -> bytes:
        return hmac.new(self._secret, payload, hashlib.sha256).digest()

    def issue(
        self,
        principal: str,
        operations: set[Operation] | frozenset[Operation],
        lifetime: int | None = None,
    ) -> Ticket:
        """Issue a ticket for ``principal`` covering ``operations``.

        ``lifetime`` is in logical ticks; ``None`` never expires.
        """
        if not operations:
            raise TicketError("a ticket must grant at least one operation")
        self._issued += 1
        ticket_id = hashlib.sha256(
            self._secret + f"tid:{self.name}:{self._issued}".encode()
        ).hexdigest()[:16]
        expires = None if lifetime is None else self._clock + lifetime
        draft = Ticket(
            ticket_id=ticket_id,
            principal=principal,
            operations=frozenset(operations),
            issued_at=self._clock,
            expires_at=expires,
            tag=b"",
        )
        return Ticket(
            ticket_id=draft.ticket_id,
            principal=draft.principal,
            operations=draft.operations,
            issued_at=draft.issued_at,
            expires_at=draft.expires_at,
            tag=self._tag(draft.payload_bytes()),
        )

    def revoke(self, ticket_id: str) -> None:
        """Revoke a ticket by ID; future verifications fail."""
        self._revoked.add(ticket_id)

    def verify(self, ticket: Ticket, required: Operation | None = None) -> None:
        """Raise :class:`TicketError` unless ``ticket`` is authentic, unexpired,
        unrevoked, and (when ``required`` is given) grants that operation."""
        if not hmac.compare_digest(self._tag(ticket.payload_bytes()), ticket.tag):
            raise TicketError("ticket tag mismatch: forged or corrupted")
        if ticket.ticket_id in self._revoked:
            raise TicketError(f"ticket {ticket.ticket_id} has been revoked")
        if ticket.expires_at is not None and self._clock > ticket.expires_at:
            raise TicketError(f"ticket {ticket.ticket_id} expired")
        if required is not None and not ticket.permits(required):
            raise TicketError(
                f"ticket {ticket.ticket_id} does not permit {required.value}"
            )

    def is_valid(self, ticket: Ticket, required: Operation | None = None) -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify(ticket, required)
        except TicketError:
            return False
        return True
