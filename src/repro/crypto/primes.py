"""Prime generation and primality testing.

The Pohlig-Hellman commutative cipher (paper §3) needs "a large prime p for
which p - 1 has a large prime factor" — i.e. a *safe prime* ``p = 2q + 1``
with ``q`` prime.  The one-way accumulator (§4.1) needs an RSA modulus
``n = p * q``.  Shamir sharing (§3.5) needs any prime larger than the values
being shared.  This module provides all three, plus Miller-Rabin testing.

Safe-prime generation is the most expensive operation in the whole library,
so :func:`safe_prime` keeps a small table of pre-verified safe primes at the
bit sizes used by tests and benchmarks; pass ``fresh=True`` to force a new
random one.
"""

from __future__ import annotations

from repro.crypto.rng import DeterministicRng, system_rng
from repro.errors import ParameterError

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
    307, 311, 313, 317, 331, 337, 347, 349,
]

# Pre-verified safe primes (p = 2q+1, q prime), generated once with this very
# module under fresh=True and checked with 64 Miller-Rabin rounds.  Keyed by
# bit size.  These keep test suites fast without weakening the protocol logic
# (the protocols are parametric in p).
_SAFE_PRIME_TABLE: dict[int, int] = {
    64: 14917292485657413179,
    128: 174158679509058713126999275137367365743,
    256: 111525767535012832528318988189880857310531517458634634927005609833870723312359,
    512: 7154908883566627705230758123451846792822839908235768415186991324913652223313848360422320280595170582502174993361480976845905031041058248705371177460279607,
}


def is_probable_prime(n: int, rounds: int = 40, rng=None) -> bool:
    """Miller-Rabin primality test.

    With ``rounds=40`` the error probability is below ``4**-40``; fixed small
    witnesses are additionally tried first so that small composites are
    rejected deterministically.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or system_rng()
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witness_finds_composite(a: int) -> bool:
        x = pow(a, d, n)
        if x in (1, n - 1):
            return False
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                return False
        return True

    # Deterministic witnesses first (correct for all n < 3.3e24).
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if a >= n - 1:
            break
        if witness_finds_composite(a):
            return False
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if witness_finds_composite(a):
            return False
    return True


def random_prime(bits: int, rng=None) -> int:
    """Return a random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ParameterError("a prime needs at least 2 bits")
    rng = rng or system_rng()
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def safe_prime(bits: int, rng=None, fresh: bool = False) -> int:
    """Return a safe prime ``p = 2q + 1`` with ``p`` having ``bits`` bits.

    By default returns a pre-verified table entry when one exists for the
    requested size (fast, constant).  ``fresh=True`` generates a brand-new
    random safe prime, which may take seconds at 512+ bits in pure Python.
    """
    if bits < 5:
        raise ParameterError("safe primes need at least 5 bits")
    if not fresh and bits in _SAFE_PRIME_TABLE:
        return _SAFE_PRIME_TABLE[bits]
    rng = rng or system_rng()
    while True:
        q = random_prime(bits - 1, rng=rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p, rng=rng):
            return p


def sophie_germain_pair(bits: int, rng=None, fresh: bool = False) -> tuple[int, int]:
    """Return ``(p, q)`` with ``p = 2q + 1`` both prime, ``p`` of ``bits`` bits."""
    p = safe_prime(bits, rng=rng, fresh=fresh)
    return p, (p - 1) // 2


def rsa_modulus(bits: int, rng=None) -> tuple[int, int, int]:
    """Return ``(n, p, q)`` with ``n = p*q`` an RSA-style modulus of ``bits`` bits.

    Used by the one-way accumulator (paper §4.1 eq. 8): the accumulator
    trusts whoever generated ``n`` to discard the factorization, which in
    the DLA setting is the credential authority.
    """
    if bits < 16:
        raise ParameterError("RSA modulus needs at least 16 bits")
    rng = rng or system_rng()
    half = bits // 2
    while True:
        p = random_prime(half, rng=rng)
        q = random_prime(bits - half, rng=rng)
        if p != q and (p * q).bit_length() == bits:
            return p * q, p, q


def prime_above(lower: int, rng=None) -> int:
    """Return a prime strictly greater than ``lower``.

    Shamir-based secure sum needs ``p >> a_i`` (paper §3.5); callers pass
    the largest conceivable secret and get a field big enough to avoid
    wrap-around.
    """
    if lower < 2:
        return 2
    candidate = lower + 1
    candidate |= 1  # next odd at or above lower + 1
    while not is_probable_prime(candidate, rng=rng):
        candidate += 2
    return candidate


def _verify_table() -> None:
    """Self-check of the pre-verified safe-prime table (used by tests)."""
    rng = DeterministicRng(b"table-check")
    for bits, p in _SAFE_PRIME_TABLE.items():
        if p.bit_length() != bits:
            raise ParameterError(f"table entry for {bits} bits has wrong size")
        if not is_probable_prime(p, rounds=64, rng=rng):
            raise ParameterError(f"table entry for {bits} bits is composite")
        if not is_probable_prime((p - 1) // 2, rounds=64, rng=rng):
            raise ParameterError(f"table entry for {bits} bits is not safe")
