"""Schnorr signatures over a safe-prime group.

The DLA design needs plain signatures in several places the paper mentions
in passing: tickets signed by the credential authority, threshold signatures
on audit reports (built on these in :mod:`repro.crypto.threshold`), and the
blind variant (:mod:`repro.crypto.blind`) behind the e-coin evidence pieces.

Standard Fiat-Shamir Schnorr: key ``y = g^x``, signature on ``msg`` is
``(c, s)`` with ``c = H(g^k || y || msg)`` and ``s = k - c*x mod q``;
verification recomputes ``R' = g^s * y^c`` and checks ``H(R' || y || msg) == c``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto import primes
from repro.crypto.modmath import find_subgroup_generator
from repro.crypto.rng import system_rng
from repro.errors import ParameterError, SignatureError

__all__ = ["SchnorrGroup", "SchnorrKeyPair", "SchnorrSignature", "SchnorrSigner"]


@dataclass(frozen=True)
class SchnorrGroup:
    """Public group parameters ``(p, q, g)``; ``g`` has order ``q`` in ``Z_p^*``."""

    p: int
    q: int
    g: int

    def __post_init__(self) -> None:
        if (self.p - 1) % self.q:
            raise ParameterError("q must divide p-1")
        if not 1 < self.g < self.p or pow(self.g, self.q, self.p) != 1:
            raise ParameterError("g is not an order-q element")

    @classmethod
    def generate(cls, bits: int = 256, rng=None) -> "SchnorrGroup":
        rng = rng or system_rng()
        p = primes.safe_prime(bits, rng=rng)
        q = (p - 1) // 2
        g = find_subgroup_generator(p, q, rng)
        return cls(p=p, q=q, g=g)

    def hash_to_scalar(self, *parts: bytes | int) -> int:
        """Fiat-Shamir hash of group elements / bytes into ``Z_q``."""
        h = hashlib.sha256()
        for part in parts:
            if isinstance(part, int):
                part = part.to_bytes((part.bit_length() + 8) // 8, "big")
            h.update(len(part).to_bytes(4, "big"))
            h.update(part)
        return int.from_bytes(h.digest(), "big") % self.q

    def random_scalar(self, rng) -> int:
        return rng.randrange(1, self.q)


@dataclass(frozen=True)
class SchnorrKeyPair:
    """Private ``x`` and public ``y = g^x mod p``."""

    group: SchnorrGroup
    x: int
    y: int

    @classmethod
    def generate(cls, group: SchnorrGroup, rng=None) -> "SchnorrKeyPair":
        rng = rng or system_rng()
        x = group.random_scalar(rng)
        return cls(group=group, x=x, y=pow(group.g, x, group.p))

    @property
    def public(self) -> int:
        return self.y


@dataclass(frozen=True)
class SchnorrSignature:
    """A Fiat-Shamir Schnorr signature ``(c, s)``."""

    c: int
    s: int


class SchnorrSigner:
    """Sign/verify interface bound to a group."""

    def __init__(self, group: SchnorrGroup, rng=None) -> None:
        self.group = group
        self._rng = rng or system_rng()

    def sign(self, key: SchnorrKeyPair, message: bytes) -> SchnorrSignature:
        """Produce a signature on ``message`` with private key ``key.x``."""
        g = self.group
        k = g.random_scalar(self._rng)
        r = pow(g.g, k, g.p)
        c = g.hash_to_scalar(r, key.y, message)
        s = (k - c * key.x) % g.q
        return SchnorrSignature(c=c, s=s)

    def verify(self, public_y: int, message: bytes, sig: SchnorrSignature) -> bool:
        """Return True iff ``sig`` is a valid signature on ``message`` by ``public_y``."""
        g = self.group
        if not (0 <= sig.c < g.q and 0 <= sig.s < g.q):
            return False
        r_prime = (pow(g.g, sig.s, g.p) * pow(public_y, sig.c, g.p)) % g.p
        return g.hash_to_scalar(r_prime, public_y, message) == sig.c

    def require_valid(self, public_y: int, message: bytes, sig: SchnorrSignature) -> None:
        """Raise :class:`SignatureError` unless the signature verifies."""
        if not self.verify(public_y, message, sig):
            raise SignatureError("Schnorr signature failed verification")
