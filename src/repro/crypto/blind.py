"""Blind Schnorr signatures — the e-coin engine for evidence pieces.

Paper §4.2 builds anonymous-yet-authenticated DLA membership on an e-coin
scheme (ref [30]): the credential authority signs a node's logging/auditing
token *blindly*, so the token is unforgeable (only the authority can sign)
yet unlinkable (the authority cannot connect the token it later sees to the
signing session — anonymity).  We implement the classic blind Schnorr
protocol:

  signer:  k ← Z_q,  R = g^k                          → user
  user:    α, β ← Z_q,  R' = R · g^α · y^β,
           c' = H(R' ‖ y ‖ msg),  c = c' - β           → signer
  signer:  s = k - c·x                                 → user
  user:    s' = s + α;  signature is (c', s')

The unblinded ``(c', s')`` verifies exactly like an ordinary Schnorr
signature, and the signer's view ``(R, c, s)`` is statistically independent
of ``(c', s')``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.schnorr import SchnorrGroup, SchnorrKeyPair, SchnorrSignature, SchnorrSigner
from repro.crypto.rng import system_rng
from repro.errors import ProtocolAbortError

__all__ = ["BlindSigner", "BlindingClient", "BlindSession"]


@dataclass
class BlindSession:
    """Signer-side state for one blind-signature issuance."""

    k: int
    r: int
    used: bool = False


class BlindSigner:
    """The credential authority's side of blind issuance.

    ``precompute`` (a :class:`~repro.precompute.PrecomputeManager`) lets
    the signer draw its nonce commitment ``(k, g^k)`` from a pool filled
    while the authority is idle — issuance then costs no exponentiation
    online.  Without a manager the nonce is computed inline, unchanged.
    """

    def __init__(self, group: SchnorrGroup, key: SchnorrKeyPair, rng=None,
                 precompute=None) -> None:
        self.group = group
        self.key = key
        self._rng = rng or system_rng()
        self._precompute = precompute

    @property
    def public_y(self) -> int:
        return self.key.y

    def start(self) -> tuple[BlindSession, int]:
        """Phase 1: commit to a nonce; send ``R = g^k`` to the user."""
        g = self.group
        if self._precompute is not None:
            k, r = self._precompute.exp_pair(g.p, g.q, g.g, "signer", self._rng)
        else:
            k = g.random_scalar(self._rng)
            r = pow(g.g, k, g.p)
        return BlindSession(k=k, r=r), r

    def respond(self, session: BlindSession, blinded_challenge: int) -> int:
        """Phase 3: answer the blinded challenge with ``s = k - c·x mod q``."""
        if session.used:
            raise ProtocolAbortError("blind-signature session already consumed")
        session.used = True
        return (session.k - blinded_challenge * self.key.x) % self.group.q


class BlindingClient:
    """The joining node's side: blind, receive, unblind, verify."""

    def __init__(self, group: SchnorrGroup, signer_public_y: int, rng=None,
                 precompute=None) -> None:
        self.group = group
        self.signer_public_y = signer_public_y
        self._rng = rng or system_rng()
        self._precompute = precompute
        self._alpha: int | None = None
        self._beta: int | None = None
        self._c_prime: int | None = None

    def challenge(self, signer_r: int, message: bytes) -> int:
        """Phase 2: blind the signer's nonce commitment and derive the challenge."""
        g = self.group
        if self._precompute is not None:
            # Both blinding pairs are message-independent: (α, g^α) and
            # (β, y^β) come from per-base pools, leaving only two
            # multiplications online.
            self._alpha, g_alpha = self._precompute.exp_pair(
                g.p, g.q, g.g, "client-alpha", self._rng
            )
            self._beta, y_beta = self._precompute.exp_pair(
                g.p, g.q, self.signer_public_y, "client-beta", self._rng
            )
        else:
            self._alpha = g.random_scalar(self._rng)
            self._beta = g.random_scalar(self._rng)
            g_alpha = pow(g.g, self._alpha, g.p)
            y_beta = pow(self.signer_public_y, self._beta, g.p)
        r_prime = (signer_r * g_alpha * y_beta) % g.p
        self._c_prime = g.hash_to_scalar(r_prime, self.signer_public_y, message)
        # Sign convention here is s = k - c·x with verification
        # R' = g^s · y^c, so the blinded challenge is c = c' - β:
        #   g^(s+α) · y^(c') = R · g^α · y^(c' - c) = R · g^α · y^β = R'.
        return (self._c_prime - self._beta) % g.q

    def unblind(self, signer_s: int) -> SchnorrSignature:
        """Phase 4: unblind the response into a standard Schnorr signature."""
        if self._alpha is None or self._c_prime is None:
            raise ProtocolAbortError("challenge() must run before unblind()")
        s_prime = (signer_s + self._alpha) % self.group.q
        return SchnorrSignature(c=self._c_prime, s=s_prime)


def issue_blind_signature(
    signer: BlindSigner, message: bytes, rng=None
) -> SchnorrSignature:
    """Convenience one-shot: run the full 4-move protocol locally.

    Used by tests and by in-process simulations where both roles live in
    the same address space; networked deployments drive the two classes
    over a transport instead.
    """
    client = BlindingClient(signer.group, signer.public_y, rng=rng)
    session, r = signer.start()
    c = client.challenge(r, message)
    s = signer.respond(session, c)
    sig = client.unblind(s)
    SchnorrSigner(signer.group).require_valid(signer.public_y, message, sig)
    return sig
