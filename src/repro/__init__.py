"""repro — Confidential Distributed Logging and Auditing (DLA).

A from-scratch reproduction of Shen, Liu & Zhao, *On the Confidential
Auditing of Distributed Computing Systems* (ICDCS 2004): a TTP-cluster
logging/auditing service in which no single node holds a complete log
record, auditing queries evaluate through relaxed secure multiparty
computation, and cluster membership is anonymous-yet-accountable through
an e-coin evidence chain.

Quickstart::

    from repro import ConfidentialAuditingService, ApplicationNode, Auditor
    from repro.logstore import paper_table1_schema, paper_fragment_plan

    schema = paper_table1_schema()
    service = ConfidentialAuditingService(schema, paper_fragment_plan(schema))
    node = ApplicationNode.register("U1", service)
    node.log_values({"Tid": "T1", "C1": 42, "protocl": "UDP"})
    auditor = Auditor("aud", service)
    report = auditor.audited_query("C1 > 30 and protocl = 'UDP'")

Subpackages: :mod:`repro.crypto` (commutative cipher, secret sharing,
accumulators, blind/threshold signatures, tickets), :mod:`repro.net`
(simulated + TCP transports), :mod:`repro.smc` (relaxed-SMC primitives),
:mod:`repro.logstore` (fragmentation, ACLs, integrity), :mod:`repro.audit`
(query language + confidentiality metrics), :mod:`repro.cluster`
(evidence-chain membership, agreement), :mod:`repro.core` (the service
facade), :mod:`repro.baseline` (centralized + GMW comparators),
:mod:`repro.workloads` (synthetic scenarios).
"""

from repro._version import __version__
from repro.core import (
    ApplicationNode,
    AuditReport,
    Auditor,
    AtomicEvent,
    ConfidentialAuditingService,
    Transaction,
    TransactionType,
)
from repro.errors import ReproError

__all__ = [
    "__version__",
    "ReproError",
    "ConfidentialAuditingService",
    "AuditReport",
    "ApplicationNode",
    "Auditor",
    "AtomicEvent",
    "Transaction",
    "TransactionType",
]
