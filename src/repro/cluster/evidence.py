"""Undeniable evidence pieces and the membership evidence chain (Figure 6).

"When P_x and P_y agree to let P_x become a new member of the DLA cluster,
a piece of unforgeable evidence will be created between them ... The
service terms can be bound into the new piece of evidence between P_x and
P_y using the r-binding and x-binding techniques."

An :class:`EvidencePiece` binds, under *both* parties' pseudonym
signatures:

* the inviter's and invitee's audit tokens (authority-minted, anonymous);
* the negotiated policy proposal (PP) and service commitment (SC) —
  **r-binding**: the terms are committed with a Pedersen commitment whose
  opening both parties hold, so neither can later claim different terms;
* the invitee's identity escrow commitment — **x-binding**: misconduct
  forces the opening, deanonymizing exactly the misbehaving party.

The chain property (Figure 6): evidence pieces form a linked list
``e_1 → e_2 → ...`` where the invitee of ``e_i`` is the inviter of
``e_{i+1}``.  Invitation *authority transfers* with each piece — a node
that invites twice produces two pieces with the same inviter and index,
a contradiction any verifier can detect (:func:`find_double_invitations`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.cluster.authority import AuditToken, CredentialAuthority, NodeCredentials
from repro.crypto.commitments import Commitment, PedersenCommitter
from repro.crypto.schnorr import SchnorrSignature, SchnorrSigner
from repro.errors import EvidenceError

__all__ = [
    "ServiceTerms",
    "EvidencePiece",
    "EvidenceChain",
    "make_evidence",
    "verify_evidence",
    "find_double_invitations",
]


def _int_bytes(value: int) -> bytes:
    return value.to_bytes((value.bit_length() + 8) // 8, "big")


@dataclass(frozen=True)
class ServiceTerms:
    """The negotiated logging/auditing attributes of a membership.

    ``proposal`` is P_y's PP (services requested / policies imposed);
    ``commitment`` is P_x's SC ("the list of services that P_x is willing
    to provide").
    """

    proposal: tuple[str, ...]
    commitment: tuple[str, ...]

    def canonical_bytes(self) -> bytes:
        body = {"pp": list(self.proposal), "sc": list(self.commitment)}
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class EvidencePiece:
    """One unforgeable link of the membership chain."""

    index: int                      # position in the chain (1-based)
    inviter_token: AuditToken
    invitee_token: AuditToken
    terms: ServiceTerms
    terms_commitment: Commitment    # r-binding anchor
    terms_opening: int              # held by both parties (kept with the piece here)
    invitee_escrow: Commitment      # x-binding anchor
    inviter_signature: SchnorrSignature
    invitee_signature: SchnorrSignature

    def signed_body(self) -> bytes:
        """The bytes both signatures cover (everything but the signatures)."""
        body = {
            "index": self.index,
            "inviter": format(self.inviter_token.pseudonym, "x"),
            "invitee": format(self.invitee_token.pseudonym, "x"),
            "terms_commitment": format(self.terms_commitment.value, "x"),
            "escrow": format(self.invitee_escrow.value, "x"),
        }
        return b"dla-evidence:" + json.dumps(
            body, sort_keys=True, separators=(",", ":")
        ).encode()


def make_evidence(
    authority: CredentialAuthority,
    inviter: NodeCredentials,
    invitee: NodeCredentials,
    terms: ServiceTerms,
    index: int,
    rng=None,
) -> EvidencePiece:
    """Create and cross-sign one evidence piece (both parties in-process).

    The networked three-phase creation lives in :mod:`repro.cluster.join`;
    this helper is the trusted-path equivalent used by tests and by chain
    bootstrapping (the founding node's self-evidence).
    """
    committer = PedersenCommitter(authority.pedersen, rng)
    terms_commitment, opening = committer.commit(terms.canonical_bytes())
    draft = EvidencePiece(
        index=index,
        inviter_token=inviter.token,
        invitee_token=invitee.token,
        terms=terms,
        terms_commitment=terms_commitment,
        terms_opening=opening,
        invitee_escrow=invitee.identity_commitment,
        inviter_signature=SchnorrSignature(0, 0),
        invitee_signature=SchnorrSignature(0, 0),
    )
    signer = SchnorrSigner(authority.group, rng)
    body = draft.signed_body()
    return EvidencePiece(
        index=draft.index,
        inviter_token=draft.inviter_token,
        invitee_token=draft.invitee_token,
        terms=draft.terms,
        terms_commitment=draft.terms_commitment,
        terms_opening=draft.terms_opening,
        invitee_escrow=draft.invitee_escrow,
        inviter_signature=signer.sign(inviter.pseudonym_key, body),
        invitee_signature=signer.sign(invitee.pseudonym_key, body),
    )


def verify_evidence(
    authority: CredentialAuthority, piece: EvidencePiece
) -> None:
    """Figure 7's ``f(..., e) = 1``: full validity check of one piece.

    Raises :class:`EvidenceError` with the failing aspect.
    """
    if not authority.verify_token(piece.inviter_token):
        raise EvidenceError(f"evidence {piece.index}: inviter token invalid")
    if not authority.verify_token(piece.invitee_token):
        raise EvidenceError(f"evidence {piece.index}: invitee token invalid")
    committer = PedersenCommitter(authority.pedersen)
    if not committer.verify(
        piece.terms_commitment, piece.terms.canonical_bytes(), piece.terms_opening
    ):
        raise EvidenceError(
            f"evidence {piece.index}: service terms do not match their "
            "r-binding commitment"
        )
    signer = authority.signer()
    body = piece.signed_body()
    if not signer.verify(piece.inviter_token.pseudonym, body, piece.inviter_signature):
        raise EvidenceError(f"evidence {piece.index}: inviter signature invalid")
    if not signer.verify(piece.invitee_token.pseudonym, body, piece.invitee_signature):
        raise EvidenceError(f"evidence {piece.index}: invitee signature invalid")


class EvidenceChain:
    """The cluster's membership ledger: a verified list of evidence pieces."""

    def __init__(self, authority: CredentialAuthority) -> None:
        self.authority = authority
        self.pieces: list[EvidencePiece] = []

    def append(self, piece: EvidencePiece) -> None:
        """Verify and append; enforces linkage and authority transfer."""
        verify_evidence(self.authority, piece)
        expected_index = len(self.pieces) + 1
        if piece.index != expected_index:
            raise EvidenceError(
                f"evidence index {piece.index} out of order "
                f"(expected {expected_index})"
            )
        if self.pieces:
            last = self.pieces[-1]
            if piece.inviter_token.pseudonym != last.invitee_token.pseudonym:
                raise EvidenceError(
                    "invitation authority violation: inviter of piece "
                    f"{piece.index} is not the latest member"
                )
        self.pieces.append(piece)

    @property
    def members(self) -> list[int]:
        """Pseudonyms of all members in join order (founder first)."""
        if not self.pieces:
            return []
        out = [self.pieces[0].inviter_token.pseudonym]
        out.extend(p.invitee_token.pseudonym for p in self.pieces)
        return out

    @property
    def current_inviter(self) -> int | None:
        """The only pseudonym currently holding invitation authority."""
        if not self.pieces:
            return None
        return self.pieces[-1].invitee_token.pseudonym

    def verify_all(self) -> None:
        """Re-verify the entire chain (e.g. on receipt from a peer)."""
        replay = EvidenceChain(self.authority)
        for piece in self.pieces:
            replay.append(piece)


def find_double_invitations(pieces: list[EvidencePiece]) -> list[int]:
    """Detect authority-transfer violations across *any* collection of
    evidence pieces (including ones a cheater tried to keep off-ledger).

    Returns the pseudonyms that appear as inviter in more than one piece —
    "P_y can no longer invite other new nodes ... Doing so will subject
    P_y to exposure of its true identity and its misconduct."
    """
    seen: dict[int, int] = {}
    cheaters = []
    for piece in pieces:
        pseudonym = piece.inviter_token.pseudonym
        seen[pseudonym] = seen.get(pseudonym, 0) + 1
    for pseudonym, count in seen.items():
        if count > 1:
            cheaters.append(pseudonym)
    return sorted(cheaters)
