"""The three-way join handshake (paper Figure 7).

"In the first phase, P_y sends to P_x a policy proposal (PP) to invite P_x
to become a new DLA node.  In the second phase, P_x acknowledges P_y by
sending back a service commitment (SC).  In the third phase, P_y passes
the new piece of evidence to inform P_x that it becomes a legitimate DLA
member, and P_y also passes the authority to invite other new nodes."

Message flow over the transport::

    P_y --- join.pp  {proposal, inviter token}            ---> P_x
    P_x --- join.sc  {commitment list, invitee token,
                      escrow commitment, invitee sig}     ---> P_y
    P_y --- join.re  {complete evidence piece,
                      authority-transfer flag}            ---> P_x

Both sides verify tokens on receipt (``g(t) = 1``) and P_x verifies the
finished evidence (``f(...) = 1``) before accepting membership.  The
inviter marks its authority as spent when it emits ``join.re`` — inviting
again afterwards is the Figure 6 misconduct that
:func:`~repro.cluster.evidence.find_double_invitations` exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.authority import CredentialAuthority, NodeCredentials, AuditToken
from repro.cluster.evidence import (
    EvidencePiece,
    ServiceTerms,
    verify_evidence,
)
from repro.crypto.commitments import Commitment, PedersenCommitter
from repro.crypto.schnorr import SchnorrSignature, SchnorrSigner
from repro.errors import EvidenceError, MembershipError
from repro.net.message import Message

__all__ = ["InviterNode", "InviteeNode", "run_join_handshake"]


def _sig_to_wire(sig: SchnorrSignature) -> dict:
    return {"c": sig.c, "s": sig.s}


def _sig_from_wire(data: dict) -> SchnorrSignature:
    return SchnorrSignature(c=data["c"], s=data["s"])


def _token_to_wire(token: AuditToken) -> dict:
    return {"pseudonym": token.pseudonym, "sig": _sig_to_wire(token.signature)}


def _token_from_wire(data: dict) -> AuditToken:
    return AuditToken(pseudonym=data["pseudonym"], signature=_sig_from_wire(data["sig"]))


@dataclass
class _InviterState:
    proposal: tuple[str, ...] = ()
    invitee_id: str | None = None
    evidence: EvidencePiece | None = None
    authority_spent: bool = False


@dataclass
class _InviteeState:
    evidence: EvidencePiece | None = None
    accepted: bool = False
    pending_sc: dict = field(default_factory=dict)


class InviterNode:
    """P_y: holds current invitation authority, drives PP and RE phases."""

    def __init__(
        self,
        node_id: str,
        creds: NodeCredentials,
        authority: CredentialAuthority,
        chain_index: int,
        rng=None,
    ) -> None:
        self.node_id = node_id
        self.creds = creds
        self.authority = authority
        self.chain_index = chain_index
        self._rng = rng
        self.state = _InviterState()

    def invite(self, transport, invitee_id: str, proposal: list[str]) -> None:
        """Phase 1: send the policy proposal."""
        if self.state.authority_spent:
            raise MembershipError(
                f"{self.node_id} already transferred its invitation authority"
            )
        self.state.proposal = tuple(proposal)
        self.state.invitee_id = invitee_id
        transport.send(
            Message(
                src=self.node_id,
                dst=invitee_id,
                kind="join.pp",
                payload={
                    "proposal": list(proposal),
                    "inviter_token": _token_to_wire(self.creds.token),
                    "index": self.chain_index,
                },
            )
        )

    def handle(self, msg: Message, transport) -> None:
        if msg.kind != "join.sc":
            raise MembershipError(f"inviter got unexpected {msg.kind!r}")
        self._on_service_commitment(msg, transport)

    def _on_service_commitment(self, msg: Message, transport) -> None:
        """Phase 3: assemble, counter-sign and hand over the evidence."""
        payload = msg.payload
        invitee_token = _token_from_wire(payload["invitee_token"])
        if not self.authority.verify_token(invitee_token):
            raise EvidenceError("invitee token failed g(t)=1 verification")
        terms = ServiceTerms(
            proposal=self.state.proposal,
            commitment=tuple(payload["commitment"]),
        )
        committer = PedersenCommitter(self.authority.pedersen, self._rng)
        terms_commitment, opening = committer.commit(terms.canonical_bytes())
        escrow = Commitment(payload["escrow"])
        draft = EvidencePiece(
            index=self.chain_index,
            inviter_token=self.creds.token,
            invitee_token=invitee_token,
            terms=terms,
            terms_commitment=terms_commitment,
            terms_opening=opening,
            invitee_escrow=escrow,
            inviter_signature=SchnorrSignature(0, 0),
            invitee_signature=SchnorrSignature(0, 0),
        )
        signer = SchnorrSigner(self.authority.group, self._rng)
        body = draft.signed_body()
        inviter_sig = signer.sign(self.creds.pseudonym_key, body)
        self.state.authority_spent = True
        transport.send(
            Message(
                src=self.node_id,
                dst=msg.src,
                kind="join.re",
                payload={
                    "index": draft.index,
                    "inviter_token": _token_to_wire(draft.inviter_token),
                    "invitee_token": _token_to_wire(draft.invitee_token),
                    "proposal": list(terms.proposal),
                    "commitment": list(terms.commitment),
                    "terms_commitment": draft.terms_commitment.value,
                    "terms_opening": draft.terms_opening,
                    "escrow": draft.invitee_escrow.value,
                    "inviter_sig": _sig_to_wire(inviter_sig),
                    "authority_transferred": True,
                },
            )
        )


class InviteeNode:
    """P_x: answers PP with SC, verifies and counter-signs the evidence."""

    def __init__(
        self,
        node_id: str,
        creds: NodeCredentials,
        authority: CredentialAuthority,
        services: list[str],
        rng=None,
    ) -> None:
        self.node_id = node_id
        self.creds = creds
        self.authority = authority
        self.services = list(services)
        self._rng = rng
        self.state = _InviteeState()

    def handle(self, msg: Message, transport) -> None:
        if msg.kind == "join.pp":
            self._on_policy_proposal(msg, transport)
        elif msg.kind == "join.re":
            self._on_evidence(msg, transport)
        else:
            raise MembershipError(f"invitee got unexpected {msg.kind!r}")

    def _on_policy_proposal(self, msg: Message, transport) -> None:
        """Phase 2: verify the inviter's token, send the service commitment."""
        inviter_token = _token_from_wire(msg.payload["inviter_token"])
        if not self.authority.verify_token(inviter_token):
            raise EvidenceError("inviter token failed g(t)=1 verification")
        transport.send(
            Message(
                src=self.node_id,
                dst=msg.src,
                kind="join.sc",
                payload={
                    "commitment": self.services,
                    "invitee_token": _token_to_wire(self.creds.token),
                    "escrow": self.creds.identity_commitment.value,
                },
            )
        )

    def _on_evidence(self, msg: Message, transport) -> None:
        payload = msg.payload
        terms = ServiceTerms(
            proposal=tuple(payload["proposal"]),
            commitment=tuple(payload["commitment"]),
        )
        if tuple(payload["commitment"]) != tuple(self.services):
            raise EvidenceError("inviter altered the service commitment")
        draft = EvidencePiece(
            index=payload["index"],
            inviter_token=_token_from_wire(payload["inviter_token"]),
            invitee_token=_token_from_wire(payload["invitee_token"]),
            terms=terms,
            terms_commitment=Commitment(payload["terms_commitment"]),
            terms_opening=payload["terms_opening"],
            invitee_escrow=Commitment(payload["escrow"]),
            inviter_signature=_sig_from_wire(payload["inviter_sig"]),
            invitee_signature=SchnorrSignature(0, 0),
        )
        signer = SchnorrSigner(self.authority.group, self._rng)
        body = draft.signed_body()
        if not signer.verify(
            draft.inviter_token.pseudonym, body, draft.inviter_signature
        ):
            raise EvidenceError("inviter signature on evidence invalid")
        invitee_sig = signer.sign(self.creds.pseudonym_key, body)
        piece = EvidencePiece(
            index=draft.index,
            inviter_token=draft.inviter_token,
            invitee_token=draft.invitee_token,
            terms=draft.terms,
            terms_commitment=draft.terms_commitment,
            terms_opening=draft.terms_opening,
            invitee_escrow=draft.invitee_escrow,
            inviter_signature=draft.inviter_signature,
            invitee_signature=invitee_sig,
        )
        verify_evidence(self.authority, piece)
        self.state.evidence = piece
        self.state.accepted = bool(payload["authority_transferred"])


def run_join_handshake(
    net,
    authority: CredentialAuthority,
    inviter_id: str,
    inviter_creds: NodeCredentials,
    invitee_id: str,
    invitee_creds: NodeCredentials,
    proposal: list[str],
    services: list[str],
    chain_index: int,
    rng=None,
) -> EvidencePiece:
    """Drive the full Figure 7 handshake on a simulated network.

    Returns the cross-signed evidence piece held by the new member.
    """
    inviter = InviterNode(inviter_id, inviter_creds, authority, chain_index, rng)
    invitee = InviteeNode(invitee_id, invitee_creds, authority, services, rng)
    net.register(inviter_id, inviter.handle)
    net.register(invitee_id, invitee.handle)
    inviter.invite(net, invitee_id, proposal)
    net.run()
    if invitee.state.evidence is None or not invitee.state.accepted:
        raise MembershipError("join handshake did not complete")
    return invitee.state.evidence
