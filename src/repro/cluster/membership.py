"""Cluster membership management over the evidence chain (Figure 6).

:class:`DlaMembership` is the cluster-level view: the founder, the evidence
chain, who currently holds invitation authority, and the misconduct
workflow (detect double invitation → demand identity-escrow opening →
expose the cheater's real identity through the credential authority).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.authority import CredentialAuthority, NodeCredentials
from repro.cluster.evidence import (
    EvidenceChain,
    EvidencePiece,
    ServiceTerms,
    find_double_invitations,
    make_evidence,
)
from repro.errors import EvidenceError, MembershipError

__all__ = ["DlaMembership", "MisconductReport"]


@dataclass(frozen=True)
class MisconductReport:
    """Outcome of arbitrating a double-invitation accusation."""

    cheater_pseudonym: int
    exposed_real_id: str | None   # None if the cheater refused to open
    refused_to_open: bool


class DlaMembership:
    """The DLA cluster's membership ledger and its rules."""

    def __init__(self, authority: CredentialAuthority, founder: NodeCredentials) -> None:
        self.authority = authority
        self.founder = founder
        self.chain = EvidenceChain(authority)
        self._by_pseudonym: dict[int, str] = {founder.pseudonym: "member-1"}

    @property
    def size(self) -> int:
        return 1 + len(self.chain.pieces)

    @property
    def current_inviter_pseudonym(self) -> int:
        latest = self.chain.current_inviter
        return latest if latest is not None else self.founder.pseudonym

    def admit(self, piece: EvidencePiece) -> None:
        """Admit a member through a verified evidence piece.

        Enforces that the piece's inviter is the current authority holder.
        """
        if piece.inviter_token.pseudonym != self.current_inviter_pseudonym:
            raise MembershipError(
                "evidence inviter does not hold the invitation authority"
            )
        self.chain.append(piece)
        self._by_pseudonym[piece.invitee_token.pseudonym] = f"member-{self.size}"

    def admit_direct(
        self,
        inviter: NodeCredentials,
        invitee: NodeCredentials,
        proposal: list[str],
        services: list[str],
        rng=None,
    ) -> EvidencePiece:
        """Trusted-path admission (both credential sets in-process)."""
        terms = ServiceTerms(proposal=tuple(proposal), commitment=tuple(services))
        piece = make_evidence(
            self.authority,
            inviter,
            invitee,
            terms,
            index=len(self.chain.pieces) + 1,
            rng=rng,
        )
        self.admit(piece)
        return piece

    def is_member(self, pseudonym: int) -> bool:
        return pseudonym in self._by_pseudonym

    def verify(self) -> None:
        """Re-verify the whole chain (a node joining late does this)."""
        self.chain.verify_all()

    # -- misconduct ----------------------------------------------------------

    def audit_for_double_invitation(
        self, extra_pieces: list[EvidencePiece]
    ) -> list[int]:
        """Detect inviters who spent their authority more than once.

        ``extra_pieces`` are pieces presented by third parties (a cheater's
        counterparties) that are not on the canonical chain.
        """
        return find_double_invitations(list(self.chain.pieces) + list(extra_pieces))

    def arbitrate(
        self,
        cheater_pseudonym: int,
        escrow_pieces: list[EvidencePiece],
        claimed_id: str | None,
        opening: int | None,
    ) -> MisconductReport:
        """Resolve an accusation: demand the escrow opening, verify it.

        The cheater's identity commitment is found in the evidence piece
        where it *joined* (it was the invitee).  A refusal (``opening is
        None``) is itself undeniable evidence of misconduct.
        """
        escrow = None
        for piece in escrow_pieces:
            if piece.invitee_token.pseudonym == cheater_pseudonym:
                escrow = piece.invitee_escrow
                break
        if escrow is None:
            raise EvidenceError(
                "no evidence piece carries the accused pseudonym's escrow"
            )
        if opening is None or claimed_id is None:
            return MisconductReport(
                cheater_pseudonym=cheater_pseudonym,
                exposed_real_id=None,
                refused_to_open=True,
            )
        if not self.authority.expose_identity(escrow, claimed_id, opening):
            raise EvidenceError(
                "escrow opening does not match the claimed identity"
            )
        return MisconductReport(
            cheater_pseudonym=cheater_pseudonym,
            exposed_real_id=claimed_id,
            refused_to_open=False,
        )
