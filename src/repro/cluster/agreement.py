"""Distributed majority agreement on auditing results (paper §2).

"DLA nodes use secure multiparty computations, threshold signature and
distributed majority agreement to provide trusted and reliable auditing."

A compromised DLA node could report a falsified query result; before a
result is released it passes one round of majority voting: every node
broadcasts the digest of the result it computed, every node tallies, and
the majority digest wins (ties fail).  The agreed digest is then
threshold-signed by ``k`` of the ``n`` nodes so the receiving user can
check a single cluster signature (:mod:`repro.crypto.threshold`).

The protocol is the crash/byzantine-lite form adequate for the paper's
honest-majority threat model — it is one broadcast round, not a full
consensus protocol (no leader, no view change); f < n/2 faulty reporters
are outvoted.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field

from repro.crypto.threshold import ThresholdKeyShare, ThresholdScheme
from repro.crypto.schnorr import SchnorrSignature
from repro.errors import AgreementError, ProtocolAbortError
from repro.net.message import Message
from repro.net.simnet import SimNetwork

__all__ = ["digest_result", "AgreementNode", "run_majority_agreement", "sign_agreed_result"]


def digest_result(value) -> str:
    """Canonical digest of an auditing result (JSON-serializable value)."""
    body = json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclass
class _AgreementState:
    votes: dict[str, str] = field(default_factory=dict)
    decided: str | None = None
    agreed: bool = False


class AgreementNode:
    """One DLA node's participation in a majority-agreement round."""

    def __init__(self, node_id: str, peers: list[str], local_digest: str) -> None:
        self.node_id = node_id
        self.peers = sorted(peers)
        self.local_digest = local_digest
        self.state = _AgreementState()
        self.state.votes[node_id] = local_digest

    def start(self, transport) -> None:
        for peer in self.peers:
            if peer == self.node_id:
                continue
            transport.send(
                Message(
                    src=self.node_id,
                    dst=peer,
                    kind="agree.vote",
                    payload={"digest": self.local_digest},
                )
            )
        self._maybe_decide()

    def handle(self, msg: Message, transport) -> None:
        if msg.kind != "agree.vote":
            raise ProtocolAbortError(f"unexpected message kind {msg.kind!r}")
        self.state.votes[msg.src] = msg.payload["digest"]
        self._maybe_decide()

    def _maybe_decide(self) -> None:
        if len(self.state.votes) < len(self.peers):
            return
        tally = Counter(self.state.votes.values())
        digest, count = tally.most_common(1)[0]
        if count * 2 > len(self.peers):
            self.state.decided = digest
            self.state.agreed = True
        else:
            self.state.decided = None
            self.state.agreed = False


def run_majority_agreement(
    local_digests: dict[str, str], net: SimNetwork | None = None
) -> tuple[str, dict[str, bool]]:
    """One agreement round over a simulated network.

    Parameters
    ----------
    local_digests:
        node id -> the digest that node locally computed.

    Returns
    -------
    (agreed_digest, per_node_agreement)

    Raises
    ------
    AgreementError
        If no strict majority exists.
    """
    peers = sorted(local_digests)
    net = net or SimNetwork()
    nodes = {
        node_id: AgreementNode(node_id, peers, digest)
        for node_id, digest in local_digests.items()
    }
    for node_id, node in nodes.items():
        net.register(node_id, node.handle)
    for node in nodes.values():
        node.start(net)
    net.run()

    decisions = {nid: n.state.decided for nid, n in nodes.items()}
    agreements = {nid: n.state.agreed for nid, n in nodes.items()}
    concluded = {d for d in decisions.values() if d is not None}
    if not concluded or len(concluded) > 1 or not all(agreements.values()):
        raise AgreementError(
            f"no majority agreement: votes {Counter(local_digests.values())}"
        )
    return concluded.pop(), agreements


def sign_agreed_result(
    scheme: ThresholdScheme,
    shares: list[ThresholdKeyShare],
    agreed_digest: str,
    rng=None,
) -> SchnorrSignature:
    """Threshold-sign an agreed digest with ``k`` of the cluster's shares."""
    if len(shares) < scheme.k:
        raise AgreementError(
            f"need {scheme.k} signer shares, got {len(shares)}"
        )
    return scheme.sign(shares, agreed_digest.encode("ascii"), rng=rng)
