"""Credential authority: anonymous-yet-verifiable DLA credentials (§4.2).

"After a node P_x is granted a logging/auditing token t from the credential
authority, it is given unforgeable authority to engage in the logging and
auditing services."

The token must be **unforgeable** (only the authority can mint one) yet
**anonymous** (the authority cannot link a token it later sees to the
issuance session).  Classic e-coin construction: the node generates a
*pseudonym* key pair, has the authority **blind-sign** the pseudonym's
public key, and thereafter acts under the pseudonym.  ``g(t) = 1``
(Figure 7's token check) is signature verification under the authority's
public key.

For accountability the node also deposits an *identity escrow*: a Pedersen
commitment to its real identity, stored inside every evidence piece it
signs (the x-binding of ref [30]).  Honest nodes never open it; proven
misconduct obliges opening, and refusing to open is itself the proof.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from repro.crypto.blind import BlindingClient, BlindSigner
from repro.crypto.commitments import Commitment, PedersenCommitter, PedersenParams
from repro.crypto.rng import system_rng
from repro.crypto.schnorr import (
    SchnorrGroup,
    SchnorrKeyPair,
    SchnorrSignature,
    SchnorrSigner,
)
from repro.errors import EvidenceError

__all__ = ["AuditToken", "NodeCredentials", "CredentialAuthority"]


def _int_bytes(value: int) -> bytes:
    return value.to_bytes((value.bit_length() + 8) // 8, "big")


@dataclass(frozen=True)
class AuditToken:
    """The anonymous logging/auditing token ``t``.

    ``pseudonym`` is the node's operating public key; ``signature`` is the
    authority's (blind-issued) Schnorr signature over it.
    """

    pseudonym: int
    signature: SchnorrSignature

    def message(self) -> bytes:
        return b"dla-token:" + _int_bytes(self.pseudonym)


@dataclass
class NodeCredentials:
    """Everything one node holds after enrolment.

    ``identity_opening`` is secret: the blinding that opens
    ``identity_commitment`` to the real identity.  It leaves the node only
    on proven misconduct.
    """

    real_id: str
    pseudonym_key: SchnorrKeyPair
    token: AuditToken
    identity_commitment: Commitment
    identity_opening: int

    @property
    def pseudonym(self) -> int:
        return self.pseudonym_key.y


class CredentialAuthority:
    """Mints anonymous audit tokens and arbitrates identity escrow."""

    def __init__(self, group: SchnorrGroup | None = None, rng=None,
                 precompute=None, telemetry=None) -> None:
        self._rng = rng or system_rng()
        # Cross-node tracing: enrolment work records a span at the
        # authority's node.  The span carries no identities — linking an
        # enrolment session to a real id is exactly what blind issuance
        # prevents, and telemetry must not reopen that channel.
        self.telemetry = telemetry
        self.group = group or SchnorrGroup.generate(256, self._rng)
        self.key = SchnorrKeyPair.generate(self.group, self._rng)
        self.pedersen = PedersenParams.generate(256, self._rng.spawn("pedersen"))
        self._signer = SchnorrSigner(self.group, self._rng)
        self._precompute = precompute
        self._blind = BlindSigner(
            self.group, self.key, self._rng.spawn("blind"), precompute=precompute
        )
        self.enrolled: set[str] = set()

    @property
    def public_key(self) -> int:
        return self.key.y

    # -- enrolment -------------------------------------------------------------

    def enroll(self, real_id: str, rng=None) -> NodeCredentials:
        """Full enrolment of a node: pseudonym, blind token, identity escrow.

        The authority authenticates ``real_id`` out-of-band (modeled by the
        call itself), blind-signs the pseudonym so it cannot link the token
        back, and records that ``real_id`` enrolled (it may enrol once).
        """
        if real_id in self.enrolled:
            raise EvidenceError(f"{real_id!r} already holds a token")
        rng = rng or self._rng.spawn(f"enroll:{real_id}")
        span_cm = (
            self.telemetry.node_span(
                "authority", "node.authority.enroll", {"node": "authority"}
            )
            if self.telemetry is not None
            else nullcontext(None)
        )
        with span_cm:
            pseudonym_key = SchnorrKeyPair.generate(self.group, rng)

            # Blind issuance: the authority signs without seeing the pseudonym.
            client = BlindingClient(
                self.group, self.key.y, rng=rng.spawn("blinding"),
                precompute=self._precompute,
            )
            session, commitment_r = self._blind.start()
            token_message = b"dla-token:" + _int_bytes(pseudonym_key.y)
            challenge = client.challenge(commitment_r, token_message)
            response = self._blind.respond(session, challenge)
            signature = client.unblind(response)
            token = AuditToken(pseudonym=pseudonym_key.y, signature=signature)
            if not self.verify_token(token):
                raise EvidenceError("blind issuance produced an invalid token")

            committer = PedersenCommitter(self.pedersen, rng.spawn("escrow"))
            identity_commitment, opening = committer.commit(real_id.encode("utf-8"))
        self.enrolled.add(real_id)
        return NodeCredentials(
            real_id=real_id,
            pseudonym_key=pseudonym_key,
            token=token,
            identity_commitment=identity_commitment,
            identity_opening=opening,
        )

    # -- verification ------------------------------------------------------------

    def verify_token(self, token: AuditToken) -> bool:
        """Figure 7's ``g(t) = 1`` check."""
        return self._signer.verify(self.key.y, token.message(), token.signature)

    def expose_identity(
        self, commitment: Commitment, claimed_id: str, opening: int
    ) -> bool:
        """Misconduct arbitration: does the escrow open to ``claimed_id``?"""
        committer = PedersenCommitter(self.pedersen)
        return committer.verify(commitment, claimed_id.encode("utf-8"), opening)

    def signer(self) -> SchnorrSigner:
        """A verifier bound to the authority's group (for evidence checks)."""
        return SchnorrSigner(self.group)
