"""DLA cluster runtime: anonymous membership, evidence chains, agreement.

Implements paper §4.2 and Figures 6-7: the credential authority mints
anonymous audit tokens (blind signatures); membership grows through the
three-way join handshake producing unforgeable cross-signed evidence
pieces; invitation authority transfers along the chain; double invitation
is detectable and deanonymizes the cheater through the identity escrow;
query results pass distributed majority agreement and threshold signing.
"""

from repro.cluster.agreement import (
    AgreementNode,
    digest_result,
    run_majority_agreement,
    sign_agreed_result,
)
from repro.cluster.authority import AuditToken, CredentialAuthority, NodeCredentials
from repro.cluster.evidence import (
    EvidenceChain,
    EvidencePiece,
    ServiceTerms,
    find_double_invitations,
    make_evidence,
    verify_evidence,
)
from repro.cluster.join import InviteeNode, InviterNode, run_join_handshake
from repro.cluster.membership import DlaMembership, MisconductReport

__all__ = [
    "CredentialAuthority",
    "AuditToken",
    "NodeCredentials",
    "ServiceTerms",
    "EvidencePiece",
    "EvidenceChain",
    "make_evidence",
    "verify_evidence",
    "find_double_invitations",
    "InviterNode",
    "InviteeNode",
    "run_join_handshake",
    "DlaMembership",
    "MisconductReport",
    "digest_result",
    "AgreementNode",
    "run_majority_agreement",
    "sign_agreed_result",
]
