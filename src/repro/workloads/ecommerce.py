"""E-commerce / B2B transaction workload (paper §2's motivating domain).

Generates multi-party order transactions in the paper's Table 1 shape:
each transaction produces a ``place`` event at the buyer and a ``confirm``
(or ``settle``) event at the seller, with amounts in C2, volume codes in
C1 and business labels in C3.  :func:`paper_table1_rows` reproduces the
exact five rows of Table 1 for the table-regeneration experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.transaction import AtomicEvent, Transaction, TransactionType
from repro.crypto.rng import DeterministicRng

__all__ = [
    "paper_table1_rows",
    "ORDER_TYPE",
    "EcommerceWorkload",
]

ORDER_TYPE = TransactionType(
    ttn="order",
    expected_events=("place", "confirm"),
    description="two-party purchase order: buyer places, seller confirms",
)

SETTLEMENT_TYPE = TransactionType(
    ttn="settlement",
    expected_events=("invoice", "pay", "settle"),
    description="three-step B2B settlement",
)


def paper_table1_rows() -> list[dict]:
    """The exact attribute rows of the paper's Table 1 (glsn excluded —
    the allocator reproduces those)."""
    return [
        {
            "Time": "20:18:35/05/12/20", "id": "U1", "protocl": "UDP",
            "Tid": "T1100265", "C1": 20, "C2": "23.45", "C3": "signature",
        },
        {
            "Time": "20:20:35/05/12/20", "id": "U2", "protocl": "UDP",
            "Tid": "T1100265", "C1": 34, "C2": "345.11", "C3": "evidence.",
        },
        {
            "Time": "20:23:35/05/12/20", "id": "U1", "protocl": "UDP",
            "Tid": "T1100267", "C1": 45, "C2": "235.00", "C3": "bank",
        },
        {
            "Time": "20:23:38/05/12/20", "id": "U2", "protocl": "TCP",
            "Tid": "T1100265", "C1": 18, "C2": "45.02", "C3": "salary",
        },
        {
            "Time": "20:25:35/05/12/20", "id": "U3", "protocl": "TCP",
            "Tid": "T1100267", "C1": 53, "C2": "678.75", "C3": "account",
        },
    ]


@dataclass
class EcommerceWorkload:
    """Parameterized stream of order transactions.

    Parameters
    ----------
    users:
        Application node ids (buyers and sellers drawn from here).
    seed:
        Deterministic stream seed.
    """

    users: tuple[str, ...] = ("U1", "U2", "U3")
    seed: int = 7

    def __post_init__(self) -> None:
        self._rng = DeterministicRng(f"ecommerce:{self.seed}")
        self._counter = 1100265  # Table 1's first Tid number

    def _next_tsn(self) -> str:
        tsn = f"T{self._counter}"
        self._counter += 1
        return tsn

    def _timestamp(self, step: int) -> str:
        base = 20 * 3600 + 18 * 60 + 35 + 13 * step
        h, rem = divmod(base % 86400, 3600)
        m, s = divmod(rem, 60)
        return f"{h:02d}:{m:02d}:{s:02d}/05/12/20"

    def transactions(self, count: int) -> list[Transaction]:
        """Generate ``count`` well-formed order transactions."""
        out = []
        for i in range(count):
            buyer = self._rng.choice(self.users)
            seller = self._rng.choice([u for u in self.users if u != buyer])
            tsn = self._next_tsn()
            amount = self._rng.randint(100, 99999) / 100
            volume = self._rng.randint(1, 99)
            protocol = self._rng.choice(["UDP", "TCP"])
            t = Transaction(tsn=tsn, ttn=ORDER_TYPE.ttn)
            t.add_event(AtomicEvent("place", buyer, {
                "Time": self._timestamp(2 * i),
                "protocl": protocol,
                "C1": volume,
                "C2": f"{amount:.2f}",
                "C3": "order",
            }))
            t.add_event(AtomicEvent("confirm", seller, {
                "Time": self._timestamp(2 * i + 1),
                "protocl": protocol,
                "C1": volume,
                "C2": f"{amount:.2f}",
                "C3": "confirm",
            }))
            out.append(t)
        return out

    def tampered_transactions(self, count: int, drop_confirm_every: int = 3) -> list[Transaction]:
        """A stream where every Nth transaction is missing its confirm event
        (atomicity violations for the rule-checking experiments)."""
        ts = self.transactions(count)
        for i, t in enumerate(ts):
            if i % drop_confirm_every == drop_confirm_every - 1:
                t.events = t.events[:1]
        return ts

    def flat_rows(self, count: int) -> list[dict]:
        """Table-1-shaped raw rows (one per event) for storage benches."""
        rows = []
        for t in self.transactions(count):
            for step, event in enumerate(t.events):
                rows.append(event.log_values(t.tsn, t.ttn, step))
        return rows
