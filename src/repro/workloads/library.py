"""Library-patron auditing workload (paper ref [7]: Camp & Tygar).

"In [7], the notion of secret counting was proposed to audit the system
statistics, such as the number of specific services that have been used,
the number of records located in each search, without having to unveil the
privacy of library patrons."

The workload generates patron activity (searches, checkouts) at several
branch systems; the auditing questions are exactly the secret-counting
ones: *how many* searches ran, *total* records located, *which branch*
had the busiest patron — all answerable via the relaxed secure sum /
ranking without naming a patron.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import DeterministicRng

__all__ = ["LibraryWorkload"]


@dataclass
class LibraryWorkload:
    """Per-branch patron activity with private per-branch tallies."""

    branches: tuple[str, ...] = ("U1", "U2", "U3")
    patrons_per_branch: int = 8
    seed: int = 21

    SERVICES = ("search", "checkout", "renewal", "ill_request")

    def __post_init__(self) -> None:
        self._rng = DeterministicRng(f"library:{self.seed}")

    def activity_rows(self, events: int) -> list[dict]:
        """Raw activity rows in the Table 1 shape.

        ``id`` = branch, ``C3`` = service name, ``C1`` = records located
        by the operation, ``C2`` = patron pseudonym score (opaque),
        ``Tid`` = patron session.
        """
        rows = []
        for tick in range(events):
            branch = self._rng.choice(self.branches)
            patron = self._rng.randint(1, self.patrons_per_branch)
            service = self._rng.choice(self.SERVICES)
            located = self._rng.randint(0, 40) if service == "search" else 0
            h, rem = divmod((9 * 3600 + 11 * tick) % 86400, 3600)
            m, s = divmod(rem, 60)
            rows.append({
                "Time": f"{h:02d}:{m:02d}:{s:02d}/07/01/20",
                "id": branch,
                "protocl": "TCP",
                "Tid": f"{branch}-patron-{patron}",
                "C1": located,
                "C2": f"{self._rng.randint(100, 999)}.00",
                "C3": service,
            })
        return rows

    def per_branch_counts(self, rows: list[dict], service: str) -> dict[str, int]:
        """Ground truth: how many ``service`` events each branch logged.

        These are the *private inputs* to the secret-counting secure sum;
        tests compare the SMC output against their plain total.
        """
        counts = {branch: 0 for branch in self.branches}
        for row in rows:
            if row["C3"] == service:
                counts[row["id"]] += 1
        return counts

    def per_branch_records_located(self, rows: list[dict]) -> dict[str, int]:
        """Ground truth: total records located per branch (search results)."""
        totals = {branch: 0 for branch in self.branches}
        for row in rows:
            if row["C3"] == "search":
                totals[row["id"]] += row["C1"]
        return totals
