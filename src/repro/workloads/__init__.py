"""Synthetic workloads exercising the paper's motivating applications.

* :mod:`~repro.workloads.ecommerce` — multi-party transactions in the
  Table 1 shape (plus the exact Table 1 rows);
* :mod:`~repro.workloads.intrusion` — multi-host traces with injected
  distributed attack campaigns (correlation / irregular-pattern rules);
* :mod:`~repro.workloads.library` — ref [7]'s library-patron secret
  counting;
* :mod:`~repro.workloads.generator` — parameterized random schemas,
  plans, rows and query mixes for sweeps.
"""

from repro.workloads.ecommerce import (
    ORDER_TYPE,
    EcommerceWorkload,
    paper_table1_rows,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.intrusion import AttackCampaign, IntrusionWorkload
from repro.workloads.library import LibraryWorkload

__all__ = [
    "EcommerceWorkload",
    "ORDER_TYPE",
    "paper_table1_rows",
    "IntrusionWorkload",
    "AttackCampaign",
    "LibraryWorkload",
    "WorkloadGenerator",
]
