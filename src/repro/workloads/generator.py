"""Parameterized random workload generation for sweeps and benchmarks.

The §5 confidentiality metrics and the scaling benchmarks need schemas,
fragment plans, log streams and query mixes of controllable shape:
attribute count, undefined-attribute fraction, node count, record count,
predicate mix (local/cross ratio).  This module generates all of them
deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import DeterministicRng
from repro.logstore.fragmentation import FragmentPlan
from repro.logstore.schema import Attribute, AttributeKind, GlobalSchema

__all__ = ["WorkloadGenerator"]


@dataclass
class WorkloadGenerator:
    """Deterministic generator of schemas, plans, rows and criteria."""

    seed: int = 42

    def __post_init__(self) -> None:
        self._rng = DeterministicRng(f"generator:{self.seed}")

    # -- schema / plan -----------------------------------------------------

    def schema(self, defined: int = 4, undefined: int = 4) -> GlobalSchema:
        """A schema with ``defined`` typed and ``undefined`` opaque attrs.

        Defined attributes alternate int / text so both predicate families
        are expressible; attribute ``a0`` is always an int.
        """
        attributes = []
        for i in range(defined):
            kind = AttributeKind.INTEGER if i % 2 == 0 else AttributeKind.TEXT
            attributes.append(Attribute(f"a{i}", kind))
        for i in range(undefined):
            attributes.append(Attribute(f"C{i + 1}", AttributeKind.UNDEFINED))
        return GlobalSchema(attributes)

    def plan(self, schema: GlobalSchema, nodes: int = 4) -> FragmentPlan:
        """Random disjoint assignment of the schema over ``nodes`` DLA nodes.

        Every node gets at least one attribute (round-robin base, then the
        remainder shuffled on top).
        """
        node_ids = [f"P{i}" for i in range(nodes)]
        names = list(schema.names)
        self._rng.shuffle(names)
        assignment: dict[str, list[str]] = {n: [] for n in node_ids}
        for i, name in enumerate(names):
            assignment[node_ids[i % nodes]].append(name)
        return FragmentPlan(schema, assignment)

    # -- data -----------------------------------------------------------------

    def rows(self, schema: GlobalSchema, count: int, sparsity: float = 0.0) -> list[dict]:
        """Random records; ``sparsity`` is the per-attribute dropout rate."""
        out = []
        for _ in range(count):
            row = {}
            for attribute in schema:
                if sparsity and self._rng.random() < sparsity:
                    continue
                if attribute.kind is AttributeKind.INTEGER:
                    row[attribute.name] = self._rng.randint(0, 999)
                elif attribute.kind is AttributeKind.UNDEFINED:
                    row[attribute.name] = self._rng.randint(0, 99)
                else:
                    row[attribute.name] = f"v{self._rng.randint(0, 9)}"
            if row:
                out.append(row)
        return out

    # -- queries ----------------------------------------------------------------

    def local_criterion(self, schema: GlobalSchema) -> str:
        """A single attribute-vs-constant predicate."""
        numeric = [
            a.name for a in schema
            if a.kind in (AttributeKind.INTEGER, AttributeKind.UNDEFINED)
        ]
        attr = self._rng.choice(numeric)
        return f"{attr} > {self._rng.randint(0, 500)}"

    def cross_criterion(self, schema: GlobalSchema, plan: FragmentPlan) -> str:
        """An attribute-vs-attribute predicate spanning two nodes."""
        numeric = [
            a.name for a in schema
            if a.kind in (AttributeKind.INTEGER, AttributeKind.UNDEFINED)
        ]
        for _ in range(200):
            left = self._rng.choice(numeric)
            right = self._rng.choice(numeric)
            if left != right and plan.home_of(left) != plan.home_of(right):
                op = self._rng.choice(["=", "<", ">"])
                return f"{left} {op} {right}"
        # Degenerate plan (everything on one node): fall back to local.
        return self.local_criterion(schema)

    def criterion_mix(
        self,
        schema: GlobalSchema,
        plan: FragmentPlan,
        clauses: int = 3,
        cross_fraction: float = 0.5,
    ) -> str:
        """A conjunctive criterion with a controlled local/cross mix."""
        parts = []
        for _ in range(max(1, clauses)):
            if self._rng.random() < cross_fraction:
                parts.append(self.cross_criterion(schema, plan))
            else:
                parts.append(self.local_criterion(schema))
        return " and ".join(f"({p})" for p in parts)
