"""Multi-host intrusion-detection workload (paper §1, §4.2, refs [2]-[5], [29]).

"Distributed security breaching is usually an aggregated effect of
distributed events, each of which alone may appear to be harmless."

Generates event traces across several hosts: a background of benign
activity plus injected *distributed attack campaigns* — e.g. a low-rate
port probe spread over many hosts, or a credential-stuffing pattern where
each host sees only a handful of failed logins.  The correlation and
irregular-pattern rules must catch the campaign from the aggregate trail
while any single host's slice stays under local thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import DeterministicRng

__all__ = ["IntrusionWorkload", "AttackCampaign"]


@dataclass(frozen=True)
class AttackCampaign:
    """Ground truth for one injected campaign."""

    name: str
    attacker: str
    events_per_host: int
    hosts: tuple[str, ...]

    @property
    def total_events(self) -> int:
        return self.events_per_host * len(self.hosts)


@dataclass
class IntrusionWorkload:
    """Synthetic multi-host audit-event stream.

    Event rows use the Table 1 schema: ``id`` = reporting host, ``C1`` =
    event code (int), ``C2`` = source address score, ``C3`` = event label,
    ``Tid`` = session id, ``protocl`` = transport.
    """

    hosts: tuple[str, ...] = ("U1", "U2", "U3", "U4")
    seed: int = 13

    BENIGN_LABELS = ("login", "logout", "read", "write", "cron")
    PROBE_LABEL = "probe"
    FAILED_LOGIN_LABEL = "auth_fail"

    def __post_init__(self) -> None:
        self._rng = DeterministicRng(f"intrusion:{self.seed}")
        self._session = 5000

    def _next_session(self) -> str:
        self._session += 1
        return f"S{self._session}"

    def _timestamp(self, tick: int) -> str:
        h, rem = divmod((8 * 3600 + 7 * tick) % 86400, 3600)
        m, s = divmod(rem, 60)
        return f"{h:02d}:{m:02d}:{s:02d}/06/01/20"

    def benign_rows(self, count: int) -> list[dict]:
        """Background noise: normal operations on random hosts."""
        rows = []
        for tick in range(count):
            host = self._rng.choice(self.hosts)
            rows.append({
                "Time": self._timestamp(tick),
                "id": host,
                "protocl": self._rng.choice(["TCP", "UDP"]),
                "Tid": self._next_session(),
                "C1": self._rng.randint(1, 10),        # low event codes: benign
                "C2": f"{self._rng.randint(1, 5000) / 100:.2f}",
                "C3": self._rng.choice(self.BENIGN_LABELS),
            })
        return rows

    def probe_campaign(
        self, attacker_score: float = 666.0, events_per_host: int = 3
    ) -> tuple[list[dict], AttackCampaign]:
        """A distributed port probe: few events per host, same source score.

        ``C2`` carries the (blinded) source fingerprint — equal across
        hosts, which is what cross-host correlation can seize on.
        """
        rows = []
        tick = 10_000
        for host in self.hosts:
            for _ in range(events_per_host):
                rows.append({
                    "Time": self._timestamp(tick),
                    "id": host,
                    "protocl": "TCP",
                    "Tid": self._next_session(),
                    "C1": self._rng.randint(90, 99),    # high codes: suspicious
                    "C2": f"{attacker_score:.2f}",
                    "C3": self.PROBE_LABEL,
                })
                tick += 1
        campaign = AttackCampaign(
            name="distributed-probe",
            attacker=f"{attacker_score:.2f}",
            events_per_host=events_per_host,
            hosts=self.hosts,
        )
        return rows, campaign

    def credential_stuffing(
        self, per_host: int = 2
    ) -> tuple[list[dict], AttackCampaign]:
        """Failed logins spread thin across hosts (each host under alarm)."""
        rows = []
        tick = 20_000
        for host in self.hosts:
            for _ in range(per_host):
                rows.append({
                    "Time": self._timestamp(tick),
                    "id": host,
                    "protocl": "TCP",
                    "Tid": self._next_session(),
                    "C1": 77,
                    "C2": f"{self._rng.randint(1, 5000) / 100:.2f}",
                    "C3": self.FAILED_LOGIN_LABEL,
                })
                tick += 3
        campaign = AttackCampaign(
            name="credential-stuffing",
            attacker="77",
            events_per_host=per_host,
            hosts=self.hosts,
        )
        return rows, campaign

    def mixed_trace(
        self, benign: int = 40, probe_per_host: int = 3, stuffing_per_host: int = 2
    ) -> tuple[list[dict], list[AttackCampaign]]:
        """Benign background with both campaigns interleaved."""
        rows = self.benign_rows(benign)
        probe_rows, probe = self.probe_campaign(events_per_host=probe_per_host)
        stuff_rows, stuffing = self.credential_stuffing(per_host=stuffing_per_host)
        everything = rows + probe_rows + stuff_rows
        self._rng.shuffle(everything)
        return everything, [probe, stuffing]
