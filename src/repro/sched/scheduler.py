"""Concurrent audit-query scheduler (bounded admission, shared subplans).

The paper's DLA service fields queries from many independent auditors
(§2, §4.2); the serial :class:`~repro.core.service.ConfidentialAuditingService`
entry points run one query at a time, each occupying the whole cluster.
:class:`QueryScheduler` turns the same deployment into a multi-query
service:

* **Admission** — a bounded queue (``REPRO_SCHED_QUEUE_DEPTH``) feeds a
  fixed worker pool (``REPRO_SCHED_WORKERS``).  A full queue exerts
  backpressure: :meth:`submit` blocks up to
  ``REPRO_SCHED_ADMISSION_TIMEOUT`` seconds, then raises the typed
  :class:`~repro.errors.SchedulerSaturatedError`.
* **Isolation** — every admitted query gets its own
  :class:`~repro.smc.base.SmcContext` (private RNG stream, crypto
  counter, leakage ledger) and its own :class:`~repro.sched.Channel`
  over one shared :class:`~repro.net.simnet.SimNetwork`, so interleaved
  SMC rounds never cross-talk and per-query cost reports stay exact.
  Ledgers merge into the service-wide ones *grouped per query*.
* **Pipelining** — workers progress independently: query B's node-local
  predicate scans run while query A's network-bound SMC rounds drain
  (the channel event loop is cooperative — whichever worker waits next
  helps deliver).
* **Coalescing** (``REPRO_SCHED_COALESCE``) — identical work in flight
  is computed once and fanned out, keyed on the fragment stores' epochs
  so sharing is invalidation-safe: local predicate scans and projections
  (shared single-flight caches), cross-predicate SMC subplans, and whole
  queries with equal plan fingerprints at equal epochs.  A fanned-out
  query's ledger records the ``coalesced_result`` disclosure explicitly.
* **Deadlines** — ``submit(criterion, timeout=...)`` starts the
  :class:`~repro.resilience.Deadline` at *admission*, so time spent
  queued counts; a query that expires before a worker picks it up fails
  with the typed error without consuming cluster work.

Observability: per-query ``sched.query`` spans plus ``sched.*`` metrics
(queue depth and in-flight gauges, admission-wait histogram,
submitted/completed/failed counters, per-level coalesce hits).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass

from repro.audit.executor import QueryExecutor, QueryResult
from repro.audit.planner import QueryPlan, plan_query
from repro.cache import LruCache
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    SchedulerError,
    SchedulerSaturatedError,
    SchedulerShutdownError,
)
from repro.net.stats import CostReport
from repro.resilience.policy import Deadline
from repro.sched.channel import ChannelMux
from repro.sched.coalesce import SingleFlightCache
from repro.smc.base import SmcContext
from repro.smc.leakage import LeakageEvent

__all__ = [
    "SchedulerConfig",
    "QueryHandle",
    "QueryScheduler",
    "WORKERS_ENV_VAR",
    "QUEUE_DEPTH_ENV_VAR",
    "COALESCE_ENV_VAR",
    "ADMISSION_TIMEOUT_ENV_VAR",
]

WORKERS_ENV_VAR = "REPRO_SCHED_WORKERS"
QUEUE_DEPTH_ENV_VAR = "REPRO_SCHED_QUEUE_DEPTH"
COALESCE_ENV_VAR = "REPRO_SCHED_COALESCE"
ADMISSION_TIMEOUT_ENV_VAR = "REPRO_SCHED_ADMISSION_TIMEOUT"

_OFF_VALUES = {"off", "0", "false", "no", "disabled"}


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"{name}={raw!r} is not an integer") from None
    if value < 1:
        raise ConfigurationError(f"{name} must be positive")
    return value


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler knobs; :meth:`from_env` reads the ``REPRO_SCHED_*`` set."""

    workers: int = 4
    queue_depth: int = 64
    coalesce: bool = True
    #: Seconds :meth:`QueryScheduler.submit` may block on a full queue
    #: before raising; ``None`` blocks until space frees (backpressure).
    admission_timeout: float | None = None

    @classmethod
    def from_env(cls) -> "SchedulerConfig":
        raw_timeout = os.environ.get(ADMISSION_TIMEOUT_ENV_VAR)
        timeout: float | None = None
        if raw_timeout:
            try:
                timeout = float(raw_timeout)
            except ValueError:
                raise ConfigurationError(
                    f"{ADMISSION_TIMEOUT_ENV_VAR}={raw_timeout!r} is not a number"
                ) from None
        coalesce_raw = os.environ.get(COALESCE_ENV_VAR, "on").strip().lower()
        return cls(
            workers=_env_int(WORKERS_ENV_VAR, cls.workers),
            queue_depth=_env_int(QUEUE_DEPTH_ENV_VAR, cls.queue_depth),
            coalesce=coalesce_raw not in _OFF_VALUES,
            admission_timeout=timeout,
        )


class QueryHandle:
    """A submitted query's future: result, cost, and leakage in one place."""

    def __init__(self, seq: int, criterion, deadline: Deadline) -> None:
        self.seq = seq
        self.criterion = criterion
        self.deadline = deadline
        self.submitted_at = time.perf_counter()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: True when the result was fanned out from a concurrent
        #: identical query instead of being computed by this one.
        self.coalesced = False
        #: Per-query :class:`~repro.net.stats.CostReport` (channel
        #: traffic + this query's own crypto ops).
        self.cost: CostReport | None = None
        #: This query's private leakage events, in causal order.
        self.leakage: list[LeakageEvent] = []
        self._event = threading.Event()
        self._result: QueryResult | None = None
        self._exception: BaseException | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def latency(self) -> float | None:
        """Submit-to-finish seconds (includes admission wait); None if running."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def exception(self) -> BaseException | None:
        return self._exception if self.done else None

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block until the query finishes; re-raise its failure if any."""
        if not self._event.wait(timeout):
            raise SchedulerError(
                f"query #{self.seq} still running after {timeout}s"
            )
        if self._exception is not None:
            raise self._exception
        return self._result  # type: ignore[return-value]

    def _resolve(self, result: QueryResult) -> None:
        self._result = result
        self.finished_at = time.perf_counter()
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._exception = exc
        self.finished_at = time.perf_counter()
        self._event.set()


class _Shutdown:
    pass


_SHUTDOWN = _Shutdown()


class QueryScheduler:
    """Admits, pipelines, and coalesces concurrent audit queries.

    Built over one service deployment: the scheduler shares the service's
    stores, schema, prime, engine, and hashed-encoder memo, but runs each
    query in an isolated context over a private channel of one shared
    network.  Constructor arguments override the ``REPRO_SCHED_*``
    environment defaults.
    """

    def __init__(
        self,
        service,
        max_workers: int | None = None,
        queue_depth: int | None = None,
        coalesce: bool | None = None,
        admission_timeout: float | None = None,
        metrics=None,
    ) -> None:
        env = SchedulerConfig.from_env()
        self.config = SchedulerConfig(
            workers=max_workers if max_workers is not None else env.workers,
            queue_depth=queue_depth if queue_depth is not None else env.queue_depth,
            coalesce=coalesce if coalesce is not None else env.coalesce,
            admission_timeout=(
                admission_timeout
                if admission_timeout is not None
                else env.admission_timeout
            ),
        )
        if self.config.workers < 1:
            raise ConfigurationError("scheduler needs at least one worker")
        if self.config.queue_depth < 1:
            raise ConfigurationError("admission queue depth must be positive")
        self.service = service
        self.metrics = metrics if metrics is not None else service.metrics
        if self.metrics is None:
            from repro.obs.metrics import MetricsRegistry

            self.metrics = MetricsRegistry()
        self.net = service._fresh_net()
        self.mux = ChannelMux(self.net)
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_depth)
        self._workers: list[threading.Thread] = []
        self._seq = 0
        self._state_lock = threading.Lock()
        self._closed = False
        if self.config.coalesce:
            m = self.metrics
            self._scan_flight = SingleFlightCache(
                LruCache("sched.scan", metrics=m), metrics=m, metric_label="scan"
            )
            self._projection_flight = SingleFlightCache(
                LruCache("sched.projection", metrics=m),
                metrics=m,
                metric_label="projection",
            )
            self._subplan_flight = SingleFlightCache(
                LruCache("sched.subplan", metrics=m), metrics=m, metric_label="subplan"
            )
            self._query_flight = SingleFlightCache(
                LruCache("sched.query", metrics=m), metrics=m, metric_label="query"
            )
        else:
            self._scan_flight = None
            self._projection_flight = None
            self._subplan_flight = None
            self._query_flight = None
        # Metric instances resolved once; emission is then a locked add.
        self._depth_gauge = self.metrics.gauge(
            "sched.queue_depth", help="queries waiting for a worker"
        )
        self._inflight_gauge = self.metrics.gauge(
            "sched.in_flight", help="queries currently executing"
        )
        self._admission_hist = self.metrics.histogram(
            "sched.admission_wait_seconds",
            help="seconds between submit and worker pickup",
        )
        self._submitted = self.metrics.counter(
            "sched.submitted", help="queries admitted"
        )
        self._completed = self.metrics.counter(
            "sched.completed", help="queries finished successfully"
        )
        self._failed = self.metrics.counter(
            "sched.failed", help="queries finished with an error"
        )

    # -- admission ---------------------------------------------------------

    def submit(self, criterion, timeout: float | None = None) -> QueryHandle:
        """Admit one query; returns immediately with its handle.

        ``criterion`` is a criterion string or a pre-built
        :class:`~repro.audit.planner.QueryPlan`.  ``timeout`` starts the
        query's deadline *now* — admission-queue wait spends it.
        """
        with self._state_lock:
            if self._closed:
                raise SchedulerShutdownError("scheduler is shut down")
            self._ensure_workers()
            self._seq += 1
            handle = QueryHandle(self._seq, criterion, Deadline.after(timeout))
        try:
            if self.config.admission_timeout is not None:
                self._queue.put(handle, timeout=self.config.admission_timeout)
            else:
                self._queue.put(handle)
        except queue.Full:
            raise SchedulerSaturatedError(
                f"admission queue full ({self.config.queue_depth} deep) for "
                f"{self.config.admission_timeout}s"
            ) from None
        self._submitted.inc()
        self._depth_gauge.set(self._queue.qsize())
        return handle

    def gather(self, handles: list[QueryHandle]) -> list[QueryResult]:
        """Results of ``handles`` in submission order (first failure raises)."""
        return [handle.result() for handle in handles]

    # -- worker pool -------------------------------------------------------

    def _ensure_workers(self) -> None:
        """Spawn the pool on first submit (state lock held)."""
        if self._workers:
            return
        for i in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"sched-worker-{i}", daemon=True
            )
            worker.start()
            self._workers.append(worker)

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            self._depth_gauge.set(self._queue.qsize())
            if item is _SHUTDOWN:
                return
            self._process(item)

    def _process(self, handle: QueryHandle) -> None:
        self._inflight_gauge.inc()
        try:
            wait = time.perf_counter() - handle.submitted_at
            self._admission_hist.observe(wait)
            handle.started_at = time.perf_counter()
            handle.deadline.check(f"sched.admission[q{handle.seq}]")
            qplan = (
                handle.criterion
                if isinstance(handle.criterion, QueryPlan)
                else plan_query(
                    handle.criterion,
                    self.service.schema,
                    self.service.store.plan,
                    tracer=self.service.tracer,
                )
            )
            if self._query_flight is None:
                result = self._execute(handle, qplan)
            else:
                ran = False

                def compute() -> QueryResult:
                    nonlocal ran
                    ran = True
                    return self._execute(handle, qplan)

                key = (qplan.fingerprint(), self._epoch_vector())
                value = self._query_flight.get_or_compute(key, compute)
                if ran:
                    result = value
                else:
                    result = self._fan_out(handle, qplan, value)
            handle._resolve(result)
            self._completed.inc()
        except DeadlineExceededError as exc:
            handle._fail(exc)
            self._failed.inc()
        except Exception as exc:  # typed repro errors and genuine bugs alike
            handle._fail(exc)
            self._failed.inc()
        finally:
            self._inflight_gauge.dec()

    # -- execution ---------------------------------------------------------

    def _epoch_vector(self) -> tuple:
        """Every node store's epoch — the coalescing validity stamp."""
        store = self.service.store
        return tuple(
            (node_id, store.node_store(node_id).epoch)
            for node_id in store.plan.node_ids
        )

    def _execute(self, handle: QueryHandle, qplan: QueryPlan) -> QueryResult:
        service = self.service
        # One ring of a sharded cluster prefixes its channel tags with the
        # shard label, so multiplexed traffic stays attributable per shard.
        shard = getattr(service, "shard_label", None)
        tag = f"{shard}.q{handle.seq}" if shard else f"q{handle.seq}"
        channel = self.mux.channel(tag)
        qctx = SmcContext(
            service.ctx.prime,
            service.rng.spawn(f"sched:{handle.seq}"),
            engine=service.ctx.engine,
            tracer=service.tracer,
            metrics=service.metrics,
            encoder=service.ctx.encoder,
            precompute=service.precompute,
            telemetry=service.telemetry,
        )
        executor = QueryExecutor(
            service.store,
            qctx,
            service.schema,
            value_bound=service.executor.value_bound,
            batch_compare=service.executor.batch_compare,
            projection_cache=self._projection_flight,
            scan_cache=self._scan_flight,
            subplan_cache=self._subplan_flight,
        )
        vt_start = self.net.now
        span_attrs = {"criterion": qplan.criterion_text, "channel": tag}
        if shard:
            span_attrs["shard"] = shard
        try:
            with service.tracer.span("sched.query", span_attrs) as span:
                result = executor.execute(
                    qplan, net=channel, deadline=handle.deadline
                )
                if service.tracer.enabled:
                    span.set_attribute("matches", len(result.glsns))
            # Concurrent queries feed the confidentiality observatory too
            # (it is thread-safe); leakage is this query's private ledger.
            service.observe_query_result(result, len(qctx.leakage.events))
            return result
        finally:
            # Cost and leakage are attributed even on failure: the query
            # spent the traffic and disclosed the entries regardless.
            handle.cost = CostReport.collect(
                channel.stats, qctx.crypto_ops, virtual_time=self.net.now - vt_start
            )
            handle.leakage = qctx.leakage.events
            service.ctx.leakage.extend(handle.leakage)
            service.ctx.crypto_ops.merge(qctx.crypto_ops)
            channel.close()

    def _fan_out(
        self, handle: QueryHandle, qplan: QueryPlan, value: QueryResult
    ) -> QueryResult:
        """Hand a coalesced query its private copy of the shared result."""
        handle.coalesced = True
        handle.cost = CostReport(messages=0, bytes=0, crypto_ops={})
        events = [
            LeakageEvent(
                "scheduler",
                "*",
                "coalesced_result",
                f"query #{handle.seq} fanned out from a concurrent identical "
                f"query (equal plan fingerprint at equal store epochs)",
            )
        ]
        handle.leakage = events
        self.service.ctx.leakage.extend(events)
        return QueryResult(
            plan=qplan,
            glsns=list(value.glsns),
            subquery_glsns={k: list(v) for k, v in value.subquery_glsns.items()},
            messages=value.messages,
            bytes=value.bytes,
        )

    # -- introspection -----------------------------------------------------

    def coalesce_stats(self) -> dict:
        """Hit/miss/join counts per sharing level (empty when disabled)."""
        out: dict = {}
        for flight in (
            self._scan_flight,
            self._projection_flight,
            self._subplan_flight,
            self._query_flight,
        ):
            if flight is None:
                continue
            s = flight.stats
            out[flight.name] = {
                "hits": s.hits,
                "misses": s.misses,
                "joins": flight.joins,
            }
        return out

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop admitting, drain the queue, and stop every worker."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        for _ in workers:
            self._queue.put(_SHUTDOWN)
        if wait:
            for worker in workers:
                worker.join()

    def __enter__(self) -> "QueryScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
