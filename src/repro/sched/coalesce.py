"""Single-flight coalescing: identical work computed once, fanned out.

Concurrent audit queries repeat each other's work at three levels —
node-local predicate scans, per-attribute projections, and whole cross-
predicate SMC subplans.  All three are *pure given the fragment stores'
epochs* (PR 3 keys every cache entry on the owning store's epoch, so a
write anywhere bumps the epoch and naturally misses).  That purity is
what makes sharing across in-flight queries safe: two queries asking for
the same epoch-keyed computation must receive the same value, so only
one should compute it.

:class:`SingleFlightCache` wraps an :class:`~repro.cache.LruCache` and
adds exactly that: the first thread to miss a key becomes its *holder*
and computes; threads that ask for the same key while the computation is
in flight *join* — they block on the holder's completion event, then
read the cached value.  Failure never poisons joiners: if the holder's
computation raises (its deadline expired, its ring failed over and
died), the exception propagates to the holder only; each joiner wakes,
finds no cached value, and retries — one of them becomes the new holder.
A slow or dying query can therefore never corrupt a neighbor's result,
only cost it one recomputation.

The wrapper exposes the same ``get_or_compute(key, compute)`` signature
as :class:`LruCache`, so the executor accepts either interchangeably.
With the global cache kill switch off (``REPRO_CACHE=off``), coalescing
disables itself along with the caches: every caller computes privately,
exactly like the serial path.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.cache import LruCache, caching_enabled

__all__ = ["SingleFlightCache"]


class _MISSING:
    pass


_MISS = _MISSING()


class SingleFlightCache:
    """An :class:`LruCache` with in-flight deduplication of computes.

    ``metrics``/``metric_label`` (optional): joins are counted into
    ``sched.coalesce_hits`` labelled with the sharing level, so the
    scheduler's coalescing wins are observable per level.
    """

    def __init__(
        self,
        cache: LruCache,
        metrics=None,
        metric_label: str | None = None,
    ) -> None:
        self.cache = cache
        self._lock = threading.Lock()
        self._inflight: dict[object, threading.Event] = {}
        self.joins = 0
        self._metric = None
        if metrics is not None:
            self._metric = metrics.counter(
                "sched.coalesce_hits",
                help="computations served by joining concurrent identical work",
                labels={"level": metric_label or cache.name},
            )

    @property
    def name(self) -> str:
        return self.cache.name

    @property
    def stats(self):
        return self.cache.stats

    def get_or_compute(self, key, compute: Callable[[], object]):
        """Serve ``key`` from cache, join an in-flight compute, or compute.

        The loop structure guarantees progress: every pass either returns
        a cached value, makes this thread the holder, or waits on a
        holder that is *guaranteed* (``finally``) to set its event.
        """
        if not caching_enabled():
            return compute()
        while True:
            wait_for = None
            with self._lock:
                value = self.cache.get(key, _MISS)
                if value is not _MISS:
                    return value
                event = self._inflight.get(key)
                if event is None:
                    # This thread becomes the holder.
                    self._inflight[key] = threading.Event()
                else:
                    wait_for = event
                    self.joins += 1
            if wait_for is not None:
                # Join: wait for the holder, then re-check the cache.  A
                # failed holder stores nothing — the loop retries and one
                # joiner becomes the new holder (no exception fan-out).
                if self._metric is not None:
                    self._metric.inc()
                wait_for.wait()
                continue
            try:
                value = compute()
                self.cache.put(key, value)
                return value
            finally:
                with self._lock:
                    done = self._inflight.pop(key, None)
                if done is not None:
                    done.set()
