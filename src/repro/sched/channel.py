"""Channel multiplexing: many logical queries over one physical network.

The serial service builds a fresh :class:`~repro.net.simnet.SimNetwork`
per query, so protocol traffic from different queries can never meet.  A
throughput-oriented deployment cannot afford one network (one set of TCP
links) per in-flight query — concurrent queries must share the physical
links.  :class:`ChannelMux` provides that sharing without cross-talk:

* every message sent through a :class:`Channel` is stamped with the
  channel's tag (wire key ``"ch"``, see :mod:`repro.net.codec`);
* one physical dispatcher per node routes each delivery to the handler
  registered by ``(channel, node)`` — two queries may both register a
  party named ``"P0"`` and each sees only its own rounds;
* per-channel :class:`~repro.net.stats.NetworkStats` (and per-channel
  drop attribution via the network's ``drop_hook``) keep cost reports
  exact per query even though the physical counters are shared;
* per-channel ``failed_links`` / ``dead_letters`` views (bucketed by the
  reliability layer in :class:`~repro.net.simnet.SimNetwork`) let one
  query's ring-failover supervisor diagnose its dead hops without seeing
  — or wiping — a neighbor's.

Threading model: one re-entrant lock serializes *all* operations on the
shared network (register, send, event-loop steps).  :meth:`Channel.run`
drains the **global** event queue under that lock, releasing it between
steps — a worker thread waiting for its own query's rounds therefore
*helps* deliver whichever message is next, including other channels'.
Handler state is only ever mutated under the mux lock, so interleaved
SMC rounds stay race-free; and because each channel's events are
enqueued in causal order, within-channel delivery order is deterministic
regardless of which thread happens to pump the loop.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.errors import ConfigurationError
from repro.net.message import Message, NodeId
from repro.net.simnet import SimNetwork
from repro.net.stats import NetworkStats
from repro.resilience.policy import Deadline

__all__ = ["Channel", "ChannelMux"]

Handler = Callable[[Message, "Channel"], None]


class Channel:
    """One query's logical view of the shared network.

    Implements the transport interface the SMC protocols and the ring
    failover supervisor are written against (``register`` / ``send`` /
    ``send_many`` / ``run`` / ``stats`` / ``reliable`` / ``failed_links``
    / ``reset_failures`` / ``_count`` / ...), so protocol code runs
    unmodified over a multiplexed network.
    """

    def __init__(self, mux: "ChannelMux", tag: str) -> None:
        self.mux = mux
        self.tag = tag
        self.stats = NetworkStats()
        if mux.net.metrics is not None:
            self.stats.attach_metrics(mux.net.metrics)
        self._nodes: set[NodeId] = set()
        self._closed = False

    # -- passthrough properties -------------------------------------------

    @property
    def tracer(self):
        return self.mux.net.tracer

    @property
    def metrics(self):
        return self.mux.net.metrics

    @property
    def resilience(self):
        return self.mux.net.resilience

    @property
    def reliable(self) -> bool:
        return self.mux.net.reliable

    @property
    def now(self) -> float:
        return self.mux.net.now

    @property
    def node_ids(self) -> list[NodeId]:
        with self.mux.lock:
            return sorted(self._nodes)

    @property
    def failed_links(self) -> set[tuple[NodeId, NodeId]]:
        """This channel's exhausted-delivery links only."""
        with self.mux.lock:
            return set(self.mux.net.failed_links_by_channel.get(self.tag, ()))

    @property
    def dead_letters(self) -> list[Message]:
        with self.mux.lock:
            return list(self.mux.net.dead_letters_by_channel.get(self.tag, ()))

    @property
    def resilience_stats(self) -> dict:
        return self.mux.net.resilience_stats

    def _count(self, name: str, tracer_event: str | None = None, attrs=None) -> None:
        self.mux.net._count(name, tracer_event, attrs)

    # -- wiring ------------------------------------------------------------

    def register(self, node_id: NodeId, handler: Handler) -> None:
        """Attach this channel's handler for ``node_id``."""
        with self.mux.lock:
            self._nodes.add(node_id)
            self.mux._register(self.tag, node_id, handler)

    def unregister(self, node_id: NodeId) -> None:
        with self.mux.lock:
            self._nodes.discard(node_id)
            self.mux._unregister(self.tag, node_id)

    # -- traffic -----------------------------------------------------------

    def send(self, msg: Message) -> None:
        msg.channel = self.tag
        with self.mux.lock:
            self.mux.net.send(msg)
            self.mux.wakeup.notify_all()

    def send_many(self, msgs: list[Message]) -> None:
        for msg in msgs:
            msg.channel = self.tag
        with self.mux.lock:
            self.mux.net.send_many(msgs)
            self.mux.wakeup.notify_all()

    def broadcast(
        self, src: NodeId, kind: str, payload, exclude: set[NodeId] | None = None
    ) -> None:
        """One copy to every *channel-local* node except ``src``."""
        exclude = exclude or set()
        for node_id in self.node_ids:
            if node_id == src or node_id in exclude:
                continue
            self.send(Message(src=src, dst=node_id, kind=kind, payload=payload))

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        with self.mux.lock:
            self.mux.net.schedule(delay, fn, channel=self.tag)
            self.mux.wakeup.notify_all()

    @property
    def backlog(self) -> int:
        """Outstanding deliveries/acks/timers tagged with this channel."""
        with self.mux.lock:
            return self.mux.net.channel_backlog(self.tag)

    def reset_failures(self) -> None:
        """Clear only this channel's failure bucket (failover relaunch)."""
        with self.mux.lock:
            self.mux.net.reset_failures(channel=self.tag)

    # -- event loop --------------------------------------------------------

    def run(self, max_steps: int = 1_000_000, deadline: Deadline | None = None) -> int:
        """Drain the shared event queue until it is quiescent.

        Steps the *global* loop: a thread waiting on its own channel may
        execute deliveries belonging to other channels ("helping").  The
        lock is released between steps so concurrent channel runners
        interleave fairly.  Quiescence of the global queue implies every
        delivery this channel was waiting for has been dispatched.

        An empty queue with outstanding channel backlog (work another
        thread is about to enqueue — e.g. the async scheduler's loop
        thread) is not treated as quiescence: the runner parks on the
        mux's condition variable instead of spinning, and wakes when the
        next send/schedule lands.  An idle mux therefore costs ~0 steps
        and ~0 CPU.
        """
        steps = 0
        check_deadline = deadline is not None and deadline.is_finite
        while True:
            with self.mux.lock:
                if not self.mux.net.step():
                    if self.mux.net.channel_backlog(self.tag) <= 0:
                        return steps
                    # Queue momentarily empty but this channel still owes
                    # work: wait for the producer's wakeup, never busy-poll.
                    self.mux.wakeup.wait(timeout=0.05)
                    if check_deadline and deadline.expired:
                        deadline.check(f"channel[{self.tag}].run")
                    continue
            steps += 1
            if steps >= max_steps:
                raise ConfigurationError(
                    f"network did not quiesce within {max_steps} deliveries"
                )
            if check_deadline and deadline.expired:
                if self.metrics is not None:
                    self.metrics.counter(
                        "resilience.deadline_exceeded",
                        help="runs abandoned because their deadline expired",
                    ).inc()
                deadline.check(f"channel[{self.tag}].run")

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release every handler registration of this channel."""
        with self.mux.lock:
            if self._closed:
                return
            self._closed = True
            for node_id in list(self._nodes):
                self.mux._unregister(self.tag, node_id)
            self._nodes.clear()
            self.mux.net.reset_failures(channel=self.tag)
            self.mux._channels.pop(self.tag, None)


class ChannelMux:
    """Routes one :class:`SimNetwork`'s deliveries to per-channel handlers."""

    #: Class of the channels :meth:`channel` constructs.  The async mux
    #: (:class:`repro.aio.AsyncChannelMux`) overrides this to hand out
    #: drain-capable channels without re-implementing the routing.
    channel_class = Channel

    def __init__(self, net: SimNetwork) -> None:
        self.net = net
        self.lock = threading.RLock()
        #: Notified whenever a channel enqueues work (send / schedule), so
        #: helpers parked in :meth:`Channel.run` wake without polling.
        self.wakeup = threading.Condition(self.lock)
        self._channels: dict[str, Channel] = {}
        self._handlers: dict[tuple[str, NodeId], Handler] = {}
        # node -> channels currently registered on it (physical dispatcher
        # refcount: unregister the node only when the last channel leaves).
        self._node_channels: dict[NodeId, set[str]] = {}
        net.drop_hook = self._on_drop

    def channel(self, tag: str) -> Channel:
        """Get or create the channel for ``tag``."""
        with self.lock:
            ch = self._channels.get(tag)
            if ch is None:
                ch = self._channels[tag] = self.channel_class(self, tag)
            return ch

    # -- internal wiring (mux lock held by the calling Channel) ------------

    def _register(self, tag: str, node_id: NodeId, handler: Handler) -> None:
        self._handlers[(tag, node_id)] = handler
        users = self._node_channels.setdefault(node_id, set())
        if not users:
            self.net.register(node_id, self._make_dispatcher(node_id))
        users.add(tag)

    def _unregister(self, tag: str, node_id: NodeId) -> None:
        self._handlers.pop((tag, node_id), None)
        users = self._node_channels.get(node_id)
        if users is not None:
            users.discard(tag)
            if not users:
                self._node_channels.pop(node_id, None)
                self.net.unregister(node_id)

    def _make_dispatcher(self, node_id: NodeId):
        def dispatch(msg: Message, _net) -> None:
            channel = self._channels.get(msg.channel)
            handler = self._handlers.get((msg.channel, node_id))
            if channel is None or handler is None:
                # Untagged traffic or a channel that already closed:
                # account it as a drop, never dispatch across channels.
                self.net.stats.record_drop()
                return
            channel.stats.record(msg.kind, msg.size_bytes, msg.src, msg.dst)
            handler(msg, channel)

        return dispatch

    def _on_drop(self, msg: Message) -> None:
        channel = self._channels.get(msg.channel)
        if channel is not None:
            channel.stats.record_drop()
