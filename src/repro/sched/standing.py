"""Standing queries: register an audit criterion once, receive deltas.

A *standing query* is the continuous-auditing form of
:meth:`~repro.core.service.ConfidentialAuditingService.query`: the
auditor registers a criterion once and, at every ingest epoch (each
:meth:`append_stream <repro.core.service.ConfidentialAuditingService.append_stream>`
batch, or an explicit poll), receives only the *delta* — glsns newly
matching or no longer matching since the previous epoch.

Deltas are produced by re-executing the query through the service's
:class:`~repro.sched.QueryScheduler`, so concurrent standing queries
coalesce with each other and with ad-hoc queries (equal plan
fingerprint at equal store epochs → one execution).  The differencing
against the previous answer happens on the auditor side and discloses
strictly less than the full result re-release it replaces — but it *is*
a disclosure with its own shape (the arrival pattern of matches over
time), so every pushed delta is recorded in the leakage ledger under
the ``standing_delta`` category and fed to the confidentiality
observatory, whose per-tenant ``C_DLA`` updates live (see
``docs/storage.md`` for the accounting).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.audit.planner import QueryPlan

__all__ = ["StandingQuery", "StandingDelta", "StandingQueryRegistry"]


@dataclass(frozen=True)
class StandingDelta:
    """One epoch's incremental answer for one standing query."""

    query_id: int
    criterion: str
    epoch: int
    #: glsns matching now that did not match at the previous epoch.
    added: tuple[int, ...]
    #: glsns that matched previously and no longer do (deletes).
    removed: tuple[int, ...]
    #: Full current cardinality (what a fresh query would return).
    total: int

    @property
    def empty(self) -> bool:
        return not self.added and not self.removed


@dataclass
class StandingQuery:
    """One registered criterion and its per-epoch watermark."""

    query_id: int
    criterion: str
    qplan: QueryPlan
    tenant: str = "default"
    on_delta: object = None
    #: glsns the auditor has already been shown for this criterion.
    seen: set[int] = field(default_factory=set)
    epochs: int = 0
    deltas_pushed: int = 0
    last_delta: StandingDelta | None = None


class StandingQueryRegistry:
    """All standing queries of one service, evaluated per ingest epoch.

    Thread-safe; evaluation serializes on one lock (the underlying
    scheduler still parallelizes the member queries of one epoch).
    """

    def __init__(self, service, metrics=None) -> None:
        self.service = service
        self._queries: dict[int, StandingQuery] = {}
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._epoch = 0
        self._metrics = metrics
        if metrics is not None:
            self._gauge = metrics.gauge(
                "repro_standing_queries",
                help="standing queries currently registered",
            )
            self._deltas_metric = metrics.counter(
                "repro_standing_deltas_total",
                help="non-empty per-epoch deltas pushed to standing queries",
            )
            self._epochs_metric = metrics.counter(
                "repro_standing_epochs_total",
                help="standing-query evaluation epochs",
            )
        else:
            self._gauge = None
            self._deltas_metric = None
            self._epochs_metric = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._queries)

    def register(
        self, criterion: str, tenant: str = "default", on_delta=None
    ) -> StandingQuery:
        """Register ``criterion``; deltas flow from the next epoch on.

        ``on_delta`` (optional) is called with each non-empty
        :class:`StandingDelta` as it is produced.  The first epoch's
        delta contains every currently matching glsn — registration
        starts from an empty watermark, not from a hidden full query.
        """
        qplan = self.service.plan_criterion(criterion)
        with self._lock:
            query = StandingQuery(
                query_id=next(self._ids),
                criterion=criterion,
                qplan=qplan,
                tenant=tenant,
                on_delta=on_delta,
            )
            self._queries[query.query_id] = query
            if self._gauge is not None:
                self._gauge.set(len(self._queries))
            return query

    def unregister(self, query_id: int) -> None:
        with self._lock:
            self._queries.pop(query_id, None)
            if self._gauge is not None:
                self._gauge.set(len(self._queries))

    def evaluate_epoch(self) -> list[StandingDelta]:
        """Run every standing query once; push and return the deltas.

        Queries are submitted to the service scheduler together, so an
        epoch with N standing queries over identical plans costs one
        execution, and an epoch where nothing changed since the last
        evaluation is answered from the scheduler's coalescing cache.
        """
        service = self.service
        with self._lock:
            if not self._queries:
                return []
            self._epoch += 1
            epoch = self._epoch
            queries = list(self._queries.values())
            if self._epochs_metric is not None:
                self._epochs_metric.inc()
            with service.tracer.span(
                "standing.epoch",
                {"epoch": epoch, "queries": len(queries)},
            ):
                sched = service.scheduler
                handles = [sched.submit(q.qplan) for q in queries]
                results = sched.gather(handles)
                deltas = []
                for query, result in zip(queries, results):
                    current = set(result.glsns)
                    delta = StandingDelta(
                        query_id=query.query_id,
                        criterion=query.criterion,
                        epoch=epoch,
                        added=tuple(sorted(current - query.seen)),
                        removed=tuple(sorted(query.seen - current)),
                        total=len(current),
                    )
                    query.seen = current
                    query.epochs += 1
                    query.last_delta = delta
                    deltas.append(delta)
                    if delta.empty:
                        continue
                    query.deltas_pushed += 1
                    if self._deltas_metric is not None:
                        self._deltas_metric.inc()
                    # The push is itself a disclosure: the auditor learns
                    # which epoch each match arrived in, beyond the result
                    # cardinalities already on the ledger.
                    service.ctx.leakage.record(
                        "standing_query",
                        "auditor",
                        "standing_delta",
                        f"epoch {epoch} delta for {query.criterion!r}: "
                        f"+{len(delta.added)}/-{len(delta.removed)} glsns "
                        f"(total {delta.total})",
                    )
                    # Live C_DLA: the observatory sees the *delta* records
                    # only — what this epoch actually disclosed on top of
                    # the standing query's history.
                    changed = [
                        service._reconstruct_record(glsn)
                        for glsn in delta.added
                        if glsn in current
                    ]
                    service.observatory.observe_query(
                        query.qplan,
                        changed,
                        1,
                        tenant=query.tenant,
                        criterion=f"standing:{query.criterion}",
                    )
                    if query.on_delta is not None:
                        query.on_delta(delta)
                return deltas

    def snapshot(self) -> dict:
        """Registry state for the telemetry endpoint / debugging."""
        with self._lock:
            return {
                "epoch": self._epoch,
                "queries": [
                    {
                        "id": q.query_id,
                        "criterion": q.criterion,
                        "tenant": q.tenant,
                        "seen": len(q.seen),
                        "epochs": q.epochs,
                        "deltas_pushed": q.deltas_pushed,
                    }
                    for q in self._queries.values()
                ],
            }
