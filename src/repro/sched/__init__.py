"""Concurrent audit-query scheduling (``repro.sched``).

The serial service runs one query at a time over a private network.
This package multiplexes many in-flight queries over one deployment:

* :class:`QueryScheduler` — bounded admission queue + worker pool,
  per-query isolation (context, ledger, cost), cross-query coalescing
  of identical epoch-keyed work, deadline-aware admission;
* :class:`QueryHandle` — a submitted query's future (result, cost
  report, private leakage group, latency);
* :class:`Channel` / :class:`ChannelMux` — tagged logical channels over
  one shared network, so interleaved SMC rounds never cross-talk;
* :class:`SingleFlightCache` — in-flight deduplication of pure
  computations (compute once, fan out);
* :class:`StandingQueryRegistry` — register a criterion once, receive
  per-ingest-epoch deltas (continuous auditing; see docs/storage.md).

Configured by the ``REPRO_SCHED_*`` environment knobs (see
:class:`SchedulerConfig` and docs/perf.md).
"""

from repro.sched.channel import Channel, ChannelMux
from repro.sched.coalesce import SingleFlightCache
from repro.sched.scheduler import (
    ADMISSION_TIMEOUT_ENV_VAR,
    COALESCE_ENV_VAR,
    QUEUE_DEPTH_ENV_VAR,
    WORKERS_ENV_VAR,
    QueryHandle,
    QueryScheduler,
    SchedulerConfig,
)
from repro.sched.standing import StandingDelta, StandingQuery, StandingQueryRegistry

__all__ = [
    "StandingDelta",
    "StandingQuery",
    "StandingQueryRegistry",
    "Channel",
    "ChannelMux",
    "SingleFlightCache",
    "QueryHandle",
    "QueryScheduler",
    "SchedulerConfig",
    "WORKERS_ENV_VAR",
    "QUEUE_DEPTH_ENV_VAR",
    "COALESCE_ENV_VAR",
    "ADMISSION_TIMEOUT_ENV_VAR",
]
