"""Ring failover: supervised protocol launches that survive dead hops.

The SMC ring protocols and the §4.1 integrity ring are *single-shot*
message cascades: one unreachable hop strands the round.  With the
reliability layer active (:class:`~repro.net.simnet.SimNetwork` built
with a :class:`~repro.resilience.RetryPolicy`), probabilistic loss is
repaired by retransmission — what remains are *persistent* failures
(partitions, crashed nodes), which surface as exhausted links in
``net.failed_links``.

:func:`supervise_ring` turns those diagnostics into recovery.  Each
protocol driver hands it a ``launch(alive, avoid)`` callback that
(re)builds the party objects and starts the round; the supervisor then:

1. runs the round and collects results;
2. on a stranded round, diagnoses the failed links;
3. first tries a **re-route** — relaunching with the same participants
   but telling the driver to avoid the failed links (pick a different
   ring order, a different collector, a standby TTP).  A re-routed round
   that completes is *not* degraded: every input is still in the result;
4. if the same links fail again (or a node is unreachable from several
   peers), **excludes** the offending node and relaunches with the
   survivors.  The outcome is then explicitly ``degraded`` and names the
   skipped nodes;
5. gives up with a typed, attributed :class:`RingFailoverError` when no
   excludable node remains, the party floor is reached, or the failover
   budget is spent.  Never a hang, never a silent wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import RingFailoverError
from repro.resilience.policy import Deadline

__all__ = [
    "FailoverOutcome",
    "supervise_ring",
    "supervise_ring_async",
    "ring_avoiding",
    "pick_coordinator",
    "standby_id",
]

#: ``launch(alive, avoid) -> collect``: build the protocol over the alive
#: parties, steering around the ``avoid`` links; the returned ``collect``
#: yields observer values, or ``None`` while the round is incomplete.
Launch = Callable[[list[str], frozenset], Callable[[], dict | None]]


@dataclass(frozen=True)
class FailoverOutcome:
    """Result of a supervised protocol run."""

    values: dict
    degraded: bool
    skipped: tuple[str, ...]
    failovers: int


def ring_avoiding(
    parties: Iterable[str], avoid: frozenset | set, prefer: list[str] | None = None
) -> list[str]:
    """A ring order over ``parties`` avoiding the directed ``avoid`` edges.

    Successor edges (including the wrap-around) must not be in ``avoid``.
    Solved by backtracking — rings are small (a DLA cluster, not a WAN);
    falls back to the preferred/sorted order when no conforming cycle
    exists (the supervisor will then escalate to exclusion).
    """
    base = list(prefer) if prefer is not None else sorted(parties)
    if len(base) <= 1 or not avoid:
        return base
    forbidden = set(avoid)

    def extend(order: list[str], remaining: list[str]) -> list[str] | None:
        if not remaining:
            if (order[-1], order[0]) in forbidden:
                return None
            return order
        for i, candidate in enumerate(remaining):
            if (order[-1], candidate) in forbidden:
                continue
            found = extend(order + [candidate], remaining[:i] + remaining[i + 1 :])
            if found is not None:
                return found
        return None

    solution = extend(base[:1], base[1:])
    return solution if solution is not None else base


def pick_coordinator(
    candidates: list[str], avoid: frozenset | set, default: str | None = None
) -> str:
    """Choose a hub node (collector/TTP host) minimizing avoided links.

    Every party talks to the hub directly, so a candidate incident to any
    avoided link is suspect; the default (or smallest id) wins ties.
    """
    if not candidates:
        raise RingFailoverError("no coordinator candidate remains")

    def incident(node: str) -> int:
        return sum(1 for link in avoid if node in link)

    ordered = sorted(
        candidates, key=lambda n: (incident(n), n != default, n)
    )
    return ordered[0]


def standby_id(base: str, avoid: frozenset | set) -> str:
    """The coordinator id to use this launch, advancing past burned ones.

    TTP-style coordinators hold no private input, so a dead one is not
    *excluded* but *replaced*: ``"ttp"`` fails over to ``"ttp~1"``,
    ``"ttp~2"``, ... — the first id not incident to any avoided link.
    """
    candidate = base
    k = 0
    while any(candidate in link for link in avoid):
        k += 1
        candidate = f"{base}~{k}"
    return candidate


def _diagnose_dead(
    failed: set[tuple[str, str]],
    retried: set[tuple[str, str]],
    excludable: set[str],
) -> set[str]:
    """Nodes to exclude, given this round's failed links.

    ``excludable`` is the set of launched, non-essential participants —
    coordinator nodes (TTP, an out-of-band collector) are never excluded
    here; the driver replaces those itself during a re-route.  A node with
    failed links to/from two or more distinct peers is treated as dead or
    fully partitioned and excluded outright.  A *pairwise* partition (one
    bad link that re-routing did not cure) excludes a single endpoint,
    smallest id first — inputs are shed one at a time, not wholesale.
    """
    peers: dict[str, set[str]] = {}
    for src, dst in failed:
        peers.setdefault(dst, set()).add(src)
        peers.setdefault(src, set()).add(dst)
    dead = {n for n, ps in peers.items() if len(ps) >= 2 and n in excludable}
    if dead:
        return dead
    source = retried or failed
    candidates = sorted(
        {n for link in source for n in link if n in excludable}
    )
    return {candidates[0]} if candidates else set()


def supervise_ring(
    net,
    protocol: str,
    parties: list[str],
    launch: Launch,
    *,
    essential: Iterable[str] = (),
    min_parties: int = 1,
    deadline: Deadline | None = None,
    max_failovers: int | None = None,
    ledger=None,
) -> FailoverOutcome:
    """Run ``launch`` under failover supervision on a reliable ``net``.

    See the module docstring for the recovery ladder.  Raises
    :class:`RingFailoverError` (typed, attributed) when recovery is
    impossible, and :class:`~repro.errors.DeadlineExceededError` when the
    propagated deadline expires first.
    """
    if not net.reliable:
        raise RingFailoverError(
            f"{protocol}: failover supervision requires a resilient transport "
            "(SimNetwork(resilience=RetryPolicy(...)))"
        )
    essential = set(essential)
    alive = list(parties)
    skipped: list[str] = []
    avoid: set[tuple[str, str]] = set()
    failovers = 0
    budget = max_failovers if max_failovers is not None else len(parties) + 3
    deadline = deadline or Deadline.never()

    while True:
        deadline.check(f"{protocol}.launch")
        net.reset_failures()
        collect = launch(list(alive), frozenset(avoid))
        net.run(deadline=deadline)
        values = collect()
        if values is not None:
            if skipped and ledger is not None:
                ledger.record(
                    protocol,
                    "*",
                    "degraded_result",
                    f"result computed without {sorted(skipped)} "
                    f"after {failovers} failover(s)",
                )
            return FailoverOutcome(
                values=values,
                degraded=bool(skipped),
                skipped=tuple(sorted(skipped)),
                failovers=failovers,
            )

        failed = set(net.failed_links)
        if not failed:
            raise RingFailoverError(
                f"{protocol}: round incomplete with no diagnosable link failure "
                f"(skipped={sorted(skipped)})",
                skipped=tuple(skipped),
            )
        if failovers >= budget:
            raise RingFailoverError(
                f"{protocol}: failover budget ({budget}) exhausted; "
                f"last failed links {sorted(failed)}",
                skipped=tuple(skipped),
                failed_links=tuple(sorted(failed)),
            )
        failovers += 1
        net._count(
            "failovers",
            "resilience.failover",
            {"protocol": protocol, "failed_links": sorted(map(list, failed))},
        )

        excludable = set(alive) - essential
        retried = failed & avoid
        fresh = failed - avoid
        # Diagnose over the accumulated history, not just this round: a
        # crashed party whose only link is to the coordinator produces one
        # fresh link per standby swap — only the union of launches reveals
        # it failing toward several distinct peers.
        history = failed | avoid
        avoid |= failed
        if not retried and fresh and not _must_exclude(history, excludable):
            # First sighting of these links: try re-routing before
            # shedding anyone's input.
            continue
        exclude = _diagnose_dead(history, retried, excludable)
        if not exclude:
            raise RingFailoverError(
                f"{protocol}: only essential node(s) remain on failed links "
                f"{sorted(failed)}",
                skipped=tuple(skipped),
                failed_links=tuple(sorted(failed)),
            )
        alive = [p for p in alive if p not in exclude]
        skipped.extend(sorted(exclude))
        # Forget history about the excluded nodes (their links are moot),
        # but keep coordinator-side history so standby choices persist.
        avoid = {link for link in avoid if not (set(link) & exclude)}
        if len(alive) < min_parties:
            raise RingFailoverError(
                f"{protocol}: fewer than {min_parties} parties remain after "
                f"excluding {sorted(skipped)}",
                skipped=tuple(skipped),
            )


async def supervise_ring_async(
    net,
    protocol: str,
    parties: list[str],
    launch: Launch,
    *,
    essential: Iterable[str] = (),
    min_parties: int = 1,
    deadline: Deadline | None = None,
    max_failovers: int | None = None,
    ledger=None,
) -> FailoverOutcome:
    """Coroutine twin of :func:`supervise_ring` for drain-capable nets.

    Identical recovery ladder, identical diagnosis, identical typed
    failures — the only difference is that each round is driven by
    ``await net.drain(...)`` (an :class:`repro.aio.AsyncChannel` or
    :class:`repro.aio.AsyncSimNetwork`) instead of the blocking
    ``net.run(...)``, so independent supervised rounds on one event loop
    pipeline instead of serializing.
    """
    if not net.reliable:
        raise RingFailoverError(
            f"{protocol}: failover supervision requires a resilient transport "
            "(SimNetwork(resilience=RetryPolicy(...)))"
        )
    essential = set(essential)
    alive = list(parties)
    skipped: list[str] = []
    avoid: set[tuple[str, str]] = set()
    failovers = 0
    budget = max_failovers if max_failovers is not None else len(parties) + 3
    deadline = deadline or Deadline.never()

    while True:
        deadline.check(f"{protocol}.launch")
        net.reset_failures()
        collect = launch(list(alive), frozenset(avoid))
        await net.drain(deadline=deadline)
        values = collect()
        if values is not None:
            if skipped and ledger is not None:
                ledger.record(
                    protocol,
                    "*",
                    "degraded_result",
                    f"result computed without {sorted(skipped)} "
                    f"after {failovers} failover(s)",
                )
            return FailoverOutcome(
                values=values,
                degraded=bool(skipped),
                skipped=tuple(sorted(skipped)),
                failovers=failovers,
            )

        failed = set(net.failed_links)
        if not failed:
            raise RingFailoverError(
                f"{protocol}: round incomplete with no diagnosable link failure "
                f"(skipped={sorted(skipped)})",
                skipped=tuple(skipped),
            )
        if failovers >= budget:
            raise RingFailoverError(
                f"{protocol}: failover budget ({budget}) exhausted; "
                f"last failed links {sorted(failed)}",
                skipped=tuple(skipped),
                failed_links=tuple(sorted(failed)),
            )
        failovers += 1
        net._count(
            "failovers",
            "resilience.failover",
            {"protocol": protocol, "failed_links": sorted(map(list, failed))},
        )

        excludable = set(alive) - essential
        retried = failed & avoid
        fresh = failed - avoid
        history = failed | avoid
        avoid |= failed
        if not retried and fresh and not _must_exclude(history, excludable):
            continue
        exclude = _diagnose_dead(history, retried, excludable)
        if not exclude:
            raise RingFailoverError(
                f"{protocol}: only essential node(s) remain on failed links "
                f"{sorted(failed)}",
                skipped=tuple(skipped),
                failed_links=tuple(sorted(failed)),
            )
        alive = [p for p in alive if p not in exclude]
        skipped.extend(sorted(exclude))
        avoid = {link for link in avoid if not (set(link) & exclude)}
        if len(alive) < min_parties:
            raise RingFailoverError(
                f"{protocol}: fewer than {min_parties} parties remain after "
                f"excluding {sorted(skipped)}",
                skipped=tuple(skipped),
            )


def _must_exclude(failed: set[tuple[str, str]], excludable: set[str]) -> bool:
    """True when failures already look like a dead excludable node."""
    peers: dict[str, set[str]] = {}
    for src, dst in failed:
        peers.setdefault(dst, set()).add(src)
        peers.setdefault(src, set()).add(dst)
    return any(
        len(ps) >= 2 and n in excludable for n, ps in peers.items()
    )
