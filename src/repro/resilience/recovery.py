"""The recovery audit: prove integrity immediately after a restart.

A restored store is only trustworthy once the §4.1 integrity sweep has
re-verified every fragment against its accumulator anchor — a crash (or
a restore from a tampered checkpoint/WAL) is exactly the window in which
"access control tables and log records could be modified".  The durable
backend (:mod:`repro.store.recovery`) runs this audit as the final step
of every crash recovery; tests and operators can also invoke it
directly on any store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RecoveryAuditReport", "recovery_audit"]


@dataclass(frozen=True)
class RecoveryAuditReport:
    """Outcome of one post-restart integrity sweep."""

    clean: bool
    checked: int
    #: glsns whose observed accumulator mismatched the stored anchor.
    failures: tuple[int, ...] = field(default_factory=tuple)


def recovery_audit(store, metrics=None) -> RecoveryAuditReport:
    """Local §4.1 sweep of every glsn on every node of ``store``.

    Uses the in-process :class:`~repro.logstore.integrity.IntegrityChecker`
    (the distributed ring variants need a network; right after recovery
    the cluster is by definition local).  Imported lazily — resilience is
    a lower layer than logstore's integrity protocols, which themselves
    use this package's failover supervision.
    """
    from repro.logstore.integrity import IntegrityChecker

    reports = IntegrityChecker(store, metrics=metrics).check_all()
    failures = tuple(r.glsn for r in reports if not r.ok)
    return RecoveryAuditReport(
        clean=not failures, checked=len(reports), failures=failures
    )
