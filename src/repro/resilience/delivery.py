"""At-least-once delivery support: message ids and receiver-side dedup.

Retrying a send composes safely with the network's own duplication
(``FaultPlan.duplicate_rate``) only if receivers are *idempotent*.  The
transports achieve that with two pieces:

* every reliable message carries a ``msg_id`` unique per sender
  (``"<node>#<n>"``), assigned once and preserved across retransmissions;
* each receiver keeps a :class:`DedupWindow` per incoming link and drops
  (but re-acknowledges) any id it has already dispatched.

The window is bounded: ids older than ``capacity`` deliveries on one link
are forgotten, which is safe as long as the retry budget keeps
retransmissions of one message closer together than ``capacity``
unrelated deliveries — true by construction here, since a sender stops
retrying after :attr:`~repro.resilience.RetryPolicy.max_attempts`.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict

from repro.errors import ConfigurationError

__all__ = ["DedupWindow", "MessageIdAllocator"]


class MessageIdAllocator:
    """Per-sender monotonic message ids (``"P0#17"``)."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self._counter = itertools.count(1)

    def next_id(self) -> str:
        return f"{self.node_id}#{next(self._counter)}"


class DedupWindow:
    """Bounded per-link memory of already-delivered message ids.

    ``seen(link, msg_id)`` records the id and returns whether it was
    already present — the caller drops duplicates and (for reliable
    links) re-acknowledges them so a lost ack does not strand the sender.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ConfigurationError("dedup window capacity must be positive")
        self.capacity = capacity
        self._links: dict[tuple[str, str], OrderedDict[str, None]] = {}
        self.duplicates = 0

    def seen(self, link: tuple[str, str], msg_id: str) -> bool:
        window = self._links.setdefault(link, OrderedDict())
        if msg_id in window:
            window.move_to_end(msg_id)
            self.duplicates += 1
            return True
        window[msg_id] = None
        if len(window) > self.capacity:
            window.popitem(last=False)
        return False

    def forget_link(self, link: tuple[str, str]) -> None:
        self._links.pop(link, None)

    def clear(self) -> None:
        self._links.clear()

    def __len__(self) -> int:
        return sum(len(w) for w in self._links.values())
