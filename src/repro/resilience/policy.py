"""Retry and deadline policies for fault-tolerant protocol execution.

The transports and ring protocols tolerate message loss by *retrying*
(at-least-once delivery) and bound the damage of a dead peer by
*deadlines* that propagate from
:meth:`repro.core.service.ConfidentialAuditingService.audited_query` down
through the planner and executor into every SMC round.

Both knobs are deterministic: backoff jitter is drawn from a
:class:`~repro.crypto.rng.DeterministicRng`, so a seeded chaos run
retries at exactly the same (virtual) times every time.

Environment overrides (read by :meth:`RetryPolicy.from_env`):

``REPRO_RETRY_ATTEMPTS``
    Total delivery attempts per message (default 4).
``REPRO_RETRY_BASE_DELAY`` / ``REPRO_RETRY_MAX_DELAY``
    First-retry backoff and its cap, in (virtual) seconds.
``REPRO_RETRY_ACK_TIMEOUT``
    How long a sender waits for an acknowledgement before retrying.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError, DeadlineExceededError

__all__ = ["Deadline", "RetryPolicy"]


class Deadline:
    """A wall-clock time budget threaded through a call chain.

    Constructed once at the top of an operation
    (``Deadline.after(seconds)``) and passed down; every layer that can
    block calls :meth:`check` (raises) or :meth:`clamp` (bounds its own
    timeout).  ``Deadline.never()`` is an infinite budget that all checks
    pass, so call sites need no ``None`` branches.
    """

    __slots__ = ("_expires_at",)

    def __init__(self, expires_at: float | None) -> None:
        self._expires_at = expires_at

    @classmethod
    def after(cls, seconds: float | None) -> "Deadline":
        """Budget of ``seconds`` from now (``None`` -> no deadline)."""
        if seconds is None:
            return cls(None)
        if seconds < 0:
            raise ConfigurationError(f"deadline must be non-negative, got {seconds}")
        return cls(time.monotonic() + seconds)

    @classmethod
    def never(cls) -> "Deadline":
        return cls(None)

    @property
    def is_finite(self) -> bool:
        return self._expires_at is not None

    def remaining(self) -> float:
        """Seconds left (``inf`` when infinite; clamped at 0)."""
        if self._expires_at is None:
            return float("inf")
        return max(0.0, self._expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def check(self, stage: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"deadline exceeded{f' in {stage}' if stage else ''}", stage=stage
            )

    def clamp(self, timeout: float | None) -> float | None:
        """The tighter of ``timeout`` and the remaining budget."""
        if self._expires_at is None:
            return timeout
        rest = self.remaining()
        return rest if timeout is None else min(timeout, rest)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._expires_at is None:
            return "Deadline(never)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError as exc:
        raise ConfigurationError(f"{name} must be a number, got {raw!r}") from exc


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ConfigurationError(f"{name} must be an integer, got {raw!r}") from exc


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Attempt ``i`` (1-based; attempt 1 is the original send) that fails
    waits ``min(base_delay * multiplier**(i-1), max_delay)`` scaled by a
    jitter factor in ``[1-jitter, 1+jitter]`` before attempt ``i+1``.
    ``ack_timeout`` is how long a reliable sender waits for the receiver's
    acknowledgement before declaring the attempt lost.

    Jitter randomness comes from ``rng`` (a spawned child stream, so the
    protocol parties' randomness is untouched); with the default seed the
    whole retry schedule is reproducible.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    ack_timeout: float = 0.25
    rng: DeterministicRng = field(
        default_factory=lambda: DeterministicRng(b"retry-policy"), repr=False
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.ack_timeout <= 0:
            raise ConfigurationError("retry delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")

    @classmethod
    def from_env(cls, rng: DeterministicRng | None = None) -> "RetryPolicy":
        """Build a policy from ``REPRO_RETRY_*`` environment variables."""
        return cls(
            max_attempts=_env_int("REPRO_RETRY_ATTEMPTS", 4),
            base_delay=_env_float("REPRO_RETRY_BASE_DELAY", 0.05),
            max_delay=_env_float("REPRO_RETRY_MAX_DELAY", 2.0),
            ack_timeout=_env_float("REPRO_RETRY_ACK_TIMEOUT", 0.25),
            rng=rng or DeterministicRng(b"retry-policy"),
        )

    def backoff(self, attempt: int) -> float:
        """Delay before the retry that follows failed attempt ``attempt``."""
        if attempt < 1:
            raise ConfigurationError("attempt numbers are 1-based")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if not self.jitter:
            return raw
        factor = 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        return raw * factor

    def exhausted(self, attempt: int) -> bool:
        return attempt >= self.max_attempts
