"""Fault-tolerant protocol execution for the DLA stack.

This package supplies the three layers of the failure model documented in
``docs/resilience.md``:

* :class:`RetryPolicy` / :class:`Deadline` — bounded retries with
  deterministic jittered backoff, and a wall-clock budget that propagates
  from :meth:`ConfidentialAuditingService.audit` down into every SMC
  round;
* :class:`MessageIdAllocator` / :class:`DedupWindow` — at-least-once
  delivery with idempotent receive, so retransmissions compose safely
  with network-level duplication;
* :func:`supervise_ring` — ring failover: diagnose a dead or partitioned
  hop, re-route around it, or degrade gracefully with an explicit
  skipped-node list;
* :func:`recovery_audit` — the post-restart §4.1 integrity sweep the
  durable backend runs at the end of every crash recovery.
"""

from repro.resilience.delivery import DedupWindow, MessageIdAllocator
from repro.resilience.failover import (
    FailoverOutcome,
    pick_coordinator,
    ring_avoiding,
    standby_id,
    supervise_ring,
    supervise_ring_async,
)
from repro.resilience.policy import Deadline, RetryPolicy
from repro.resilience.recovery import RecoveryAuditReport, recovery_audit

__all__ = [
    "Deadline",
    "DedupWindow",
    "FailoverOutcome",
    "MessageIdAllocator",
    "RecoveryAuditReport",
    "RetryPolicy",
    "recovery_audit",
    "pick_coordinator",
    "ring_avoiding",
    "standby_id",
    "supervise_ring",
    "supervise_ring_async",
]
