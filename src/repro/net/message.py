"""Message model for the DLA network substrate.

Every protocol in the library — ring-routed commutative encryption, share
distribution, accumulator circulation, join handshakes — exchanges
:class:`Message` objects.  A message is addressed node-to-node, carries a
``kind`` tag that receivers dispatch on, an arbitrary JSON-serializable
``payload``, and bookkeeping fields filled in by the transport (sequence
number, virtual send/deliver times, size in bytes).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "NodeId"]

NodeId = str

_sequence = itertools.count(1)


@dataclass
class Message:
    """One unit of network traffic.

    Attributes
    ----------
    src, dst:
        Node identifiers (strings; e.g. ``"P0"``, ``"u3"``, ``"ttp"``).
    kind:
        Protocol-level tag, e.g. ``"ssi.relay"``, ``"sum.share"``.
    payload:
        JSON-serializable body.  Conventionally a dict.
    seq:
        Globally unique message sequence number (assigned at creation).
    sent_at, delivered_at:
        Virtual-clock timestamps stamped by the simulated network; remain
        ``None`` on transports without a virtual clock.
    size_bytes:
        Encoded size, stamped by the transport for cost accounting.
    msg_id:
        At-least-once delivery id (``"<sender>#<n>"``), assigned by a
        reliable transport on first send and preserved verbatim across
        retransmissions so receivers can deduplicate.  ``None`` on
        unreliable (single-shot) transports.
    channel:
        Logical channel tag (``repro.sched``): when several concurrent
        audit queries multiplex one physical network, each query's
        traffic carries its channel tag so interleaved SMC rounds are
        dispatched to the right query's handlers and never cross-talk.
        ``None`` (the default) on plain single-query transports.
    trace_id, parent_span_id:
        Trace-context propagation (``repro.obs``): the trace this message
        belongs to and the sender's open span as a ``"node:span_id"``
        reference.  Stamped by telemetry-enabled transports at send time,
        preserved across :meth:`reply`/:meth:`forwarded` like ``channel``
        so a whole ring circulation stays in one trace.  ``None`` when
        tracing is off — the codec then omits both fields entirely.
    """

    src: NodeId
    dst: NodeId
    kind: str
    payload: Any = None
    seq: int = field(default_factory=lambda: next(_sequence))
    sent_at: float | None = None
    delivered_at: float | None = None
    size_bytes: int = 0
    msg_id: str | None = None
    channel: str | None = None
    trace_id: str | None = None
    parent_span_id: str | None = None

    def reply(self, kind: str, payload: Any = None) -> "Message":
        """Construct a response addressed back to this message's sender."""
        return Message(
            src=self.dst, dst=self.src, kind=kind, payload=payload,
            channel=self.channel,
            trace_id=self.trace_id, parent_span_id=self.parent_span_id,
        )

    def forwarded(self, new_dst: NodeId, payload: Any = None) -> "Message":
        """Construct a relay of this message from its receiver to ``new_dst``.

        Used by ring protocols: each hop re-addresses the (re-encrypted)
        payload to the next node.
        """
        return Message(
            src=self.dst,
            dst=new_dst,
            kind=self.kind,
            payload=self.payload if payload is None else payload,
            channel=self.channel,
            trace_id=self.trace_id,
            parent_span_id=self.parent_span_id,
        )
