"""Real-socket transport: the same message interface over localhost TCP.

The paper's repro path is "simple sockets"; this module provides it.  Each
:class:`TcpNode` binds a listening socket, runs a reader thread per peer
connection, and hands decoded :class:`~repro.net.message.Message` objects to
the same ``handler(msg, transport)`` signature the simulator uses — so any
protocol written for :class:`~repro.net.simnet.SimNetwork` runs unmodified
over TCP (the integration tests do exactly that).

Resilience hooks (see ``docs/resilience.md``):

* connect/receive timeouts are configurable per node (and via the
  ``REPRO_TCP_CONNECT_TIMEOUT`` / ``REPRO_TCP_RECV_TIMEOUT`` env vars)
  instead of hard-coded; a blocking :meth:`TcpNode.receive` can also be
  clamped by a propagated :class:`~repro.resilience.Deadline` and raises
  the typed :class:`~repro.errors.TransportTimeout`;
* frames carry a CRC-32 (see :mod:`repro.net.codec`); a corrupted frame is
  counted and dropped instead of killing the connection;
* messages stamped with a ``msg_id`` (retransmissions from a reliability
  layer) are deduplicated per incoming link before dispatch.

A :class:`TcpCluster` convenience spins up N nodes on ephemeral ports and
wires a shared address book.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
from typing import Callable

from repro.errors import NodeUnreachableError, TransportClosedError, TransportTimeout
from repro.net.codec import FRAME_HEADER_BYTES, decode_frames, encode_frame
from repro.net.message import Message, NodeId
from repro.net.stats import NetworkStats
from repro.obs.tracer import NOOP_TRACER
from repro.resilience.delivery import DedupWindow
from repro.resilience.policy import Deadline

__all__ = ["TcpNode", "TcpCluster"]

Handler = Callable[[Message, "TcpNode"], None]

_RECV_CHUNK = 65536

#: Fallback time budgets, overridable per node or via environment.
DEFAULT_CONNECT_TIMEOUT = 10.0
DEFAULT_RECV_TIMEOUT = 10.0


def _env_timeout(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


class TcpNode:
    """One networked participant: a listener plus outbound connections."""

    def __init__(
        self,
        node_id: NodeId,
        handler: Handler | None = None,
        tracer=None,
        metrics=None,
        connect_timeout: float | None = None,
        recv_timeout: float | None = None,
        telemetry=None,
    ) -> None:
        self.node_id = node_id
        self.stats = NetworkStats()
        # Cross-node tracing (repro.obs.flight): outgoing messages are
        # stamped with the sender's open span reference, and deliveries
        # run inside per-node flight-recorder spans under that parent.
        self.telemetry = telemetry
        # Send events attach to the sender's open span.  Receives land on
        # a reader thread whose span stack is empty, so each delivery runs
        # inside its own short ``tcp.recv`` root span there — relay sends
        # the handler issues on that thread nest under it as events.
        self.tracer = tracer or NOOP_TRACER
        if metrics is not None:
            self.stats.attach_metrics(metrics)
        self.connect_timeout = (
            connect_timeout
            if connect_timeout is not None
            else _env_timeout("REPRO_TCP_CONNECT_TIMEOUT", DEFAULT_CONNECT_TIMEOUT)
        )
        self.recv_timeout = (
            recv_timeout
            if recv_timeout is not None
            else _env_timeout("REPRO_TCP_RECV_TIMEOUT", DEFAULT_RECV_TIMEOUT)
        )
        self.corrupt_frames = 0
        self.duplicates_dropped = 0
        self._dedup = DedupWindow()
        self._dedup_lock = threading.Lock()
        self._handler = handler
        # Per-channel handlers (scheduler multiplexing): a message tagged
        # with a registered channel routes here instead of the default
        # handler, so interleaved protocol rounds of concurrent queries
        # sharing one TCP mesh never cross-dispatch.
        self._channel_handlers: dict[str, Handler] = {}
        self._channel_lock = threading.Lock()
        self._address_book: dict[NodeId, tuple[str, int]] = {}
        self._outbound: dict[NodeId, socket.socket] = {}
        self._outbound_lock = threading.Lock()
        # Peers this node ever connected to: a later connect to one of
        # them is a *re*connect in the pool-health ledger.
        self._ever_connected: set[NodeId] = set()
        self._inbox: queue.Queue[Message] = queue.Queue()
        self._closed = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-{node_id}", daemon=True
        )
        self._accept_thread.start()

    # -- wiring -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()

    def set_handler(self, handler: Handler) -> None:
        self._handler = handler

    def register_channel(self, tag: str, handler: Handler) -> None:
        """Route deliveries tagged ``channel=tag`` to a dedicated handler."""
        with self._channel_lock:
            self._channel_handlers[tag] = handler

    def unregister_channel(self, tag: str) -> None:
        with self._channel_lock:
            self._channel_handlers.pop(tag, None)

    def learn_peers(self, address_book: dict[NodeId, tuple[str, int]]) -> None:
        """Install the cluster address book (node id -> (host, port))."""
        self._address_book.update(address_book)

    # -- sending ----------------------------------------------------------

    def _connect(self, dst: NodeId) -> socket.socket:
        try:
            sock = socket.create_connection(
                self._address_book[dst], timeout=self.connect_timeout
            )
        except (socket.timeout, TimeoutError) as exc:
            raise TransportTimeout(
                f"{self.node_id}: connect to {dst!r} exceeded "
                f"{self.connect_timeout}s"
            ) from exc
        # Frames are small and latency-sensitive; never let Nagle hold them.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._outbound[dst] = sock
        self.stats.record_connect(dst, reconnect=dst in self._ever_connected)
        self._ever_connected.add(dst)
        return sock

    def _ship(self, dst: NodeId, payload: bytes) -> None:
        """Write raw bytes to a peer, (re)connecting lazily.  Lock held."""
        sock = self._outbound.get(dst)
        if sock is None:
            sock = self._connect(dst)
        try:
            sock.sendall(payload)
        except OSError:
            # One reconnect attempt: the peer may have restarted.
            sock.close()
            self.stats.record_disconnect(dst)
            sock = self._connect(dst)
            sock.sendall(payload)

    def _stamp_trace_context(self, msg: Message) -> None:
        """Attach the sender's open span reference before framing.

        Replies/forwards already carry their inbound context; telemetry
        traffic (``obs.*``) is never stamped.
        """
        hub = self.telemetry
        if (
            hub is None
            or not hub.enabled
            or msg.trace_id is not None
            or msg.kind.startswith("obs.")
        ):
            return
        context = hub.sender_context(msg.src)
        if context is not None:
            msg.trace_id, msg.parent_span_id = context

    def send(self, msg: Message) -> None:
        """Send one framed message, connecting lazily on first use."""
        if self._closed.is_set():
            raise TransportClosedError(f"{self.node_id} is closed")
        if msg.dst not in self._address_book:
            raise NodeUnreachableError(f"unknown peer {msg.dst!r}")
        self._stamp_trace_context(msg)
        frame = encode_frame(msg)
        msg.size_bytes = len(frame) - FRAME_HEADER_BYTES
        with self._outbound_lock:
            self._ship(msg.dst, frame)
        # ``obs.*`` collection traffic is telemetry plumbing, not protocol
        # cost — keep it out of the stats ledger (mirrors SimNetwork).
        if not msg.kind.startswith("obs."):
            self.stats.record(msg.kind, msg.size_bytes, msg.src, msg.dst)
        if self.tracer.enabled:
            self.tracer.add_event(
                "net.send",
                {
                    "src": msg.src,
                    "dst": msg.dst,
                    "kind": msg.kind,
                    "bytes": msg.size_bytes,
                },
            )

    def send_many(self, msgs: list[Message]) -> None:
        """Ship several messages, one write per peer instead of per message.

        Frames to the same destination are concatenated and flushed in a
        single ``sendall`` (frames are self-delimiting, so receivers need
        no changes) — with ``TCP_NODELAY`` this coalesces a burst into one
        segment instead of one syscall+segment per message.  Relative
        order per destination is preserved; stats count each message.
        """
        if self._closed.is_set():
            raise TransportClosedError(f"{self.node_id} is closed")
        batches: dict[NodeId, bytearray] = {}
        for msg in msgs:
            if msg.dst not in self._address_book:
                raise NodeUnreachableError(f"unknown peer {msg.dst!r}")
            self._stamp_trace_context(msg)
            frame = encode_frame(msg)
            msg.size_bytes = len(frame) - FRAME_HEADER_BYTES
            batches.setdefault(msg.dst, bytearray()).extend(frame)
        with self._outbound_lock:
            for dst, payload in batches.items():
                self._ship(dst, bytes(payload))
        for msg in msgs:
            if not msg.kind.startswith("obs."):
                self.stats.record(msg.kind, msg.size_bytes, msg.src, msg.dst)
            if self.tracer.enabled:
                self.tracer.add_event(
                    "net.send",
                    {
                        "src": msg.src,
                        "dst": msg.dst,
                        "kind": msg.kind,
                        "bytes": msg.size_bytes,
                    },
                )

    # -- receiving --------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass  # peer may have closed already; reader loop will notice
            threading.Thread(
                target=self._reader_loop,
                args=(conn,),
                name=f"tcp-read-{self.node_id}",
                daemon=True,
            ).start()

    def _on_corrupt(self, error) -> None:
        self.corrupt_frames += 1
        if self.tracer.enabled:
            self.tracer.add_event(
                "net.corrupt_drop", {"node": self.node_id, "error": str(error)}
            )

    def _reader_loop(self, conn: socket.socket) -> None:
        buffer = bytearray()
        with conn:
            while not self._closed.is_set():
                try:
                    chunk = conn.recv(_RECV_CHUNK)
                except OSError:
                    return
                if not chunk:
                    return
                buffer.extend(chunk)
                for msg in decode_frames(buffer, on_corrupt=self._on_corrupt):
                    self._dispatch(msg)

    def _dispatch(self, msg: Message) -> None:
        if msg.msg_id is not None:
            with self._dedup_lock:
                duplicate = self._dedup.seen((msg.src, msg.dst), msg.msg_id)
            if duplicate:
                self.duplicates_dropped += 1
                if self.tracer.enabled:
                    self.tracer.add_event(
                        "resilience.duplicate_dropped",
                        {"node": self.node_id, "mid": msg.msg_id},
                    )
                return
        hub = self.telemetry
        if hub is not None and hub.enabled and not msg.kind.startswith("obs."):
            # Cross-node mode: the delivery runs inside a flight-recorder
            # span at this node, parented to the propagated sender span.
            with hub.node_span(
                self.node_id,
                f"node.{msg.kind}",
                {
                    "node": self.node_id,
                    "kind": msg.kind,
                    "src": msg.src,
                    "messages": 1,
                    "bytes": msg.size_bytes,
                },
                trace_id=msg.trace_id,
                remote_parent=msg.parent_span_id,
            ):
                self._deliver(msg)
        elif self.tracer.enabled:
            with self.tracer.span(
                "tcp.recv",
                {"node": self.node_id, "src": msg.src, "kind": msg.kind},
            ):
                self.tracer.add_event(
                    "net.recv", {"src": msg.src, "dst": msg.dst, "kind": msg.kind}
                )
                self._deliver(msg)
        else:
            self._deliver(msg)

    def _deliver(self, msg: Message) -> None:
        if msg.channel is not None:
            with self._channel_lock:
                channel_handler = self._channel_handlers.get(msg.channel)
            if channel_handler is not None:
                channel_handler(msg, self)
                return
        if self._handler is not None:
            self._handler(msg, self)
        else:
            self._inbox.put(msg)

    def receive(
        self, timeout: float | None = None, deadline: Deadline | None = None
    ) -> Message:
        """Blocking receive for handler-less (pull-style) usage.

        Waits up to ``timeout`` (default: the node's ``recv_timeout``),
        clamped by ``deadline`` when one is propagated from above.  Raises
        :class:`TransportTimeout` when the budget expires — a typed,
        retryable condition, distinct from :class:`TransportClosedError`.
        """
        budget = self.recv_timeout if timeout is None else timeout
        if deadline is not None:
            deadline.check(f"tcp.receive[{self.node_id}]")
            budget = deadline.clamp(budget)
        try:
            return self._inbox.get(timeout=budget)
        except queue.Empty as exc:
            raise TransportTimeout(
                f"{self.node_id}: no message within {budget}s"
            ) from exc

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._outbound_lock:
            for dst, sock in self._outbound.items():
                try:
                    sock.close()
                except OSError:
                    pass
                self.stats.record_disconnect(dst)
            self._outbound.clear()

    def __enter__(self) -> "TcpNode":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TcpCluster:
    """Spin up ``node_ids`` on ephemeral localhost ports, fully meshed."""

    def __init__(
        self,
        node_ids: list[NodeId],
        tracer=None,
        metrics=None,
        connect_timeout: float | None = None,
        recv_timeout: float | None = None,
        telemetry=None,
    ) -> None:
        self.telemetry = telemetry
        self.nodes: dict[NodeId, TcpNode] = {
            node_id: TcpNode(
                node_id,
                tracer=tracer,
                metrics=metrics,
                connect_timeout=connect_timeout,
                recv_timeout=recv_timeout,
                telemetry=telemetry,
            )
            for node_id in node_ids
        }
        book = {node_id: node.address for node_id, node in self.nodes.items()}
        for node in self.nodes.values():
            node.learn_peers(book)

    def __getitem__(self, node_id: NodeId) -> TcpNode:
        return self.nodes[node_id]

    def close(self) -> None:
        for node in self.nodes.values():
            node.close()

    def __enter__(self) -> "TcpCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
