"""Wire codec: length-prefixed JSON framing with big-int support.

The real-socket transport and the simulated network share one encoding so
byte counts are comparable.  JSON is the body format; Python's arbitrary-
precision ints (ciphertexts, shares, commitments routinely exceed 2^64) are
encoded losslessly as ``{"__bigint__": "<hex>"}`` wrappers, and ``bytes`` as
``{"__bytes__": "<hex>"}``.  Frames are ``4-byte big-endian length ||
4-byte CRC-32 of the body || body``; the checksum lets stream transports
*detect* payload corruption (a tampered or bit-flipped frame) instead of
dispatching garbage — the resilience layer then treats a corrupt frame as
a loss and repairs it by retransmission.

Batched fast path: an all-int list containing at least one big int — the
shape of every ciphertext vector the SMC ring protocols ship — encodes as
one flat ``{"__bigints__": ["<hex>", ...]}`` wrapper instead of a
per-element dict, cutting per-element framing overhead roughly 4×.
Decoding accepts both forms, so new readers remain wire-compatible with
frames produced by the legacy per-element encoder.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Callable

from repro.errors import CodecError
from repro.net.message import Message

__all__ = [
    "encode_message",
    "decode_message",
    "encode_frame",
    "decode_frames",
    "encode_payload",
    "decode_payload",
    "encoded_size",
    "FRAME_HEADER_BYTES",
]

_MAX_FRAME = 64 * 1024 * 1024  # 64 MiB guard against corrupted length prefixes
_JSON_SAFE_INT = 1 << 53       # beyond this, ints round-trip unreliably via JSON readers


_RESERVED_KEYS = ("__bigint__", "__bigints__", "__bytes__")


def _int_to_hex(value: int) -> str:
    sign = "-" if value < 0 else ""
    return sign + format(abs(value), "x")


def _hex_to_int(text: str) -> int:
    negative = text.startswith("-")
    return -int(text[1:], 16) if negative else int(text, 16)


def _batchable(value) -> bool:
    """All-int list (bools excluded) with at least one JSON-unsafe element."""
    if len(value) < 2:
        return False
    big = False
    for v in value:
        if type(v) is not int:
            return False
        if not big and not -_JSON_SAFE_INT < v < _JSON_SAFE_INT:
            big = True
    return big


def _pack(value: Any) -> Any:
    """Recursively wrap big ints and bytes into JSON-safe structures."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        if -_JSON_SAFE_INT < value < _JSON_SAFE_INT:
            return value
        return {"__bigint__": _int_to_hex(value)}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        if _batchable(value):
            return {"__bigints__": [_int_to_hex(v) for v in value]}
        return [_pack(v) for v in value]
    if isinstance(value, dict):
        packed = {}
        for key, val in value.items():
            if not isinstance(key, str):
                raise CodecError(f"message dict keys must be str, got {key!r}")
            if key in _RESERVED_KEYS:
                raise CodecError(f"reserved key {key!r} in payload")
            packed[key] = _pack(val)
        return packed
    if value is None or isinstance(value, (str, float)):
        return value
    raise CodecError(f"cannot encode value of type {type(value)!r}")


def _unpack(value: Any) -> Any:
    """Inverse of :func:`_pack` (accepts batched and legacy big-int forms)."""
    if isinstance(value, list):
        return [_unpack(v) for v in value]
    if isinstance(value, dict):
        if set(value) == {"__bigint__"}:
            return _hex_to_int(value["__bigint__"])
        if set(value) == {"__bigints__"}:
            return [_hex_to_int(text) for text in value["__bigints__"]]
        if set(value) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        return {k: _unpack(v) for k, v in value.items()}
    return value


def encode_payload(value: Any) -> bytes:
    """Serialize one bare payload value (no message envelope).

    The same big-int/bytes wrapping as :func:`encode_message` — including
    the batched ``__bigints__`` fast path — so non-wire consumers (the
    durable store's write-ahead log) share the wire codec instead of
    inventing a second losslessly-big-int format.
    """
    try:
        return json.dumps(_pack(value), separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"failed to encode payload: {exc}") from exc


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`."""
    try:
        return _unpack(json.loads(data.decode("utf-8")))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CodecError(f"failed to decode payload: {exc}") from exc


def encode_message(msg: Message) -> bytes:
    """Serialize a message body (without frame header)."""
    try:
        body = {
            "src": msg.src,
            "dst": msg.dst,
            "kind": msg.kind,
            "seq": msg.seq,
            "payload": _pack(msg.payload),
        }
        if msg.msg_id is not None:
            body["mid"] = msg.msg_id
        if msg.channel is not None:
            body["ch"] = msg.channel
        if msg.trace_id is not None:
            body["tid"] = msg.trace_id
        if msg.parent_span_id is not None:
            body["psp"] = msg.parent_span_id
        return json.dumps(body, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"failed to encode message {msg.kind!r}: {exc}") from exc


def decode_message(data: bytes) -> Message:
    """Deserialize a message body produced by :func:`encode_message`."""
    try:
        body = json.loads(data.decode("utf-8"))
        msg = Message(
            src=body["src"],
            dst=body["dst"],
            kind=body["kind"],
            payload=_unpack(body.get("payload")),
        )
        msg.seq = body.get("seq", msg.seq)
        msg.msg_id = body.get("mid")
        msg.channel = body.get("ch")
        msg.trace_id = body.get("tid")
        msg.parent_span_id = body.get("psp")
        msg.size_bytes = len(data)
        return msg
    except (KeyError, ValueError, UnicodeDecodeError) as exc:
        raise CodecError(f"failed to decode message: {exc}") from exc


#: Bytes of frame header: 4-byte length + 4-byte CRC-32 of the body.
FRAME_HEADER_BYTES = 8


def encode_frame(msg: Message) -> bytes:
    """Serialize with a length + CRC-32 header for stream transports."""
    body = encode_message(msg)
    if len(body) > _MAX_FRAME:
        raise CodecError(f"frame too large: {len(body)} bytes")
    checksum = zlib.crc32(body) & 0xFFFFFFFF
    return len(body).to_bytes(4, "big") + checksum.to_bytes(4, "big") + body


def decode_frames(
    buffer: bytearray,
    on_corrupt: Callable[[CodecError], None] | None = None,
) -> list[Message]:
    """Pull every complete frame out of ``buffer`` (consumed in place).

    A frame whose CRC-32 does not match its body raises
    :class:`CodecError` — unless ``on_corrupt`` is given, in which case
    the bad frame is skipped (already consumed), the callback is invoked,
    and decoding continues with the next frame.  Transports pass a
    callback so one corrupted frame costs one message, not the
    connection.
    """
    messages = []
    while len(buffer) >= 4:
        length = int.from_bytes(buffer[:4], "big")
        if length > _MAX_FRAME:
            raise CodecError(f"frame length {length} exceeds limit")
        if len(buffer) < FRAME_HEADER_BYTES + length:
            break
        expected_crc = int.from_bytes(buffer[4:8], "big")
        body = bytes(buffer[FRAME_HEADER_BYTES : FRAME_HEADER_BYTES + length])
        del buffer[: FRAME_HEADER_BYTES + length]
        actual_crc = zlib.crc32(body) & 0xFFFFFFFF
        if actual_crc != expected_crc:
            error = CodecError(
                f"frame checksum mismatch: expected {expected_crc:#010x}, "
                f"got {actual_crc:#010x}"
            )
            if on_corrupt is None:
                raise error
            on_corrupt(error)
            continue
        messages.append(decode_message(body))
    return messages


def encoded_size(msg: Message) -> int:
    """Byte size of the message on the wire (body only, no frame header)."""
    return len(encode_message(msg))
