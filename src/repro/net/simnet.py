"""Event-driven simulated network with a virtual clock.

This is the default substrate the protocols run on.  It delivers messages
in virtual-time order through per-link latency and bandwidth models, counts
every message/byte (see :mod:`repro.net.stats`), and consults an optional
:class:`~repro.net.faults.FaultPlan` on each send.

The paper assumes "message routing is handled by the lower network layer";
``SimNetwork`` *is* that layer.  Substitution note (DESIGN.md): the paper
deployed on dedicated appliance nodes; every protocol here is written
against the abstract ``send/handler`` interface, so the identical protocol
code also runs over real sockets (:mod:`repro.net.transport_tcp`).

Usage::

    net = SimNetwork()
    net.register("P0", handler_p0)   # handler: (Message, SimNetwork) -> None
    net.register("P1", handler_p1)
    net.send(Message("P0", "P1", "ping", {"x": 1}))
    net.run()                         # drain the event queue
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError, NodeUnreachableError
from repro.net.codec import encoded_size
from repro.net.faults import FaultPlan
from repro.net.message import Message, NodeId
from repro.net.stats import NetworkStats
from repro.obs.tracer import NOOP_TRACER

__all__ = ["LinkModel", "SimNetwork"]

Handler = Callable[[Message, "SimNetwork"], None]


@dataclass(frozen=True)
class LinkModel:
    """Latency/bandwidth model for one link (or the default for all links).

    Delivery time = ``latency + size_bytes / bandwidth`` (seconds of
    virtual time); ``bandwidth`` is bytes per virtual second.
    """

    latency: float = 0.001
    bandwidth: float = 125_000_000.0  # ~1 Gbit/s

    def delay_for(self, size_bytes: int) -> float:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ConfigurationError("invalid link model")
        return self.latency + size_bytes / self.bandwidth


class SimNetwork:
    """Deterministic discrete-event message network."""

    def __init__(
        self,
        default_link: LinkModel | None = None,
        faults: FaultPlan | None = None,
        tracer=None,
        metrics=None,
    ) -> None:
        self.default_link = default_link or LinkModel()
        self.faults = faults
        self.stats = NetworkStats()
        # Span events on send/recv/drop attach to whatever span is open in
        # the caller (a protocol stage, a query plan node, ...).
        self.tracer = tracer or NOOP_TRACER
        if metrics is not None:
            self.stats.attach_metrics(metrics)
        self.now = 0.0
        self._handlers: dict[NodeId, Handler] = {}
        self._links: dict[tuple[NodeId, NodeId], LinkModel] = {}
        self._queue: list[tuple[float, int, Message]] = []
        self._tiebreak = itertools.count()
        self._delivered_log: list[Message] = []
        self.keep_delivery_log = False

    # -- wiring -----------------------------------------------------------

    def register(self, node_id: NodeId, handler: Handler) -> None:
        """Attach a node's message handler.  Re-registering replaces it."""
        self._handlers[node_id] = handler

    def unregister(self, node_id: NodeId) -> None:
        self._handlers.pop(node_id, None)

    @property
    def node_ids(self) -> list[NodeId]:
        return sorted(self._handlers)

    def set_link(self, src: NodeId, dst: NodeId, model: LinkModel) -> None:
        """Override the link model for one directed pair."""
        self._links[(src, dst)] = model

    def link_for(self, src: NodeId, dst: NodeId) -> LinkModel:
        return self._links.get((src, dst), self.default_link)

    # -- traffic ----------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Enqueue a message for future delivery.

        Unknown destinations raise immediately — a misrouted protocol is a
        bug we want loud, not a silent drop.
        """
        if msg.dst not in self._handlers:
            raise NodeUnreachableError(f"no node registered as {msg.dst!r}")
        size = encoded_size(msg)
        msg.size_bytes = size
        msg.sent_at = self.now

        extra_delay = 0.0
        copies = 1
        if self.faults is not None:
            decision = self.faults.decide(msg)
            if decision.drop:
                self.stats.record_drop()
                if self.tracer.enabled:
                    self.tracer.add_event(
                        "net.drop",
                        {"src": msg.src, "dst": msg.dst, "kind": msg.kind},
                    )
                return
            extra_delay = decision.extra_delay
            if decision.duplicate:
                copies = 2

        if self.tracer.enabled:
            self.tracer.add_event(
                "net.send",
                {"src": msg.src, "dst": msg.dst, "kind": msg.kind, "bytes": size},
            )
        delay = self.link_for(msg.src, msg.dst).delay_for(size) + extra_delay
        for _ in range(copies):
            heapq.heappush(
                self._queue, (self.now + delay, next(self._tiebreak), msg)
            )

    def send_many(self, msgs: list[Message]) -> None:
        """Enqueue several messages (interface parity with ``TcpNode``).

        The simulator has no per-syscall cost to coalesce away, so this is
        a plain loop; protocols written against ``send_many`` get the real
        coalescing when they run over TCP.
        """
        for msg in msgs:
            self.send(msg)

    def broadcast(self, src: NodeId, kind: str, payload, exclude: set[NodeId] | None = None) -> None:
        """Send one copy of ``payload`` from ``src`` to every other node."""
        exclude = exclude or set()
        for node_id in self.node_ids:
            if node_id == src or node_id in exclude:
                continue
            self.send(Message(src=src, dst=node_id, kind=kind, payload=payload))

    # -- event loop --------------------------------------------------------

    def step(self) -> bool:
        """Deliver the single earliest queued message.  Returns False if idle."""
        if not self._queue:
            return False
        deliver_at, _tie, msg = heapq.heappop(self._queue)
        self.now = max(self.now, deliver_at)
        msg.delivered_at = self.now
        handler = self._handlers.get(msg.dst)
        if handler is None:
            # Node unregistered after the send (crash mid-flight).
            self.stats.record_drop()
            if self.tracer.enabled:
                self.tracer.add_event(
                    "net.drop",
                    {"src": msg.src, "dst": msg.dst, "kind": msg.kind},
                )
            return True
        self.stats.record(msg.kind, msg.size_bytes, msg.src, msg.dst)
        if self.tracer.enabled:
            self.tracer.add_event(
                "net.recv",
                {
                    "src": msg.src,
                    "dst": msg.dst,
                    "kind": msg.kind,
                    "bytes": msg.size_bytes,
                },
            )
        if self.keep_delivery_log:
            self._delivered_log.append(msg)
        handler(msg, self)
        return True

    def run(self, max_steps: int = 1_000_000) -> int:
        """Drain the queue; returns the number of deliveries made.

        ``max_steps`` guards against protocol bugs that generate traffic
        forever.
        """
        steps = 0
        while self.step():
            steps += 1
            if steps >= max_steps:
                raise ConfigurationError(
                    f"network did not quiesce within {max_steps} deliveries"
                )
        return steps

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def delivery_log(self) -> list[Message]:
        """Messages delivered so far (only if ``keep_delivery_log`` is set)."""
        return list(self._delivered_log)

    def reset_stats(self) -> None:
        self.stats.reset()
