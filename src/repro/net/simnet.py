"""Event-driven simulated network with a virtual clock.

This is the default substrate the protocols run on.  It delivers messages
in virtual-time order through per-link latency and bandwidth models, counts
every message/byte (see :mod:`repro.net.stats`), and consults an optional
:class:`~repro.net.faults.FaultPlan` on each send.

The paper assumes "message routing is handled by the lower network layer";
``SimNetwork`` *is* that layer.  Substitution note (DESIGN.md): the paper
deployed on dedicated appliance nodes; every protocol here is written
against the abstract ``send/handler`` interface, so the identical protocol
code also runs over real sockets (:mod:`repro.net.transport_tcp`).

Usage::

    net = SimNetwork()
    net.register("P0", handler_p0)   # handler: (Message, SimNetwork) -> None
    net.register("P1", handler_p1)
    net.send(Message("P0", "P1", "ping", {"x": 1}))
    net.run()                         # drain the event queue

Reliability (``repro.resilience``): constructed with a
:class:`~repro.resilience.RetryPolicy`, every send becomes *at-least-once*
— the message carries a ``msg_id``, the receiver acknowledges it
(``resilience.ack`` frames, themselves subject to the fault plan), and the
sender retransmits on ack timeout with exponential backoff in **virtual
time** until the policy's attempt budget is spent.  Receivers deduplicate
by message id, so retries compose safely with ``duplicate_rate`` and a
handler runs at most once per logical message.  A link whose retries
exhaust lands in :attr:`failed_links` / :attr:`dead_letters` instead of
raising, so ring supervisors (:mod:`repro.resilience.failover`) can
diagnose dead hops and re-route.  Corrupted frames (fault plan
``corrupt_rate``) are detected "at the receiver" (modeling the codec's
frame checksum) and discarded unacknowledged, which turns corruption into
loss — exactly what retransmission already handles.  Without a policy the
network is the paper's single-shot lower layer, bit-for-bit as before.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError, NodeUnreachableError
from repro.net.codec import encoded_size
from repro.net.faults import FaultPlan
from repro.net.message import Message, NodeId
from repro.net.stats import NetworkStats
from repro.obs.tracer import NOOP_TRACER
from repro.resilience.delivery import DedupWindow, MessageIdAllocator
from repro.resilience.policy import Deadline, RetryPolicy

__all__ = ["LinkModel", "SimNetwork", "ACK_KIND"]

Handler = Callable[[Message, "SimNetwork"], None]

#: Message kind of the reliability layer's acknowledgements.
ACK_KIND = "resilience.ack"


@dataclass(frozen=True)
class LinkModel:
    """Latency/bandwidth model for one link (or the default for all links).

    Delivery time = ``latency + size_bytes / bandwidth`` (seconds of
    virtual time); ``bandwidth`` is bytes per virtual second.
    """

    latency: float = 0.001
    bandwidth: float = 125_000_000.0  # ~1 Gbit/s

    def delay_for(self, size_bytes: int) -> float:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ConfigurationError("invalid link model")
        return self.latency + size_bytes / self.bandwidth


class _InFlight:
    """One transmission of a message (corruption is per transmission)."""

    __slots__ = ("msg", "corrupted")

    def __init__(self, msg: Message, corrupted: bool) -> None:
        self.msg = msg
        self.corrupted = corrupted


class _Timer:
    """A scheduled virtual-time callback (retransmit checks, backoff)."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn


class SimNetwork:
    """Deterministic discrete-event message network."""

    def __init__(
        self,
        default_link: LinkModel | None = None,
        faults: FaultPlan | None = None,
        tracer=None,
        metrics=None,
        resilience: RetryPolicy | None = None,
        dedup_window: int = 4096,
        telemetry=None,
    ) -> None:
        self.default_link = default_link or LinkModel()
        self.faults = faults
        self.stats = NetworkStats()
        # Span events on send/recv/drop attach to whatever span is open in
        # the caller (a protocol stage, a query plan node, ...).
        self.tracer = tracer or NOOP_TRACER
        self.metrics = metrics
        # Cross-node tracing (repro.obs.flight): when a TelemetryHub is
        # attached, sends are stamped with the sender's open span and every
        # handler dispatch runs inside a per-node flight-recorder span.
        self.telemetry = telemetry
        if metrics is not None:
            self.stats.attach_metrics(metrics)
        self.now = 0.0
        self._handlers: dict[NodeId, Handler] = {}
        self._links: dict[tuple[NodeId, NodeId], LinkModel] = {}
        self._queue: list[tuple[float, int, object]] = []
        self._tiebreak = itertools.count()
        self._delivered_log: list[Message] = []
        self.keep_delivery_log = False
        # -- reliability state (inert when resilience is None) -------------
        self.resilience = resilience
        self._allocators: dict[NodeId, MessageIdAllocator] = {}
        self._pending: dict[str, dict] = {}  # msg_id -> {"msg", "attempt"}
        self._dedup = DedupWindow(capacity=dedup_window)
        #: Directed links whose delivery retries exhausted since the last
        #: :meth:`reset_failures` — the failover diagnosis input.
        self.failed_links: set[tuple[NodeId, NodeId]] = set()
        #: The undeliverable messages themselves, for attribution.
        self.dead_letters: list[Message] = []
        #: Per-channel views of the two ledgers above (``repro.sched``):
        #: when concurrent queries multiplex this network, each query's
        #: failover supervisor must see only its own dead links, so
        #: exhausted deliveries are additionally bucketed by the
        #: message's channel tag.
        self.failed_links_by_channel: dict[str, set[tuple[NodeId, NodeId]]] = {}
        self.dead_letters_by_channel: dict[str, list[Message]] = {}
        #: Per-channel count of outstanding work (queued deliveries,
        #: unacknowledged reliable sends, channel-tagged timers).  A
        #: channel with backlog 0 is quiescent *for that channel* even
        #: while neighbors still have traffic in flight — the signal the
        #: async drain loop (:mod:`repro.aio`) waits on instead of global
        #: queue exhaustion.
        self._channel_backlog: dict[str, int] = {}
        #: Optional callback invoked with every dropped message (fault
        #: drops, corrupt frames, crash-unregistered destinations) so a
        #: channel multiplexer can attribute drops per query.
        self.drop_hook: Callable[[Message], None] | None = None
        #: Plain counters mirroring the ``resilience.*`` metrics, so tests
        #: and supervisors can read them without a MetricsRegistry.
        self.resilience_stats: dict[str, int] = {
            "retries": 0,
            "delivery_failed": 0,
            "duplicates_dropped": 0,
            "corrupt_dropped": 0,
            "acks": 0,
        }

    # -- wiring -----------------------------------------------------------

    def register(self, node_id: NodeId, handler: Handler) -> None:
        """Attach a node's message handler.  Re-registering replaces it."""
        self._handlers[node_id] = handler

    def unregister(self, node_id: NodeId) -> None:
        self._handlers.pop(node_id, None)

    @property
    def node_ids(self) -> list[NodeId]:
        return sorted(self._handlers)

    def set_link(self, src: NodeId, dst: NodeId, model: LinkModel) -> None:
        """Override the link model for one directed pair."""
        self._links[(src, dst)] = model

    def link_for(self, src: NodeId, dst: NodeId) -> LinkModel:
        return self._links.get((src, dst), self.default_link)

    @property
    def reliable(self) -> bool:
        """Whether the at-least-once delivery layer is active."""
        return self.resilience is not None

    def _count(self, name: str, tracer_event: str | None = None, attrs=None) -> None:
        self.resilience_stats[name] = self.resilience_stats.get(name, 0) + 1
        if self.metrics is not None:
            self.metrics.counter(
                f"resilience.{name}", help="reliability-layer event count"
            ).inc()
        if tracer_event and self.tracer.enabled:
            self.tracer.add_event(tracer_event, attrs or {})

    # -- per-channel quiescence -------------------------------------------

    def _backlog_add(self, channel: str | None, n: int = 1) -> None:
        if channel is not None:
            self._channel_backlog[channel] = (
                self._channel_backlog.get(channel, 0) + n
            )

    def _backlog_sub(self, channel: str | None, n: int = 1) -> None:
        if channel is None:
            return
        left = self._channel_backlog.get(channel, 0) - n
        if left > 0:
            self._channel_backlog[channel] = left
        else:
            self._channel_backlog.pop(channel, None)

    def channel_backlog(self, channel: str) -> int:
        """Outstanding deliveries/acks/timers tagged with ``channel``."""
        return self._channel_backlog.get(channel, 0)

    # -- traffic ----------------------------------------------------------

    def schedule(
        self, delay: float, fn: Callable[[], None], channel: str | None = None
    ) -> None:
        """Run ``fn`` after ``delay`` seconds of virtual time.

        ``channel`` attributes the timer to a logical channel's backlog,
        so a channel-scoped drain keeps stepping until the callback ran.
        """
        if delay < 0:
            raise ConfigurationError("cannot schedule into the past")
        if channel is not None:
            self._backlog_add(channel)
            inner = fn

            def fn() -> None:
                self._backlog_sub(channel)
                inner()

        heapq.heappush(
            self._queue, (self.now + delay, next(self._tiebreak), _Timer(fn))
        )

    def send(self, msg: Message) -> None:
        """Enqueue a message for future delivery.

        Unknown destinations raise immediately — a misrouted protocol is a
        bug we want loud, not a silent drop.  With a
        :class:`~repro.resilience.RetryPolicy` installed the send is
        tracked for acknowledgement and retransmitted on timeout.
        """
        if msg.dst not in self._handlers:
            raise NodeUnreachableError(f"no node registered as {msg.dst!r}")
        self._stamp_trace_context(msg)
        if self.resilience is not None and msg.kind != ACK_KIND:
            if msg.msg_id is None:
                alloc = self._allocators.get(msg.src)
                if alloc is None:
                    alloc = self._allocators[msg.src] = MessageIdAllocator(msg.src)
                msg.msg_id = alloc.next_id()
            self._pending[msg.msg_id] = {"msg": msg, "attempt": 1}
            # The pending token keeps the channel's backlog non-zero until
            # the delivery is acknowledged or declared failed, so a
            # channel-scoped drain never stops between retransmissions.
            self._backlog_add(msg.channel)
            self._transmit(msg)
            self.schedule(
                self.resilience.ack_timeout, lambda: self._check_ack(msg.msg_id)
            )
            return
        self._transmit(msg)

    def _stamp_trace_context(self, msg: Message) -> None:
        """Attach the sender's open span as the message's trace context.

        Replies/forwards already carry the context they arrived with
        (``Message.reply`` preserves it); only fresh messages are stamped.
        Telemetry traffic (``obs.*``) never carries context — the
        collection round must not trace itself into the query's tree.
        """
        hub = self.telemetry
        if (
            hub is None
            or not hub.enabled
            or msg.trace_id is not None
            or msg.kind.startswith("obs.")
        ):
            return
        context = hub.sender_context(msg.src)
        if context is not None:
            msg.trace_id, msg.parent_span_id = context

    def _transmit(self, msg: Message) -> None:
        """One physical transmission attempt: fault dice + enqueue."""
        size = encoded_size(msg)
        msg.size_bytes = size
        msg.sent_at = self.now

        extra_delay = 0.0
        copies = 1
        corrupted = False
        if self.faults is not None:
            decision = self.faults.decide(msg)
            if decision.drop:
                self.stats.record_drop()
                if self.drop_hook is not None:
                    self.drop_hook(msg)
                if self.tracer.enabled:
                    self.tracer.add_event(
                        "net.drop",
                        {"src": msg.src, "dst": msg.dst, "kind": msg.kind},
                    )
                return
            extra_delay = decision.extra_delay
            if decision.duplicate:
                copies = 2
            # Corruption is only *detectable* (and therefore only modeled)
            # when the reliability layer's frame checksums are active.
            corrupted = decision.corrupt and self.resilience is not None

        if self.tracer.enabled:
            self.tracer.add_event(
                "net.send",
                {"src": msg.src, "dst": msg.dst, "kind": msg.kind, "bytes": size},
            )
        delay = self.link_for(msg.src, msg.dst).delay_for(size) + extra_delay
        for _ in range(copies):
            self._backlog_add(msg.channel)
            heapq.heappush(
                self._queue,
                (self.now + delay, next(self._tiebreak), _InFlight(msg, corrupted)),
            )

    def send_many(self, msgs: list[Message]) -> None:
        """Enqueue several messages (interface parity with ``TcpNode``).

        The simulator has no per-syscall cost to coalesce away, so this is
        a plain loop; protocols written against ``send_many`` get the real
        coalescing when they run over TCP.
        """
        for msg in msgs:
            self.send(msg)

    def broadcast(self, src: NodeId, kind: str, payload, exclude: set[NodeId] | None = None) -> None:
        """Send one copy of ``payload`` from ``src`` to every other node."""
        exclude = exclude or set()
        for node_id in self.node_ids:
            if node_id == src or node_id in exclude:
                continue
            self.send(Message(src=src, dst=node_id, kind=kind, payload=payload))

    # -- reliability internals ---------------------------------------------

    def _check_ack(self, msg_id: str) -> None:
        entry = self._pending.get(msg_id)
        if entry is None:
            return  # acknowledged while the timer was in flight
        msg: Message = entry["msg"]
        attempt: int = entry["attempt"]
        if self.resilience.exhausted(attempt):
            self._pending.pop(msg_id, None)
            self._backlog_sub(msg.channel)
            self.failed_links.add((msg.src, msg.dst))
            self.dead_letters.append(msg)
            if msg.channel is not None:
                self.failed_links_by_channel.setdefault(msg.channel, set()).add(
                    (msg.src, msg.dst)
                )
                self.dead_letters_by_channel.setdefault(msg.channel, []).append(msg)
            self._count(
                "delivery_failed",
                "resilience.delivery_failed",
                {"src": msg.src, "dst": msg.dst, "kind": msg.kind, "attempts": attempt},
            )
            return
        self.schedule(self.resilience.backoff(attempt), lambda: self._retransmit(msg_id))

    def _retransmit(self, msg_id: str) -> None:
        entry = self._pending.get(msg_id)
        if entry is None:
            return
        entry["attempt"] += 1
        msg: Message = entry["msg"]
        self._count(
            "retries",
            "resilience.retry",
            {"src": msg.src, "dst": msg.dst, "kind": msg.kind,
             "attempt": entry["attempt"]},
        )
        self._transmit(msg)
        self.schedule(self.resilience.ack_timeout, lambda: self._check_ack(msg_id))

    def _ack(self, msg: Message) -> None:
        """Acknowledge a reliable delivery (ack frames roll the fault dice too)."""
        self.resilience_stats["acks"] += 1
        self._transmit(
            Message(src=msg.dst, dst=msg.src, kind=ACK_KIND, payload={"mid": msg.msg_id})
        )

    def reset_failures(self, channel: str | None = None) -> None:
        """Clear the failed-link ledger (called between failover launches).

        With ``channel`` given, only that channel's bucket is cleared —
        one query's failover must not wipe the diagnosis of a neighbor
        still inspecting its own dead links.  (The global ledgers keep
        their union view either way.)
        """
        if channel is not None:
            self.failed_links_by_channel.pop(channel, None)
            self.dead_letters_by_channel.pop(channel, None)
            return
        self.failed_links.clear()
        self.dead_letters.clear()
        self.failed_links_by_channel.clear()
        self.dead_letters_by_channel.clear()

    # -- event loop --------------------------------------------------------

    def step(self) -> bool:
        """Process the single earliest queued event.  Returns False if idle."""
        if not self._queue:
            return False
        deliver_at, _tie, item = heapq.heappop(self._queue)
        self.now = max(self.now, deliver_at)
        if isinstance(item, _Timer):
            item.fn()
            return True
        msg = item.msg
        self._backlog_sub(msg.channel)
        msg.delivered_at = self.now
        handler = self._handlers.get(msg.dst)
        if handler is None:
            # Node unregistered after the send (crash mid-flight).
            self.stats.record_drop()
            if self.drop_hook is not None:
                self.drop_hook(msg)
            if self.tracer.enabled:
                self.tracer.add_event(
                    "net.drop",
                    {"src": msg.src, "dst": msg.dst, "kind": msg.kind},
                )
            return True
        if item.corrupted:
            # Frame checksum mismatch at the receiver: discard without an
            # ack, so the sender's retransmission path repairs the loss.
            self.stats.record_drop()
            if self.drop_hook is not None:
                self.drop_hook(msg)
            self._count(
                "corrupt_dropped",
                "net.corrupt_drop",
                {"src": msg.src, "dst": msg.dst, "kind": msg.kind},
            )
            return True
        # Telemetry-collection traffic (``obs.*``) is plumbing, not
        # protocol cost: keep it out of the stats ledger so CostReports
        # and the metrics registry describe only the audited work.
        if not msg.kind.startswith("obs."):
            self.stats.record(msg.kind, msg.size_bytes, msg.src, msg.dst)
        if self.tracer.enabled:
            self.tracer.add_event(
                "net.recv",
                {
                    "src": msg.src,
                    "dst": msg.dst,
                    "kind": msg.kind,
                    "bytes": msg.size_bytes,
                },
            )
        if self.resilience is not None:
            if msg.kind == ACK_KIND:
                acked = self._pending.pop(msg.payload["mid"], None)
                if acked is not None:
                    self._backlog_sub(acked["msg"].channel)
                return True
            if msg.msg_id is not None:
                duplicate = self._dedup.seen((msg.src, msg.dst), msg.msg_id)
                self._ack(msg)
                if duplicate:
                    self._count(
                        "duplicates_dropped",
                        "resilience.dedup_drop",
                        {"src": msg.src, "dst": msg.dst, "kind": msg.kind},
                    )
                    return True
        if self.keep_delivery_log:
            self._delivered_log.append(msg)
        hub = self.telemetry
        if hub is not None and hub.enabled and not msg.kind.startswith("obs."):
            # Every protocol handler runs inside a flight-recorder span on
            # the receiving node, parented to the sender's span reference.
            with hub.node_span(
                msg.dst,
                f"node.{msg.kind}",
                {
                    "node": msg.dst,
                    "kind": msg.kind,
                    "src": msg.src,
                    "messages": 1,
                    "bytes": msg.size_bytes,
                },
                trace_id=msg.trace_id,
                remote_parent=msg.parent_span_id,
            ):
                handler(msg, self)
        else:
            handler(msg, self)
        return True

    def run(self, max_steps: int = 1_000_000, deadline: Deadline | None = None) -> int:
        """Drain the queue; returns the number of events processed.

        ``max_steps`` guards against protocol bugs that generate traffic
        forever.  ``deadline`` (wall-clock, see
        :class:`~repro.resilience.Deadline`) bounds how long the drain may
        run; expiry raises :class:`~repro.errors.DeadlineExceededError`.
        """
        steps = 0
        check_deadline = deadline is not None and deadline.is_finite
        while self.step():
            steps += 1
            if steps >= max_steps:
                raise ConfigurationError(
                    f"network did not quiesce within {max_steps} deliveries"
                )
            if check_deadline and deadline.expired:
                if self.metrics is not None:
                    self.metrics.counter(
                        "resilience.deadline_exceeded",
                        help="runs abandoned because their deadline expired",
                    ).inc()
                deadline.check("simnet.run")
        return steps

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def delivery_log(self) -> list[Message]:
        """Messages delivered so far (only if ``keep_delivery_log`` is set)."""
        return list(self._delivered_log)

    def reset_stats(self) -> None:
        self.stats.reset()
