"""Failure injection for the simulated network.

Integrity checking (paper §4.1) and the evidence chain (§4.2) exist because
nodes and links misbehave.  The test suite injects exactly those
misbehaviours: message drop, duplication, reordering (extra delay), payload
corruption, and network partitions.  A :class:`FaultPlan` is attached to a
:class:`~repro.net.simnet.SimNetwork` and consulted on every send.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.net.message import Message

__all__ = ["FaultDecision", "FaultPlan"]


@dataclass(frozen=True)
class FaultDecision:
    """What the fault layer decided for one message."""

    drop: bool = False
    duplicate: bool = False
    extra_delay: float = 0.0
    corrupt: bool = False


class FaultPlan:
    """Probabilistic + rule-based fault injection.

    Parameters are probabilities in ``[0, 1]``; ``rng`` must be supplied for
    reproducible experiments.  Partitions are directional pairs; use
    :meth:`partition` to cut both directions.
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        reorder_delay: float = 5.0,
        rng: DeterministicRng | None = None,
    ) -> None:
        for name, rate in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("reorder_rate", reorder_rate),
            ("corrupt_rate", corrupt_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.reorder_rate = reorder_rate
        self.corrupt_rate = corrupt_rate
        self.reorder_delay = reorder_delay
        self._rng = rng or DeterministicRng(b"fault-plan")
        self._partitioned: set[tuple[str, str]] = set()
        self._down: set[str] = set()

    def partition(self, a: str, b: str) -> None:
        """Cut the link between ``a`` and ``b`` in both directions."""
        self._partitioned.add((a, b))
        self._partitioned.add((b, a))

    def heal(self, a: str, b: str) -> None:
        """Restore the link between ``a`` and ``b``."""
        self._partitioned.discard((a, b))
        self._partitioned.discard((b, a))

    def heal_all(self) -> None:
        self._partitioned.clear()
        self._down.clear()

    def crash(self, node: str) -> None:
        """Mark a node as down: nothing is delivered to or from it."""
        self._down.add(node)

    def recover(self, node: str) -> None:
        self._down.discard(node)

    def is_partitioned(self, src: str, dst: str) -> bool:
        return (
            (src, dst) in self._partitioned
            or src in self._down
            or dst in self._down
        )

    def decide(self, msg: Message) -> FaultDecision:
        """Roll the dice for one message."""
        if self.is_partitioned(msg.src, msg.dst):
            return FaultDecision(drop=True)
        if self.drop_rate and self._rng.random() < self.drop_rate:
            return FaultDecision(drop=True)
        duplicate = bool(
            self.duplicate_rate and self._rng.random() < self.duplicate_rate
        )
        delay = (
            self.reorder_delay
            if self.reorder_rate and self._rng.random() < self.reorder_rate
            else 0.0
        )
        corrupt = bool(
            self.corrupt_rate and self._rng.random() < self.corrupt_rate
        )
        return FaultDecision(duplicate=duplicate, extra_delay=delay, corrupt=corrupt)


@dataclass
class TamperRule:
    """Deterministic, targeted tampering (used by integrity-check tests).

    Unlike the probabilistic :class:`FaultPlan`, a tamper rule rewrites the
    payload of messages matching ``kind`` exactly once, emulating a
    compromised DLA node altering a log fragment in flight.
    """

    kind: str
    mutate: callable = None  # payload -> payload
    fired: bool = field(default=False, init=False)

    def apply(self, msg: Message) -> Message:
        if self.fired or msg.kind != self.kind or self.mutate is None:
            return msg
        self.fired = True
        return Message(
            src=msg.src, dst=msg.dst, kind=msg.kind, payload=self.mutate(msg.payload)
        )
