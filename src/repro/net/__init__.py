"""Network substrate: simulated event-driven fabric and real TCP transport.

Protocols in :mod:`repro.smc`, :mod:`repro.logstore` and :mod:`repro.cluster`
are written against the minimal contract shared by both transports:

* ``transport.send(Message(...))`` delivers asynchronously;
* each node owns a handler ``(Message, transport) -> None``;
* ``transport.stats`` counts messages and bytes.

:class:`~repro.net.simnet.SimNetwork` adds a deterministic virtual clock and
fault injection; :class:`~repro.net.transport_tcp.TcpNode` runs the same
byte-identical frames over localhost sockets.
"""

from repro.net.codec import (
    decode_frames,
    decode_message,
    encode_frame,
    encode_message,
    encoded_size,
)
from repro.net.faults import FaultDecision, FaultPlan, TamperRule
from repro.net.message import Message, NodeId
from repro.net.simnet import LinkModel, SimNetwork
from repro.net.stats import CostReport, CryptoOpCounter, NetworkStats
from repro.net.topology import (
    latency_ring,
    next_on_ring,
    ring_graph,
    ring_order,
    star_center,
)
from repro.net.transport_tcp import TcpCluster, TcpNode

__all__ = [
    "Message",
    "NodeId",
    "SimNetwork",
    "LinkModel",
    "TcpNode",
    "TcpCluster",
    "NetworkStats",
    "CryptoOpCounter",
    "CostReport",
    "FaultPlan",
    "FaultDecision",
    "TamperRule",
    "encode_message",
    "decode_message",
    "encode_frame",
    "decode_frames",
    "encoded_size",
    "ring_order",
    "next_on_ring",
    "ring_graph",
    "star_center",
    "latency_ring",
]
