"""Topology helpers: rings, stars, and routing orders for SMC protocols.

The commutative-cipher protocols route sets around a *ring* of DLA nodes;
blind-TTP protocols use a *star* centered on the TTP.  This module computes
those orders and provides NetworkX adapters for richer experiments (e.g.
latency-weighted ring orders).
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ConfigurationError
from repro.net.message import NodeId

__all__ = ["ring_order", "next_on_ring", "star_center", "latency_ring", "ring_graph"]


def ring_order(nodes: list[NodeId], start: NodeId | None = None) -> list[NodeId]:
    """Canonical ring order: sorted node ids, rotated to begin at ``start``."""
    if not nodes:
        raise ConfigurationError("a ring needs at least one node")
    ordered = sorted(nodes)
    if start is None:
        return ordered
    if start not in ordered:
        raise ConfigurationError(f"start node {start!r} not in ring")
    idx = ordered.index(start)
    return ordered[idx:] + ordered[:idx]


def next_on_ring(nodes: list[NodeId], current: NodeId) -> NodeId:
    """Successor of ``current`` on the canonical ring."""
    ordered = sorted(nodes)
    try:
        idx = ordered.index(current)
    except ValueError as exc:
        raise ConfigurationError(f"{current!r} is not on the ring") from exc
    return ordered[(idx + 1) % len(ordered)]


def star_center(nodes: list[NodeId], center: NodeId) -> list[tuple[NodeId, NodeId]]:
    """Spoke list ``(leaf, center)`` for a star topology."""
    if center not in nodes:
        raise ConfigurationError(f"center {center!r} not among nodes")
    return [(n, center) for n in sorted(nodes) if n != center]


def ring_graph(nodes: list[NodeId]) -> nx.DiGraph:
    """Directed cycle graph over the canonical ring order."""
    ordered = ring_order(nodes)
    graph = nx.DiGraph()
    graph.add_nodes_from(ordered)
    for i, node in enumerate(ordered):
        graph.add_edge(node, ordered[(i + 1) % len(ordered)])
    return graph


def latency_ring(latencies: dict[tuple[NodeId, NodeId], float]) -> list[NodeId]:
    """Approximate minimum-latency ring (greedy TSP) over measured links.

    ``latencies`` maps directed pairs to link latency; missing pairs get the
    symmetric value or a large penalty.  Used by the ablation bench that
    compares canonical vs latency-aware ring orders.
    """
    nodes = sorted({a for a, _ in latencies} | {b for _, b in latencies})
    if not nodes:
        raise ConfigurationError("no nodes in latency map")

    def cost(a: NodeId, b: NodeId) -> float:
        if (a, b) in latencies:
            return latencies[(a, b)]
        if (b, a) in latencies:
            return latencies[(b, a)]
        return 1e9

    order = [nodes[0]]
    remaining = set(nodes[1:])
    while remaining:
        here = order[-1]
        nearest = min(remaining, key=lambda n: cost(here, n))
        order.append(nearest)
        remaining.discard(nearest)
    return order
