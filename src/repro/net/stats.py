"""Traffic and cost accounting.

The paper's central quantitative claim is that *relaxed* secure multiparty
computation is drastically cheaper than classical MPC.  To measure that
claim we count everything: messages, bytes, per-kind breakdowns, and crypto
operations (modular exponentiations dominate).  Every transport owns a
:class:`NetworkStats`; SMC protocols additionally report into a
:class:`CryptoOpCounter`.

Both ledgers can optionally *feed* a
:class:`~repro.obs.metrics.MetricsRegistry` (``attach_metrics``): every
recorded message, drop, timing, and crypto op then also updates the
registry's counters and histograms, so one Prometheus dump covers the
whole run.  Detached (the default), neither ledger touches the registry
at all.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import LATENCY_BUCKETS_SECONDS, SIZE_BUCKETS_BYTES

__all__ = ["NetworkStats", "CryptoOpCounter", "CostReport"]


@dataclass
class NetworkStats:
    """Counters a transport updates on every delivery.

    Besides traffic counts, transports and protocols record *per-stage
    wall-clock timings* here (``time_stage``/``record_timing``): keys like
    ``"ssi.encrypt"`` accumulate the seconds spent in that stage across
    the run, so cost reports can attribute wall-clock to crypto stages,
    not just message counts.

    All mutators take one internal lock: when the scheduler
    (:mod:`repro.sched`) multiplexes concurrent queries over a shared
    transport, increments from different worker threads must not lose
    updates (``x += 1`` is not atomic in CPython).  Single-threaded use
    pays one uncontended lock acquire per record.
    """

    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    by_link: Counter = field(default_factory=Counter)
    timings: dict = field(default_factory=dict)
    timing_calls: Counter = field(default_factory=Counter)
    #: Connection-pool health (TCP transports): per-peer count of live
    #: pooled connections, and per-peer reconnect events.  The simulator
    #: has no connections; both stay empty there.
    connections_open: Counter = field(default_factory=Counter)
    reconnects: Counter = field(default_factory=Counter)
    _metrics: object = field(default=None, init=False, repr=False, compare=False)
    _metrics_prefix: str = field(
        default="repro_net", init=False, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def attach_metrics(self, registry, prefix: str = "repro_net") -> None:
        """Mirror every future record into a MetricsRegistry."""
        self._metrics = registry
        self._metrics_prefix = prefix

    def record(self, kind: str, size: int, src: str, dst: str) -> None:
        with self._lock:
            self.messages += 1
            self.bytes += size
            self.by_kind[kind] += 1
            self.bytes_by_kind[kind] += size
            self.by_link[(src, dst)] += 1
        if self._metrics is not None:
            p = self._metrics_prefix
            self._metrics.counter(
                f"{p}_messages_total", help="messages delivered", labels={"kind": kind}
            ).inc()
            self._metrics.counter(
                f"{p}_bytes_total", help="payload bytes delivered", labels={"kind": kind}
            ).inc(size)
            self._metrics.histogram(
                f"{p}_message_size_bytes",
                buckets=SIZE_BUCKETS_BYTES,
                help="per-message encoded size",
            ).observe(size)

    def record_drop(self) -> None:
        with self._lock:
            self.dropped += 1
        if self._metrics is not None:
            self._metrics.counter(
                f"{self._metrics_prefix}_dropped_total", help="messages dropped"
            ).inc()

    def record_connect(self, peer: str, reconnect: bool = False) -> None:
        """A pooled connection to ``peer`` opened (``reconnect``: reopened).

        Feeds the ``repro_net_connections_open`` gauge and — for reopens
        after a broken pipe — the ``repro_net_reconnects_total`` counter,
        both labelled per peer.
        """
        with self._lock:
            self.connections_open[peer] += 1
            if reconnect:
                self.reconnects[peer] += 1
        if self._metrics is not None:
            p = self._metrics_prefix
            self._metrics.gauge(
                f"{p}_connections_open",
                help="live pooled transport connections",
                labels={"peer": peer},
            ).inc()
            if reconnect:
                self._metrics.counter(
                    f"{p}_reconnects_total",
                    help="pooled connections reopened after a failure",
                    labels={"peer": peer},
                ).inc()

    def record_disconnect(self, peer: str) -> None:
        """A pooled connection to ``peer`` closed."""
        with self._lock:
            left = self.connections_open[peer] - 1
            if left > 0:
                self.connections_open[peer] = left
            else:
                self.connections_open.pop(peer, None)
        if self._metrics is not None:
            self._metrics.gauge(
                f"{self._metrics_prefix}_connections_open",
                help="live pooled transport connections",
                labels={"peer": peer},
            ).dec()

    def record_timing(self, stage: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall-clock against a named stage."""
        with self._lock:
            self.timings[stage] = self.timings.get(stage, 0.0) + seconds
            self.timing_calls[stage] += 1
        if self._metrics is not None:
            self._metrics.histogram(
                f"{self._metrics_prefix}_stage_latency_seconds",
                buckets=LATENCY_BUCKETS_SECONDS,
                help="wall-clock per pass through a named stage",
                labels={"stage": stage},
            ).observe(seconds)

    @contextmanager
    def time_stage(self, stage: str):
        """Context manager timing one pass through a named stage."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_timing(stage, time.perf_counter() - start)

    def reset(self) -> None:
        with self._lock:
            self.messages = 0
            self.bytes = 0
            self.dropped = 0
            self.by_kind.clear()
            self.bytes_by_kind.clear()
            self.by_link.clear()
            self.timings.clear()
            self.timing_calls.clear()
            # connections_open mirrors *live* pool state, not a tally of
            # past events — resetting traffic counters must not desync the
            # gauge from the sockets that are still open.
            self.reconnects.clear()

    def snapshot(self) -> dict:
        """Plain-dict copy for logging / assertions (JSON-safe throughout:
        link tuples are flattened to ``"src->dst"`` strings)."""
        with self._lock:
            return {
                "messages": self.messages,
                "bytes": self.bytes,
                "dropped": self.dropped,
                "by_kind": dict(self.by_kind),
                "bytes_by_kind": dict(self.bytes_by_kind),
                "by_link": {
                    f"{src}->{dst}": n for (src, dst), n in self.by_link.items()
                },
                "timings": dict(self.timings),
                "timing_calls": dict(self.timing_calls),
                "connections_open": dict(self.connections_open),
                "reconnects": dict(self.reconnects),
            }


@dataclass
class CryptoOpCounter:
    """Counts of expensive cryptographic operations, by label."""

    ops: Counter = field(default_factory=Counter)
    _metrics: object = field(default=None, init=False, repr=False, compare=False)
    _metrics_prefix: str = field(
        default="repro_crypto", init=False, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def attach_metrics(self, registry, prefix: str = "repro_crypto") -> None:
        """Mirror every future op count into a MetricsRegistry."""
        self._metrics = registry
        self._metrics_prefix = prefix

    def add(self, label: str, count: int = 1) -> None:
        with self._lock:
            self.ops[label] += count
        if self._metrics is not None:
            self._metrics.counter(
                f"{self._metrics_prefix}_ops_total",
                help="expensive crypto operations",
                labels={"op": label},
            ).inc(count)

    @property
    def modexp(self) -> int:
        """Total modular exponentiations (the dominant cost everywhere).

        Protocols record both per-party keys (``P0.modexp``) and a running
        ``total.modexp``; when the total key exists it is authoritative
        (summing everything would double-count).
        """
        if "total.modexp" in self.ops:
            return self.ops["total.modexp"]
        return sum(v for k, v in self.ops.items() if k.endswith("modexp"))

    def merge(self, other: "CryptoOpCounter") -> None:
        """Fold another counter's totals in (one lock hold, no lost adds).

        The scheduler gives each concurrent query its own counter and
        merges it into the service-wide ledger on completion, so global
        accounting stays exact without contending per-op.
        """
        with other._lock:
            delta = Counter(other.ops)
        with self._lock:
            self.ops.update(delta)

    def reset(self) -> None:
        with self._lock:
            self.ops.clear()

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self.ops)


@dataclass(frozen=True)
class CostReport:
    """A combined, immutable cost summary returned by protocol runs."""

    messages: int
    bytes: int
    crypto_ops: dict
    virtual_time: float = 0.0
    dropped: int = 0

    @classmethod
    def collect(
        cls,
        net_stats: NetworkStats,
        crypto: CryptoOpCounter | None = None,
        virtual_time: float = 0.0,
    ) -> "CostReport":
        return cls(
            messages=net_stats.messages,
            bytes=net_stats.bytes,
            crypto_ops=crypto.snapshot() if crypto else {},
            virtual_time=virtual_time,
            dropped=net_stats.dropped,
        )

    @property
    def modexp(self) -> int:
        if "total.modexp" in self.crypto_ops:
            return self.crypto_ops["total.modexp"]
        return sum(v for k, v in self.crypto_ops.items() if k.endswith("modexp"))

    @property
    def offline_modexp(self) -> int:
        """Exponentiations served from precomputed pools (offline phase).

        The offline/online split re-labels work, never invents it:
        ``offline_modexp + online_modexp == modexp`` always, and with
        pools disabled the offline share is zero.
        """
        return self.crypto_ops.get("offline.modexp", 0)

    @property
    def online_modexp(self) -> int:
        """Exponentiations actually computed inside the query's span."""
        return self.modexp - self.offline_modexp
