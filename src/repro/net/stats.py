"""Traffic and cost accounting.

The paper's central quantitative claim is that *relaxed* secure multiparty
computation is drastically cheaper than classical MPC.  To measure that
claim we count everything: messages, bytes, per-kind breakdowns, and crypto
operations (modular exponentiations dominate).  Every transport owns a
:class:`NetworkStats`; SMC protocols additionally report into a
:class:`CryptoOpCounter`.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["NetworkStats", "CryptoOpCounter", "CostReport"]


@dataclass
class NetworkStats:
    """Counters a transport updates on every delivery.

    Besides traffic counts, transports and protocols record *per-stage
    wall-clock timings* here (``time_stage``/``record_timing``): keys like
    ``"ssi.encrypt"`` accumulate the seconds spent in that stage across
    the run, so cost reports can attribute wall-clock to crypto stages,
    not just message counts.
    """

    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    by_link: Counter = field(default_factory=Counter)
    timings: dict = field(default_factory=dict)
    timing_calls: Counter = field(default_factory=Counter)

    def record(self, kind: str, size: int, src: str, dst: str) -> None:
        self.messages += 1
        self.bytes += size
        self.by_kind[kind] += 1
        self.bytes_by_kind[kind] += size
        self.by_link[(src, dst)] += 1

    def record_drop(self) -> None:
        self.dropped += 1

    def record_timing(self, stage: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall-clock against a named stage."""
        self.timings[stage] = self.timings.get(stage, 0.0) + seconds
        self.timing_calls[stage] += 1

    @contextmanager
    def time_stage(self, stage: str):
        """Context manager timing one pass through a named stage."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_timing(stage, time.perf_counter() - start)

    def reset(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.dropped = 0
        self.by_kind.clear()
        self.bytes_by_kind.clear()
        self.by_link.clear()
        self.timings.clear()
        self.timing_calls.clear()

    def snapshot(self) -> dict:
        """Plain-dict copy for logging / assertions."""
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "dropped": self.dropped,
            "by_kind": dict(self.by_kind),
            "timings": dict(self.timings),
        }


@dataclass
class CryptoOpCounter:
    """Counts of expensive cryptographic operations, by label."""

    ops: Counter = field(default_factory=Counter)

    def add(self, label: str, count: int = 1) -> None:
        self.ops[label] += count

    @property
    def modexp(self) -> int:
        """Total modular exponentiations (the dominant cost everywhere).

        Protocols record both per-party keys (``P0.modexp``) and a running
        ``total.modexp``; when the total key exists it is authoritative
        (summing everything would double-count).
        """
        if "total.modexp" in self.ops:
            return self.ops["total.modexp"]
        return sum(v for k, v in self.ops.items() if k.endswith("modexp"))

    def reset(self) -> None:
        self.ops.clear()

    def snapshot(self) -> dict:
        return dict(self.ops)


@dataclass(frozen=True)
class CostReport:
    """A combined, immutable cost summary returned by protocol runs."""

    messages: int
    bytes: int
    crypto_ops: dict
    virtual_time: float = 0.0

    @classmethod
    def collect(
        cls,
        net_stats: NetworkStats,
        crypto: CryptoOpCounter | None = None,
        virtual_time: float = 0.0,
    ) -> "CostReport":
        return cls(
            messages=net_stats.messages,
            bytes=net_stats.bytes,
            crypto_ops=crypto.snapshot() if crypto else {},
            virtual_time=virtual_time,
        )

    @property
    def modexp(self) -> int:
        if "total.modexp" in self.crypto_ops:
            return self.crypto_ops["total.modexp"]
        return sum(v for k, v in self.crypto_ops.items() if k.endswith("modexp"))
