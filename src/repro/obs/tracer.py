"""Nested-span tracer with a zero-overhead disabled mode.

A :class:`Tracer` produces :class:`Span` objects arranged in a tree:
``with tracer.span("query.execute"):`` opens a span, and every span (or
event) created inside the ``with`` block becomes its child.  Timestamps
come from a monotonic clock (``time.perf_counter`` by default; injectable
for tests), span ids are sequential per tracer, and finished spans are
collected in completion order — so two runs of the same deterministic
protocol produce identical traces modulo timestamps.

Cross-node tracing builds on three optional :class:`Span` fields:

* ``trace_id`` — one id per logical request (an ``audit.query``, a
  scheduled query, ...).  Root spans are assigned one automatically;
  children inherit it.  Carried on the wire by ``Message.trace_id``.
* ``node`` — which party recorded the span (``None`` means the
  coordinator process).  Per-node recorders
  (:class:`repro.obs.flight.FlightRecorder`) set it once at
  construction.
* ``remote_parent`` — a cross-tracer parent reference ``"node:span_id"``
  (see :attr:`Span.ref`).  Span ids are only unique *per tracer*, so a
  parent on another node is named by this string, carried on the wire by
  ``Message.parent_span_id`` and resolved later by
  :func:`repro.obs.assemble.assemble_forest`.

Disabled tracing is the default everywhere: :data:`NOOP_TRACER` exposes
the same interface but allocates nothing — ``span()`` returns one shared
reusable context manager yielding one shared inert span.  Hot paths that
build attribute dicts per call should additionally gate on
``tracer.enabled`` (the transports do).

The span stack lives in a :mod:`contextvars` variable, so the tracer is
safe to share across the TCP transport's reader threads (each thread
nests its own spans, exactly as the previous thread-local stack did)
*and* across interleaved coroutines on one event loop (each
``asyncio.Task`` runs in its own context copy, so two pipelined SMC
rounds never corrupt each other's span nesting — the invariant
``repro.aio`` depends on).  Events fired with no open span land in a
bounded *orphan buffer* (and count toward the
``repro_obs_orphan_events_total`` metric when a registry is attached)
instead of being silently lost.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "ORPHAN_BUFFER_ENV_VAR",
    "DEFAULT_ORPHAN_BUFFER",
]

ORPHAN_BUFFER_ENV_VAR = "REPRO_OBS_ORPHAN_EVENTS"
DEFAULT_ORPHAN_BUFFER = 256


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span (send/recv/leakage/...)."""

    name: str
    timestamp: float
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ts": self.timestamp,
            "attributes": dict(self.attributes),
        }


@dataclass
class Span:
    """One traced operation: a named interval with attributes and events."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    trace_id: str | None = None
    node: str | None = None
    remote_parent: str | None = None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def ref(self) -> str:
        """Globally-meaningful span reference: ``"node:span_id"``."""
        return f"{self.node or 'coord'}:{self.span_id}"

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def set_attributes(self, mapping: dict) -> None:
        self.attributes.update(mapping)

    def add_event(
        self, name: str, attributes: dict | None = None, timestamp: float | None = None
    ) -> None:
        self.events.append(
            SpanEvent(
                name=name,
                timestamp=time.perf_counter() if timestamp is None else timestamp,
                attributes=dict(attributes or {}),
            )
        )


class Tracer:
    """Collects a tree of spans across one run.

    Parameters
    ----------
    clock:
        Monotonic time source.  Tests inject a counter to make timestamps
        (not just structure) deterministic.
    node:
        Identity stamped on every span this tracer records (``None`` =
        the coordinator process).  Per-node flight recorders set it.
    orphan_capacity:
        Bound on the orphan-event ring buffer (events fired with no open
        span).  Defaults to ``REPRO_OBS_ORPHAN_EVENTS`` (256).
    """

    enabled = True

    def __init__(
        self,
        clock=time.perf_counter,
        node: str | None = None,
        orphan_capacity: int | None = None,
    ) -> None:
        self._clock = clock
        self.node = node
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._finished: list[Span] = []
        self._lock = threading.Lock()
        # The open-span stack is an *immutable tuple* in a context
        # variable: per-thread (fresh threads start with the default) and
        # per-asyncio-task (each task runs in a context copy, and because
        # the tuple is never mutated in place, sibling tasks that copied
        # the same context cannot corrupt each other's nesting).
        self._stack_var: contextvars.ContextVar[tuple[Span, ...]] = (
            contextvars.ContextVar("repro_span_stack", default=())
        )
        if orphan_capacity is None:
            orphan_capacity = int(
                os.environ.get(ORPHAN_BUFFER_ENV_VAR, str(DEFAULT_ORPHAN_BUFFER))
            )
        self._orphans: deque[SpanEvent] = deque(maxlen=max(1, orphan_capacity))
        self.orphan_events_total = 0
        self._orphan_counter = None

    # -- span lifecycle ----------------------------------------------------

    def _stack(self) -> tuple[Span, ...]:
        return self._stack_var.get()

    def detach_context(self) -> None:
        """Clear the open-span stack in *this* execution context.

        ``asyncio.run_coroutine_threadsafe`` copies the submitting
        thread's context into the new task — including any span that
        thread happens to have open.  A per-query task calls this first
        so its ``sched.query`` span is a genuine root, not an accidental
        child of whatever the submitter was doing.  Sync callers never
        need it.
        """
        self._stack_var.set(())

    @property
    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def current_context(self) -> tuple[str | None, str] | None:
        """``(trace_id, ref)`` of the innermost open span, or ``None``.

        This is what a transport stamps onto an outgoing message so the
        receiving node can open its handler span under the right parent.
        """
        span = self.current_span
        if span is None:
            return None
        return (span.trace_id, span.ref)

    def _new_trace_id(self) -> str:
        with self._lock:
            return f"{self.node or 'coord'}-t{next(self._trace_ids)}"

    def _store(self, span: Span) -> None:
        """Storage hook: subclasses (the flight recorder) bound it."""
        with self._lock:
            self._finished.append(span)

    @contextmanager
    def span(
        self,
        name: str,
        attributes: dict | None = None,
        *,
        trace_id: str | None = None,
        remote_parent: str | None = None,
    ):
        """Open a child of the current span (or a root span) for the block.

        ``trace_id``/``remote_parent`` seed a *root* span from propagated
        wire context; nested spans inherit the local parent's trace and
        ignore them (the local parentage is strictly more precise).
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = next(self._ids)
        if parent is not None:
            tid = parent.trace_id
            remote = None
        else:
            tid = trace_id if trace_id is not None else self._new_trace_id()
            remote = remote_parent
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            start=self._clock(),
            attributes=dict(attributes or {}),
            trace_id=tid,
            node=self.node,
            remote_parent=remote,
        )
        token = self._stack_var.set(stack + (span,))
        try:
            yield span
        finally:
            self._stack_var.reset(token)
            span.end = self._clock()
            self._store(span)

    def add_event(self, name: str, attributes: dict | None = None) -> None:
        """Attach an event to the innermost open span.

        With no open span on this thread the event goes to the bounded
        orphan buffer (and the orphan counter) instead of being lost —
        callers never need a guard either way.
        """
        span = self.current_span
        if span is not None:
            span.add_event(name, attributes, timestamp=self._clock())
            return
        event = SpanEvent(
            name=name, timestamp=self._clock(), attributes=dict(attributes or {})
        )
        with self._lock:
            self._orphans.append(event)
            self.orphan_events_total += 1
        if self._orphan_counter is not None:
            self._orphan_counter.inc()

    def attach_metrics(self, registry) -> None:
        """Feed orphan-event counts into ``repro_obs_orphan_events_total``."""
        self._orphan_counter = registry.counter(
            "repro_obs_orphan_events_total",
            help="tracer events fired on threads with no open span",
        )

    # -- inspection --------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        """All closed spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._finished)

    def root_spans(self) -> list[Span]:
        return [s for s in self.finished_spans() if s.parent_id is None]

    def orphan_events(self) -> list[SpanEvent]:
        """Buffered events that had no open span (oldest dropped first)."""
        with self._lock:
            return list(self._orphans)

    def reset(self) -> None:
        """Drop collected spans and restart the id sequence."""
        with self._lock:
            self._finished.clear()
            self._ids = itertools.count(1)
            self._trace_ids = itertools.count(1)
            self._orphans.clear()


class _NoopSpan:
    """Shared inert span: accepts the Span API, records nothing."""

    __slots__ = ()

    name = ""
    span_id = 0
    parent_id = None
    start = 0.0
    end = 0.0
    duration = 0.0
    attributes: dict = {}
    events: list = []
    trace_id = None
    node = None
    remote_parent = None
    ref = "coord:0"

    def set_attribute(self, key, value) -> None:
        pass

    def set_attributes(self, mapping) -> None:
        pass

    def add_event(self, name, attributes=None, timestamp=None) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _NoopSpanContext:
    """Stateless reusable context manager yielding the shared no-op span."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_CONTEXT = _NoopSpanContext()


class NoopTracer:
    """Tracing disabled: the same interface, no allocation, no recording."""

    enabled = False
    current_span = None
    node = None
    orphan_events_total = 0

    def span(
        self,
        name: str,
        attributes: dict | None = None,
        *,
        trace_id: str | None = None,
        remote_parent: str | None = None,
    ) -> _NoopSpanContext:
        return _NOOP_CONTEXT

    def current_context(self) -> None:
        return None

    def detach_context(self) -> None:
        pass

    def add_event(self, name: str, attributes: dict | None = None) -> None:
        pass

    def attach_metrics(self, registry) -> None:
        pass

    def finished_spans(self) -> list[Span]:
        return []

    def root_spans(self) -> list[Span]:
        return []

    def orphan_events(self) -> list[SpanEvent]:
        return []

    def reset(self) -> None:
        pass


NOOP_TRACER = NoopTracer()
