"""Nested-span tracer with a zero-overhead disabled mode.

A :class:`Tracer` produces :class:`Span` objects arranged in a tree:
``with tracer.span("query.execute"):`` opens a span, and every span (or
event) created inside the ``with`` block becomes its child.  Timestamps
come from a monotonic clock (``time.perf_counter`` by default; injectable
for tests), span ids are sequential per tracer, and finished spans are
collected in completion order — so two runs of the same deterministic
protocol produce identical traces modulo timestamps.

Disabled tracing is the default everywhere: :data:`NOOP_TRACER` exposes
the same interface but allocates nothing — ``span()`` returns one shared
reusable context manager yielding one shared inert span.  Hot paths that
build attribute dicts per call should additionally gate on
``tracer.enabled`` (the transports do).

The per-thread span stack means the tracer is safe to share across the
TCP transport's reader threads: each thread nests its own spans, and
events fired on a thread with no open span are dropped rather than
misattached.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "SpanEvent", "Tracer", "NoopTracer", "NOOP_TRACER"]


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span (send/recv/leakage/...)."""

    name: str
    timestamp: float
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ts": self.timestamp,
            "attributes": dict(self.attributes),
        }


@dataclass
class Span:
    """One traced operation: a named interval with attributes and events."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def set_attributes(self, mapping: dict) -> None:
        self.attributes.update(mapping)

    def add_event(
        self, name: str, attributes: dict | None = None, timestamp: float | None = None
    ) -> None:
        self.events.append(
            SpanEvent(
                name=name,
                timestamp=time.perf_counter() if timestamp is None else timestamp,
                attributes=dict(attributes or {}),
            )
        )


class Tracer:
    """Collects a tree of spans across one run.

    Parameters
    ----------
    clock:
        Monotonic time source.  Tests inject a counter to make timestamps
        (not just structure) deterministic.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._ids = itertools.count(1)
        self._finished: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span lifecycle ----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, attributes: dict | None = None):
        """Open a child of the current span (or a root span) for the block."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = next(self._ids)
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            start=self._clock(),
            attributes=dict(attributes or {}),
        )
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.end = self._clock()
            with self._lock:
                self._finished.append(span)

    def add_event(self, name: str, attributes: dict | None = None) -> None:
        """Attach an event to the innermost open span (dropped if none)."""
        span = self.current_span
        if span is not None:
            span.add_event(name, attributes, timestamp=self._clock())

    # -- inspection --------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        """All closed spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._finished)

    def root_spans(self) -> list[Span]:
        return [s for s in self.finished_spans() if s.parent_id is None]

    def reset(self) -> None:
        """Drop collected spans and restart the id sequence."""
        with self._lock:
            self._finished.clear()
            self._ids = itertools.count(1)


class _NoopSpan:
    """Shared inert span: accepts the Span API, records nothing."""

    __slots__ = ()

    name = ""
    span_id = 0
    parent_id = None
    start = 0.0
    end = 0.0
    duration = 0.0
    attributes: dict = {}
    events: list = []

    def set_attribute(self, key, value) -> None:
        pass

    def set_attributes(self, mapping) -> None:
        pass

    def add_event(self, name, attributes=None, timestamp=None) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _NoopSpanContext:
    """Stateless reusable context manager yielding the shared no-op span."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_CONTEXT = _NoopSpanContext()


class NoopTracer:
    """Tracing disabled: the same interface, no allocation, no recording."""

    enabled = False
    current_span = None

    def span(self, name: str, attributes: dict | None = None) -> _NoopSpanContext:
        return _NOOP_CONTEXT

    def add_event(self, name: str, attributes: dict | None = None) -> None:
        pass

    def finished_spans(self) -> list[Span]:
        return []

    def root_spans(self) -> list[Span]:
        return []

    def reset(self) -> None:
        pass


NOOP_TRACER = NoopTracer()
