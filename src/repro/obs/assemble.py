"""Cross-node trace assembly: one tree per query from many recorders.

Span ids are sequential *per tracer*, so a coordinator trace and N
flight-recorder traces collide the moment they meet.  Assembly renumbers
every span into one id space and resolves both parent forms:

* local ``parent_id`` — a span id on the *same* node;
* ``remote_parent`` — a ``"node:span_id"`` reference propagated over the
  wire (the sender's open span when the message left).

The result is a plain ``list[Span]`` whose ``parent_id`` links are
globally consistent, so the existing renderers
(:func:`~repro.obs.export.render_tree`,
:func:`~repro.obs.report.render_attribution`,
:func:`~repro.obs.report.critical_path`) work on it unchanged.
"""

from __future__ import annotations

from dataclasses import replace

from repro.obs.tracer import Span

__all__ = ["assemble_forest", "assemble_trace", "trace_ids"]


def trace_ids(spans: list[Span]) -> list[str]:
    """Distinct trace ids present, in first-appearance order."""
    seen: dict[str, None] = {}
    for span in spans:
        if span.trace_id is not None:
            seen.setdefault(span.trace_id, None)
    return list(seen)


def _sort_key(span: Span):
    # Coordinator spans first (they hold the roots), then per-node spans,
    # each group in recording order — deterministic for equal clocks.
    return (span.node is not None, span.node or "", span.span_id)


def assemble_forest(spans: list[Span]) -> list[Span]:
    """Renumber spans from many tracers into one consistent id space.

    Returns copies (inputs are never mutated) in the new id order.  A
    ``remote_parent`` whose target span was not collected (rotated out of
    a ring buffer, node never drained) leaves the span a root with the
    dangling reference kept in its attributes for forensics.
    """
    ordered = sorted(spans, key=_sort_key)
    new_ids: dict[tuple[str | None, int], int] = {}
    by_ref: dict[str, int] = {}
    for new_id, span in enumerate(ordered, start=1):
        new_ids[(span.node, span.span_id)] = new_id
        by_ref[span.ref] = new_id

    out: list[Span] = []
    for span in ordered:
        new_id = new_ids[(span.node, span.span_id)]
        parent = None
        attributes = dict(span.attributes)
        if span.parent_id is not None:
            parent = new_ids.get((span.node, span.parent_id))
        elif span.remote_parent is not None:
            parent = by_ref.get(span.remote_parent)
            if parent is None:
                attributes["unresolved_parent"] = span.remote_parent
        out.append(
            replace(
                span,
                span_id=new_id,
                parent_id=parent,
                attributes=attributes,
                events=list(span.events),
                remote_parent=None if parent is not None else span.remote_parent,
            )
        )
    return out


def assemble_trace(spans: list[Span], trace_id: str) -> list[Span]:
    """Assemble the single cross-node tree for one trace id."""
    return assemble_forest([s for s in spans if s.trace_id == trace_id])
