"""Live telemetry endpoint: a stdlib HTTP server over the obs layer.

Four read-only routes, enough for a Prometheus scrape and a human with
``curl``:

* ``/metrics``  — Prometheus text exposition of the metrics registry;
* ``/healthz``  — per-node liveness (JSON), fed by the resilience layer
  (failed links and excluded ring members mark nodes degraded);
* ``/traces``   — the most recent assembled cross-node traces (JSON);
* ``/leakage``  — the confidentiality observatory's report (JSON):
  leakage budgets, per-tenant ``C_DLA``, recent ``C_query`` values.

Opt-in: constructing a :class:`ConfidentialAuditingService` with
``REPRO_OBS_HTTP_PORT`` set (0 = ephemeral port) starts one
automatically; nothing listens otherwise.  The server binds localhost,
serves each request on a daemon thread, and holds no state of its own —
every route renders the live service objects at request time.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["ObsServer", "start_from_env", "OBS_HTTP_PORT_ENV_VAR"]

OBS_HTTP_PORT_ENV_VAR = "REPRO_OBS_HTTP_PORT"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    # The route table lives on the server object (see ObsServer.start).
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        route = self.path.split("?", 1)[0].rstrip("/") or "/"
        provider = self.server.routes.get(route)  # type: ignore[attr-defined]
        if provider is None:
            self.send_error(404, "unknown route")
            return
        try:
            content_type, body = provider()
        except Exception as exc:  # surface, don't kill the serving thread
            self.send_error(500, f"telemetry provider failed: {exc}")
            return
        payload = body.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:
        pass  # telemetry scrapes must not spam stdout


class ObsServer:
    """Serves ``/metrics``, ``/healthz``, ``/traces``, ``/leakage``.

    ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry` (or
    ``None``); the three callables return plain JSON-safe dicts and are
    invoked per request.  The usual construction site is
    ``service.start_obs_server()``, which wires all four to the live
    service.
    """

    def __init__(
        self,
        metrics=None,
        health=None,
        traces=None,
        leakage=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._metrics = metrics
        self._health = health
        self._traces = traces
        self._leakage = leakage
        self.host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- route providers ---------------------------------------------------

    def _render_metrics(self) -> tuple[str, str]:
        text = self._metrics.render_prometheus() if self._metrics else ""
        return ("text/plain; version=0.0.4; charset=utf-8", text)

    def _render_json(self, provider) -> tuple[str, str]:
        data = provider() if provider is not None else {}
        return ("application/json", json.dumps(data, indent=2) + "\n")

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer((self.host, self._requested_port), _Handler)
        httpd.daemon_threads = True
        httpd.routes = {  # type: ignore[attr-defined]
            "/metrics": self._render_metrics,
            "/healthz": lambda: self._render_json(self._health),
            "/traces": lambda: self._render_json(self._traces),
            "/leakage": lambda: self._render_json(self._leakage),
        }
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="repro-obs-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_from_env(service) -> ObsServer | None:
    """Start a telemetry server when ``REPRO_OBS_HTTP_PORT`` is set.

    The value is the port to bind (``0`` asks the OS for an ephemeral
    one — read it back from ``server.port``).  Unset/blank means no
    server; construction never fails the service over a bad value.
    """
    raw = os.environ.get(OBS_HTTP_PORT_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        port = int(raw)
    except ValueError:
        return None
    return ObsServer(
        metrics=service.metrics,
        health=service.health_snapshot,
        traces=service.recent_traces_snapshot,
        leakage=lambda: service.observatory.report(),
        port=port,
    ).start()
