"""Per-node flight recorders and the telemetry-collection round.

Cross-node tracing needs each party — TTPs, ring relays, the integrity
initiator, the credential authority — to record spans *locally* and ship
them to the coordinator later, exactly like an aircraft flight recorder:
bounded, always-on while tracing is enabled, and read out after the
fact.

* :class:`FlightRecorder` — a :class:`~repro.obs.tracer.Tracer` whose
  finished-span store is a bounded ring buffer (capacity
  ``REPRO_OBS_FLIGHT_SPANS``, default 2048).  Old spans fall off the
  front and are counted in ``dropped_spans``, so a long-lived node never
  grows without bound.
* :class:`TelemetryHub` — owns one recorder per node id, hands the
  transports the propagation context for outgoing messages
  (:meth:`sender_context`), opens per-node handler spans under a
  propagated parent (:meth:`node_span`), and attributes crypto cost to
  whichever node span is open (:meth:`add_cost`).
* :func:`run_collection_round` — the ``obs.collect`` / ``obs.spans``
  wire round: the coordinator polls every recorder *through the
  transport*, so over TCP the spans genuinely travel as frames.
  Collection messages are excluded from propagation and from the cost
  ledgers' reconciliation story (they run after the query's
  :class:`~repro.net.stats.CostReport` is collected).

The hub is inert (all no-ops, shared NOOP recorder) when the
coordinator's tracer is disabled, preserving the zero-overhead default.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import nullcontext

from repro.obs.export import span_from_dict, span_to_dict
from repro.obs.tracer import NOOP_TRACER, Span, Tracer

__all__ = [
    "FlightRecorder",
    "TelemetryHub",
    "run_collection_round",
    "FLIGHT_SPANS_ENV_VAR",
    "DEFAULT_FLIGHT_SPANS",
    "COLLECT_KIND",
    "SPANS_KIND",
]

FLIGHT_SPANS_ENV_VAR = "REPRO_OBS_FLIGHT_SPANS"
DEFAULT_FLIGHT_SPANS = 2048

COLLECT_KIND = "obs.collect"
SPANS_KIND = "obs.spans"


def _is_telemetry_kind(kind: str) -> bool:
    """Telemetry traffic must not trace itself (or stamp trace context)."""
    return kind.startswith("obs.")


class FlightRecorder(Tracer):
    """A tracer whose span store is a bounded per-node ring buffer.

    Everything else — thread-local stacks, sequential span ids, orphan
    events — is inherited.  ``drain()`` is what the collection round
    calls on the node side: it empties the buffer and returns the spans
    as wire-safe dicts.
    """

    def __init__(
        self,
        node: str,
        capacity: int | None = None,
        clock=time.perf_counter,
    ) -> None:
        if capacity is None:
            capacity = int(
                os.environ.get(FLIGHT_SPANS_ENV_VAR, str(DEFAULT_FLIGHT_SPANS))
            )
        super().__init__(clock=clock, node=node)
        self.capacity = max(1, capacity)
        self._ring: deque[Span] = deque(maxlen=self.capacity)
        self.dropped_spans = 0

    def _store(self, span: Span) -> None:
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped_spans += 1
            self._ring.append(span)

    def finished_spans(self) -> list[Span]:
        with self._lock:
            return list(self._ring)

    def drain(self) -> list[dict]:
        """Empty the ring buffer; spans leave as JSON-safe dicts."""
        with self._lock:
            spans = list(self._ring)
            self._ring.clear()
        return [span_to_dict(s) for s in spans]

    def reset(self) -> None:
        super().reset()
        with self._lock:
            self._ring.clear()
            self.dropped_spans = 0


class TelemetryHub:
    """One flight recorder per node, plus the propagation plumbing.

    The transports hold a hub reference (``net.telemetry``) and use it at
    their two choke points: stamping outgoing messages with the sender's
    current ``(trace_id, span ref)`` and wrapping handler delivery in a
    per-node span under the propagated parent.  Protocol code reaches the
    hub through ``ctx.telemetry`` for bootstrap (round-0) work that runs
    outside any message handler.
    """

    def __init__(self, tracer=None, metrics=None, capacity=None, clock=None) -> None:
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.metrics = metrics
        self.capacity = capacity
        self._clock = clock
        self._recorders: dict[str, FlightRecorder] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def recorder(self, node: str) -> FlightRecorder:
        with self._lock:
            rec = self._recorders.get(node)
            if rec is None:
                rec = FlightRecorder(
                    node,
                    capacity=self.capacity,
                    clock=self._clock or time.perf_counter,
                )
                if self.metrics is not None:
                    rec.attach_metrics(self.metrics)
                self._recorders[node] = rec
            return rec

    def node_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._recorders)

    # -- propagation -------------------------------------------------------

    def sender_context(self, src: str) -> tuple[str | None, str] | None:
        """Trace context to stamp on a message leaving ``src``.

        A handler sending mid-delivery has an open node span on this
        thread — that span is the parent.  Bootstrap sends (round 0,
        driven from the coordinator) fall back to the coordinator
        tracer's current span (typically the protocol span).
        """
        with self._lock:
            rec = self._recorders.get(src)
        if rec is not None:
            ctx = rec.current_context()
            if ctx is not None:
                return ctx
        return self.tracer.current_context()

    def node_span(
        self,
        node: str,
        name: str,
        attributes: dict | None = None,
        trace_id: str | None = None,
        remote_parent: str | None = None,
    ):
        """Context manager: a span recorded *at* ``node``.

        Roots under the propagated ``(trace_id, remote_parent)`` when
        given; otherwise under the coordinator's current span (the
        bootstrap case); nested calls chain locally as usual.
        """
        if not self.enabled:
            return nullcontext(None)
        rec = self.recorder(node)
        if rec.current_span is None and trace_id is None and remote_parent is None:
            ctx = self.tracer.current_context()
            if ctx is not None:
                trace_id, remote_parent = ctx
        return rec.span(
            name, attributes, trace_id=trace_id, remote_parent=remote_parent
        )

    def add_cost(self, node: str, key: str, amount: int) -> None:
        """Fold a cost count into the node's innermost open span, if any."""
        if not self.enabled:
            return
        with self._lock:
            rec = self._recorders.get(node)
        if rec is None:
            return
        span = rec.current_span
        if span is not None:
            span.attributes[key] = span.attributes.get(key, 0) + amount

    # -- readout -----------------------------------------------------------

    def drain_all(self) -> list[Span]:
        """Local (in-process) drain of every recorder, for tests/benches."""
        spans: list[Span] = []
        with self._lock:
            recorders = list(self._recorders.values())
        for rec in recorders:
            spans.extend(span_from_dict(d) for d in rec.drain())
        return spans

    def dropped_spans(self) -> int:
        with self._lock:
            return sum(r.dropped_spans for r in self._recorders.values())


def run_collection_round(
    hub: TelemetryHub,
    net,
    node_ids: list[str] | None = None,
    collector: str = "obs-collector",
) -> list[Span]:
    """Ship every node's flight-recorder spans to the coordinator.

    One ``obs.collect`` request per node, one ``obs.spans`` reply each —
    a real wire round over whatever transport ``net`` is (the simulated
    network or a TCP channel adapter), so span readout has the same
    delivery semantics as the protocols it observes.  Replaces the
    node's handler registration for the duration (the query the spans
    describe has already quiesced on this per-query network).
    """
    from repro.net.message import Message

    if not hub.enabled:
        return []
    node_ids = list(node_ids) if node_ids is not None else hub.node_ids()
    if not node_ids:
        return []
    collected: list[Span] = []

    def on_spans(msg, _transport) -> None:
        collected.extend(span_from_dict(d) for d in msg.payload["spans"])

    def make_responder(node_id: str):
        def on_collect(msg, transport) -> None:
            transport.send(
                msg.reply(SPANS_KIND, {"spans": hub.recorder(node_id).drain()})
            )

        return on_collect

    net.register(collector, on_spans)
    for node_id in node_ids:
        net.register(node_id, make_responder(node_id))
    for node_id in node_ids:
        net.send(
            Message(src=collector, dst=node_id, kind=COLLECT_KIND, payload={})
        )
    net.run()
    return collected
