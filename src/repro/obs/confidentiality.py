"""The confidentiality observatory: §5's metrics as live signals.

The paper defines ``C_query`` (eq. 12) and ``C_DLA`` (eq. 13) as
*measurements* of a running system, but :mod:`repro.audit.confidentiality`
only evaluates them statically.  The observatory closes the loop: every
query the service executes is observed with

* its ``C_auditing`` (from the plan's s/t/q decomposition),
* the mean ``C_store`` over the records it matched (eq. 10 needs a
  record; a query with no matches contributes ``C_auditing`` alone,
  i.e. ``C_store = 1`` — nothing about stored values was exposed),
* the :class:`~repro.smc.leakage.LeakageLedger` delta it produced, and
* the running ``C_DLA`` — the mean ``C_query`` per session *and* per
  tenant, so multi-tenant deployments can watch budgets separately.

A leakage *budget* (``REPRO_OBS_LEAKAGE_BUDGET``: max ledger events one
query may emit; 0/unset disables) turns the ledger into an alertable
signal: queries over budget increment
``repro_obs_leakage_budget_warnings_total``.  Gauges mirror the latest
``C_query``, the running ``C_DLA``, and the budget headroom so a
Prometheus scrape of ``/metrics`` sees confidentiality next to latency.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from dataclasses import dataclass, field
from statistics import mean

__all__ = [
    "QueryObservation",
    "ConfidentialityObservatory",
    "LEAKAGE_BUDGET_ENV_VAR",
]

LEAKAGE_BUDGET_ENV_VAR = "REPRO_OBS_LEAKAGE_BUDGET"

DEFAULT_TENANT = "default"
_HISTORY = 256


@dataclass(frozen=True)
class QueryObservation:
    """One query through the paper's confidentiality lens."""

    criterion: str
    tenant: str
    c_auditing: float
    c_store: float
    c_query: float
    matches: int
    leakage_events: int
    budget: int
    over_budget: bool

    def to_dict(self) -> dict:
        return {
            "criterion": self.criterion,
            "tenant": self.tenant,
            "c_auditing": round(self.c_auditing, 6),
            "c_store": round(self.c_store, 6),
            "c_query": round(self.c_query, 6),
            "matches": self.matches,
            "leakage_events": self.leakage_events,
            "budget": self.budget,
            "over_budget": self.over_budget,
        }


@dataclass
class _TenantLedger:
    c_queries: list[float] = field(default_factory=list)
    leakage_events: int = 0
    over_budget: int = 0

    def c_dla(self) -> float | None:
        return mean(self.c_queries) if self.c_queries else None


class ConfidentialityObservatory:
    """Computes C_query/C_DLA live and keeps the running report.

    Owned by :class:`~repro.core.service.ConfidentialAuditingService`;
    fed once per query with the plan, the matched records, and the
    ledger delta.  Thread-safe (the scheduler observes from worker
    threads).
    """

    def __init__(self, schema, plan, metrics=None, budget: int | None = None) -> None:
        self.schema = schema
        self.plan = plan
        self.metrics = metrics
        if budget is None:
            budget = int(os.environ.get(LEAKAGE_BUDGET_ENV_VAR, "0"))
        self.budget = max(0, budget)
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantLedger] = {}
        self._recent: deque[QueryObservation] = deque(maxlen=_HISTORY)
        if metrics is not None and self.budget:
            metrics.gauge(
                "repro_obs_leakage_budget",
                help="configured per-query leakage-event budget",
            ).set(self.budget)

    def observe_query(
        self,
        qplan,
        records,
        leakage_events: int,
        tenant: str = DEFAULT_TENANT,
        criterion: str | None = None,
    ) -> QueryObservation:
        """Fold one executed query into the observatory.

        ``qplan`` is the executed :class:`~repro.audit.planner.QueryPlan`
        (its s/t/q decomposition gives eq. 11); ``records`` the matched
        :class:`~repro.logstore.records.LogRecord` objects (eq. 10);
        ``leakage_events`` the ledger delta this query produced.
        """
        # Deferred: repro.audit transitively imports repro.obs submodules,
        # so a module-level import here would close a package-init cycle.
        from repro.audit.confidentiality import (
            auditing_confidentiality,
            store_confidentiality,
        )

        c_aud = auditing_confidentiality(qplan, self.schema, self.plan)
        if records:
            c_store = mean(
                store_confidentiality(r, self.schema, self.plan).value
                for r in records
            )
        else:
            c_store = 1.0
        c_query = c_aud * c_store
        over = bool(self.budget) and leakage_events > self.budget
        obs = QueryObservation(
            criterion=criterion if criterion is not None else qplan.criterion_text,
            tenant=tenant,
            c_auditing=c_aud,
            c_store=c_store,
            c_query=c_query,
            matches=len(records),
            leakage_events=leakage_events,
            budget=self.budget,
            over_budget=over,
        )
        with self._lock:
            ledger = self._tenants.setdefault(tenant, _TenantLedger())
            ledger.c_queries.append(c_query)
            ledger.leakage_events += leakage_events
            if over:
                ledger.over_budget += 1
            self._recent.append(obs)
        self._emit_metrics(obs, tenant)
        return obs

    def _emit_metrics(self, obs: QueryObservation, tenant: str) -> None:
        if self.metrics is None:
            return
        labels = {"tenant": tenant}
        self.metrics.gauge(
            "repro_obs_c_query",
            help="C_query (eq. 12) of the most recent query",
            labels=labels,
        ).set(obs.c_query)
        self.metrics.gauge(
            "repro_obs_c_dla",
            help="running C_DLA (eq. 13): mean C_query this session",
            labels=labels,
        ).set(self.c_dla(tenant) or 0.0)
        self.metrics.counter(
            "repro_obs_leakage_events_total",
            help="leakage-ledger entries attributed to queries",
            labels=labels,
        ).inc(obs.leakage_events)
        if obs.over_budget:
            self.metrics.counter(
                "repro_obs_leakage_budget_warnings_total",
                help="queries whose leakage exceeded REPRO_OBS_LEAKAGE_BUDGET",
                labels=labels,
            ).inc()

    # -- readout -----------------------------------------------------------

    def c_dla(self, tenant: str | None = None) -> float | None:
        """eq. 13 over this session: per tenant, or across all tenants."""
        with self._lock:
            if tenant is not None:
                ledger = self._tenants.get(tenant)
                return ledger.c_dla() if ledger else None
            values = [c for t in self._tenants.values() for c in t.c_queries]
        return mean(values) if values else None

    def query_count(self) -> int:
        with self._lock:
            return sum(len(t.c_queries) for t in self._tenants.values())

    def report(self) -> dict:
        """The ``/leakage`` endpoint body: budgets, C_DLA, recent queries."""
        with self._lock:
            tenants = {
                name: {
                    "queries": len(ledger.c_queries),
                    "c_dla": round(ledger.c_dla(), 6) if ledger.c_queries else None,
                    "leakage_events": ledger.leakage_events,
                    "over_budget": ledger.over_budget,
                }
                for name, ledger in sorted(self._tenants.items())
            }
            recent = [obs.to_dict() for obs in self._recent]
        overall = self.c_dla()
        return {
            "budget": self.budget,
            "queries": sum(t["queries"] for t in tenants.values()),
            "c_dla": round(overall, 6) if overall is not None else None,
            "tenants": tenants,
            "recent": recent,
        }
