"""Counters, gauges, and fixed-bucket histograms with a Prometheus dump.

A :class:`MetricsRegistry` holds metric *families* keyed by name; each
family holds one instance per label set.  The shapes mirror the
Prometheus exposition format so :meth:`MetricsRegistry.render_prometheus`
is a faithful text dump, while :meth:`MetricsRegistry.snapshot` gives a
plain JSON-safe dict for tests and logs.

Fixed buckets keep histograms allocation-free on the hot path: the three
bucket ladders below cover the quantities the DLA run actually produces
(frame sizes from a few hundred bytes to megabyte convoy bundles,
per-stage latencies from microseconds to seconds, and modexp batch sizes
from singleton equality checks to thousand-element rings).
"""

from __future__ import annotations

import bisect
import threading

from repro.errors import ConfigurationError
from repro.obs.export import escape_help_text, escape_label_value

# One process-wide lock guards every metric mutation and family lookup.
# Emission is cheap (an int add) and the scheduler's concurrent queries
# emit from many threads; a single coarse lock keeps increments exact
# without per-metric lock storage (Counter/Gauge/Histogram use __slots__).
_LOCK = threading.Lock()

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledMetricsView",
    "MetricsRegistry",
    "SIZE_BUCKETS_BYTES",
    "LATENCY_BUCKETS_SECONDS",
    "BATCH_BUCKETS",
]

SIZE_BUCKETS_BYTES = (64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)
LATENCY_BUCKETS_SECONDS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)
BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up")
        with _LOCK:
            self.value += amount


class Gauge:
    """A value that can go up and down (queue depths, in-flight work)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int | float) -> None:
        with _LOCK:
            self.value = value

    def inc(self, amount: int | float = 1) -> None:
        with _LOCK:
            self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        with _LOCK:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram: cumulative counts, sum, and observation count."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        if not buckets:
            raise ConfigurationError("histogram needs at least one bucket bound")
        ordered = tuple(sorted(buckets))
        if len(set(ordered)) != len(ordered):
            raise ConfigurationError("histogram bucket bounds must be distinct")
        self.buckets = ordered
        self.counts = [0] * (len(ordered) + 1)  # final slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: int | float) -> None:
        with _LOCK:
            self.counts[bisect.bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> list[int]:
        """Prometheus-style cumulative counts (one per bound, plus +Inf)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class _Family:
    __slots__ = ("name", "kind", "help", "buckets", "instances")

    def __init__(self, name: str, kind: str, help_: str, buckets=None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_
        self.buckets = buckets
        self.instances: dict[tuple, object] = {}


def _label_key(labels: dict | None) -> tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"


class MetricsRegistry:
    """Get-or-create registry of metric families.

    ``counter`` / ``gauge`` / ``histogram`` return the live instance for a
    (name, labels) pair, creating it on first use — call sites never need
    registration boilerplate.  Registering one name as two different
    kinds is a bug and raises.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _family(self, name: str, kind: str, help_: str, buckets=None) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", labels: dict | None = None) -> Counter:
        with _LOCK:
            family = self._family(name, "counter", help)
            key = _label_key(labels)
            metric = family.instances.get(key)
            if metric is None:
                metric = family.instances[key] = Counter()
        return metric  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: dict | None = None) -> Gauge:
        with _LOCK:
            family = self._family(name, "gauge", help)
            key = _label_key(labels)
            metric = family.instances.get(key)
            if metric is None:
                metric = family.instances[key] = Gauge()
        return metric  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        help: str = "",
        labels: dict | None = None,
    ) -> Histogram:
        if labels and "le" in labels:
            # "le" is reserved for the bucket bound; a user label of the
            # same name would render two le= pairs on every _bucket line.
            raise ConfigurationError("histogram label 'le' is reserved")
        with _LOCK:
            family = self._family(
                name, "histogram", help, buckets or LATENCY_BUCKETS_SECONDS
            )
            key = _label_key(labels)
            metric = family.instances.get(key)
            if metric is None:
                metric = family.instances[key] = Histogram(family.buckets)
        return metric  # type: ignore[return-value]

    def labeled(self, **labels) -> "LabeledMetricsView":
        """A view that stamps ``labels`` onto every metric it touches.

        The view shares this registry's families — a multi-shard
        deployment hands each shard ``root.labeled(shard="s0")`` and one
        ``/metrics`` scrape of the root sees every shard's series side by
        side, distinguished only by the label.
        """
        return LabeledMetricsView(self, labels)

    # -- export ------------------------------------------------------------

    def value(self, name: str, labels: dict | None = None):
        """Current value of one counter/gauge instance, or ``None``.

        A read-only probe that never creates families or instances —
        tests and report printers can ask for metrics that may not have
        been emitted.  Histograms have no single value; asking for one
        raises.
        """
        family = self._families.get(name)
        if family is None:
            return None
        if family.kind == "histogram":
            raise ConfigurationError(
                f"metric {name!r} is a histogram; read it via snapshot()"
            )
        metric = family.instances.get(_label_key(labels))
        return None if metric is None else metric.value

    def snapshot(self) -> dict:
        """Plain-dict dump: family -> {type, help, values-by-label-string}."""
        out: dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            values: dict = {}
            for key in sorted(family.instances):
                metric = family.instances[key]
                label_str = ",".join(f"{k}={v}" for k, v in key)
                if isinstance(metric, Histogram):
                    values[label_str] = {
                        "buckets": list(metric.buckets),
                        "counts": list(metric.counts),
                        "sum": metric.sum,
                        "count": metric.count,
                    }
                else:
                    values[label_str] = metric.value
            out[name] = {"type": family.kind, "help": family.help, "values": values}
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format dump of every family."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {escape_help_text(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.instances):
                metric = family.instances[key]
                suffix = _label_suffix(key)
                if isinstance(metric, Histogram):
                    cumulative = metric.cumulative()
                    bounds = [*(str(b) for b in metric.buckets), "+Inf"]
                    for bound, count in zip(bounds, cumulative):
                        if key:
                            labelled = _label_suffix(key + (("le", bound),))
                        else:
                            labelled = _label_suffix((("le", bound),))
                        lines.append(f"{name}_bucket{labelled} {count}")
                    lines.append(f"{name}_sum{suffix} {metric.sum}")
                    lines.append(f"{name}_count{suffix} {metric.count}")
                else:
                    lines.append(f"{name}{suffix} {metric.value}")
        return "\n".join(lines) + ("\n" if lines else "")


class LabeledMetricsView:
    """A :class:`MetricsRegistry` facade that merges fixed labels in.

    Every ``counter``/``gauge``/``histogram``/``value`` call goes to the
    underlying registry with the view's labels folded into the call-site
    labels (call-site keys win on collision, so a query-level ``tenant``
    can still vary under a fixed ``shard``).  Everything else —
    ``snapshot``, ``render_prometheus``, further ``labeled`` chaining —
    delegates, so the view is drop-in wherever a registry is expected.
    """

    def __init__(self, registry, labels: dict) -> None:
        self._registry = registry
        self._labels = {str(k): str(v) for k, v in (labels or {}).items()}

    @property
    def base_labels(self) -> dict:
        return dict(self._labels)

    def _merge(self, labels: dict | None) -> dict:
        merged = dict(self._labels)
        if labels:
            merged.update(labels)
        return merged

    def counter(self, name: str, help: str = "", labels: dict | None = None) -> Counter:
        return self._registry.counter(name, help, self._merge(labels))

    def gauge(self, name: str, help: str = "", labels: dict | None = None) -> Gauge:
        return self._registry.gauge(name, help, self._merge(labels))

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        help: str = "",
        labels: dict | None = None,
    ) -> Histogram:
        return self._registry.histogram(name, buckets, help, self._merge(labels))

    def value(self, name: str, labels: dict | None = None):
        return self._registry.value(name, self._merge(labels))

    def labeled(self, **labels) -> "LabeledMetricsView":
        return LabeledMetricsView(self._registry, self._merge(labels))

    def __getattr__(self, name: str):
        # Reads (snapshot, render_prometheus, families...) fall through to
        # the shared root registry.
        return getattr(self._registry, name)
