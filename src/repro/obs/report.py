"""Cost attribution over a span tree.

Turns a trace into the table the paper's §5 analysis wants: for every
span, the wall-clock time, messages, bytes, and modular exponentiations
it accounts for, plus its share of the parent span.  Spans that recorded
explicit cost attributes (the protocol drivers and the query executor
do) report those; structural spans without them inherit the sum of
their children — so the table is consistent at every level of
``run → protocol → round → stage``.
"""

from __future__ import annotations

from repro.obs.export import _children_index
from repro.obs.tracer import Span

__all__ = ["COST_KEYS", "span_cost", "attribution_rows", "render_attribution"]

COST_KEYS = ("messages", "bytes", "modexp")


def span_cost(
    span: Span,
    children: dict[int | None, list[Span]],
    _memo: dict[int, dict] | None = None,
) -> dict:
    """Cost vector of one span: own attributes, else the sum over children."""
    memo = {} if _memo is None else _memo
    cached = memo.get(span.span_id)
    if cached is not None:
        return cached
    cost = {"time": span.duration}
    kids = children.get(span.span_id, [])
    for key in COST_KEYS:
        if key in span.attributes:
            cost[key] = span.attributes[key]
        else:
            cost[key] = sum(span_cost(kid, children, memo)[key] for kid in kids)
    memo[span.span_id] = cost
    return cost


def _percent(part: float, whole: float) -> str:
    if whole <= 0:
        return "—"
    return f"{100.0 * part / whole:.1f}%"


def attribution_rows(spans: list[Span]) -> list[dict]:
    """Flatten the span forest into table rows (depth-first, run order).

    Each row carries ``depth``, ``name``, the cost vector, the share of
    the parent's wall-clock (``of_parent``), and the span's event count.
    """
    children = _children_index(spans)
    memo: dict[int, dict] = {}
    rows: list[dict] = []

    def walk(span: Span, depth: int, parent_cost: dict | None) -> None:
        cost = span_cost(span, children, memo)
        rows.append(
            {
                "depth": depth,
                "name": span.name,
                "time": cost["time"],
                "messages": cost["messages"],
                "bytes": cost["bytes"],
                "modexp": cost["modexp"],
                "of_parent": _percent(
                    cost["time"], parent_cost["time"] if parent_cost else 0.0
                ),
                "events": len(span.events),
            }
        )
        for child in children.get(span.span_id, []):
            walk(child, depth + 1, cost)

    for root in children.get(None, []):
        walk(root, 0, None)
    return rows


def render_attribution(spans: list[Span]) -> str:
    """The ``trace-report`` table: cost attribution per span."""
    rows = attribution_rows(spans)
    if not rows:
        return "(empty trace)"
    rendered = [
        (
            "  " * row["depth"] + row["name"],
            f"{row['time'] * 1e3:.3f}",
            row["of_parent"],
            str(row["messages"]),
            str(row["bytes"]),
            str(row["modexp"]),
            str(row["events"]),
        )
        for row in rows
    ]
    headers = ("span", "time ms", "% parent", "msgs", "bytes", "modexp", "events")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rendered:
        cells = [r[0].ljust(widths[0])]
        cells += [r[i].rjust(widths[i]) for i in range(1, len(headers))]
        lines.append("  ".join(cells))
    return "\n".join(lines)
