"""Cost attribution over a span tree.

Turns a trace into the table the paper's §5 analysis wants: for every
span, the wall-clock time, messages, bytes, and modular exponentiations
it accounts for, plus its share of the parent span.  Spans that recorded
explicit cost attributes (the protocol drivers and the query executor
do) report those; structural spans without them inherit the sum of
their children — so the table is consistent at every level of
``run → protocol → round → stage``.
"""

from __future__ import annotations

from repro.obs.export import _children_index
from repro.obs.tracer import Span

__all__ = [
    "COST_KEYS",
    "span_cost",
    "attribution_rows",
    "render_attribution",
    "critical_path",
    "render_critical_path",
]

COST_KEYS = ("messages", "bytes", "modexp")


def span_cost(
    span: Span,
    children: dict[int | None, list[Span]],
    _memo: dict[int, dict] | None = None,
) -> dict:
    """Cost vector of one span: own attributes, else the sum over children."""
    memo = {} if _memo is None else _memo
    cached = memo.get(span.span_id)
    if cached is not None:
        return cached
    cost = {"time": span.duration}
    kids = children.get(span.span_id, [])
    for key in COST_KEYS:
        if key in span.attributes:
            cost[key] = span.attributes[key]
        else:
            cost[key] = sum(span_cost(kid, children, memo)[key] for kid in kids)
    memo[span.span_id] = cost
    return cost


def _percent(part: float, whole: float) -> str:
    if whole <= 0:
        return "—"
    return f"{100.0 * part / whole:.1f}%"


def attribution_rows(spans: list[Span]) -> list[dict]:
    """Flatten the span forest into table rows (depth-first, run order).

    Each row carries ``depth``, ``name``, the cost vector, the share of
    the parent's wall-clock (``of_parent``), the span's event count, and
    the owning ``shard`` — a span's own ``shard`` attribute (the sharded
    scatter-gather stamps it on coordinator and per-ring spans), else
    inherited down the tree, else ``"—"`` for unsharded deployments.
    """
    children = _children_index(spans)
    memo: dict[int, dict] = {}
    rows: list[dict] = []

    def walk(
        span: Span, depth: int, parent_cost: dict | None, shard: str
    ) -> None:
        cost = span_cost(span, children, memo)
        shard = str(span.attributes.get("shard", shard))
        rows.append(
            {
                "depth": depth,
                "name": span.name,
                "shard": shard,
                "time": cost["time"],
                "messages": cost["messages"],
                "bytes": cost["bytes"],
                "modexp": cost["modexp"],
                "of_parent": _percent(
                    cost["time"], parent_cost["time"] if parent_cost else 0.0
                ),
                "events": len(span.events),
            }
        )
        for child in children.get(span.span_id, []):
            walk(child, depth + 1, cost, shard)

    for root in children.get(None, []):
        walk(root, 0, None, "—")
    return rows


def render_attribution(spans: list[Span]) -> str:
    """The ``trace-report`` table: cost attribution per span."""
    rows = attribution_rows(spans)
    if not rows:
        return "(empty trace)"
    rendered = [
        (
            "  " * row["depth"] + row["name"],
            row["shard"],
            f"{row['time'] * 1e3:.3f}",
            row["of_parent"],
            str(row["messages"]),
            str(row["bytes"]),
            str(row["modexp"]),
            str(row["events"]),
        )
        for row in rows
    ]
    headers = (
        "span", "shard", "time ms", "% parent", "msgs", "bytes", "modexp", "events",
    )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rendered:
        cells = [r[0].ljust(widths[0])]
        cells += [r[i].rjust(widths[i]) for i in range(1, len(headers))]
        lines.append("  ".join(cells))
    return "\n".join(lines)


def critical_path(spans: list[Span], root: Span | None = None) -> list[dict]:
    """The chain of spans that determined the root's end time.

    From the root (the longest root span when not given), repeatedly
    descend into the child that *finished last* — with sequential ring
    protocols that is exactly the hop the query was waiting on.  Each row
    reports the span's own duration, its ``self_ms`` (time not covered
    by the next span on the path), and its share of the root.
    """
    if not spans:
        return []
    children = _children_index(spans)
    if root is None:
        roots = children.get(None, [])
        if not roots:
            return []
        root = max(roots, key=lambda s: s.duration)

    path: list[Span] = [root]
    node = root
    while True:
        kids = [k for k in children.get(node.span_id, []) if k.end is not None]
        if not kids:
            break
        node = max(kids, key=lambda k: (k.end, k.start))
        path.append(node)

    total = root.duration or 0.0
    rows: list[dict] = []
    for i, span in enumerate(path):
        following = path[i + 1].duration if i + 1 < len(path) else 0.0
        rows.append(
            {
                "name": span.name,
                "node": span.node or "coord",
                "duration": span.duration,
                "self": max(0.0, span.duration - following),
                "of_root": (span.duration / total) if total > 0 else 0.0,
            }
        )
    return rows


def render_critical_path(spans: list[Span]) -> str:
    """Human-readable critical path: which hop dominates the query."""
    rows = critical_path(spans)
    if not rows:
        return "(empty trace)"
    rendered = [
        (
            "  " * i + row["name"],
            row["node"],
            f"{row['duration'] * 1e3:.3f}",
            f"{row['self'] * 1e3:.3f}",
            f"{row['of_root'] * 100:.1f}%",
        )
        for i, row in enumerate(rows)
    ]
    headers = ("critical path", "node", "span ms", "self ms", "% of root")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rendered:
        cells = [r[0].ljust(widths[0])]
        cells += [r[i].rjust(widths[i]) for i in range(1, len(headers))]
        lines.append("  ".join(cells))
    dominant = max(rows, key=lambda r: r["self"])
    lines.append(
        f"dominant: {dominant['name']} on {dominant['node']} "
        f"({dominant['self'] * 1e3:.3f} ms self)"
    )
    return "\n".join(lines)
