"""repro.obs — unified tracing, metrics, and cost attribution.

The paper's headline claim is quantitative (relaxed SMC is orders of
magnitude cheaper than circuit MPC), so the reproduction counts
everything — but totals alone cannot say *where* a query spent its time,
messages, bytes, or modexps.  This package adds the missing correlation
layer:

* :class:`~repro.obs.tracer.Tracer` — nested spans
  (``run → protocol → round → stage``) with monotonic timestamps,
  per-span attributes, and span events.  The
  :class:`~repro.obs.tracer.NoopTracer` (the default everywhere) makes
  tracing opt-in with near-zero disabled cost.
* :mod:`~repro.obs.flight` — cross-node tracing: bounded per-node
  :class:`~repro.obs.flight.FlightRecorder` ring buffers, the
  :class:`~repro.obs.flight.TelemetryHub` the transports propagate trace
  context through, and the ``obs.collect``/``obs.spans`` collection
  round that ships node-local spans back to the coordinator.
* :mod:`~repro.obs.assemble` — renumbers spans from many recorders into
  one consistent tree per ``trace_id`` (resolving ``"node:span_id"``
  remote-parent references).
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  fixed-bucket histograms that :class:`~repro.net.stats.NetworkStats`
  and :class:`~repro.net.stats.CryptoOpCounter` feed into.
* :mod:`~repro.obs.export` — JSON-lines span log, Prometheus-style text
  dump, and a human-readable span tree.
* :mod:`~repro.obs.report` — the ``python -m repro trace-report`` cost
  attribution table (time / messages / bytes / modexp per span, % of
  parent) and the ``--critical-path`` analysis.
* :class:`~repro.obs.confidentiality.ConfidentialityObservatory` — the
  paper's §5 metrics (``C_query``, ``C_DLA``) computed live per query
  and per tenant, with leakage-budget gauges.
* :class:`~repro.obs.server.ObsServer` — the stdlib HTTP telemetry
  endpoint (``/metrics``, ``/healthz``, ``/traces``, ``/leakage``),
  opt-in via ``REPRO_OBS_HTTP_PORT``.

Emitted traces are deterministic modulo timestamps: span ids are
sequential per tracer, so tests can assert the exact span structure of a
protocol run.
"""

from repro.obs.assemble import assemble_forest, assemble_trace, trace_ids
from repro.obs.confidentiality import (
    ConfidentialityObservatory,
    QueryObservation,
)
from repro.obs.export import (
    escape_help_text,
    escape_label_value,
    export_jsonl,
    load_jsonl,
    loads_jsonl,
    render_tree,
    write_jsonl,
)
from repro.obs.flight import (
    FlightRecorder,
    TelemetryHub,
    run_collection_round,
)
from repro.obs.metrics import (
    BATCH_BUCKETS,
    LATENCY_BUCKETS_SECONDS,
    SIZE_BUCKETS_BYTES,
    MetricsRegistry,
)
from repro.obs.report import (
    attribution_rows,
    critical_path,
    render_attribution,
    render_critical_path,
)
from repro.obs.server import ObsServer
from repro.obs.tracer import NOOP_TRACER, NoopTracer, Span, SpanEvent, Tracer

__all__ = [
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "Span",
    "SpanEvent",
    "FlightRecorder",
    "TelemetryHub",
    "run_collection_round",
    "assemble_forest",
    "assemble_trace",
    "trace_ids",
    "ConfidentialityObservatory",
    "QueryObservation",
    "ObsServer",
    "MetricsRegistry",
    "SIZE_BUCKETS_BYTES",
    "LATENCY_BUCKETS_SECONDS",
    "BATCH_BUCKETS",
    "export_jsonl",
    "write_jsonl",
    "load_jsonl",
    "loads_jsonl",
    "render_tree",
    "escape_label_value",
    "escape_help_text",
    "attribution_rows",
    "render_attribution",
    "critical_path",
    "render_critical_path",
]
