"""repro.obs — unified tracing, metrics, and cost attribution.

The paper's headline claim is quantitative (relaxed SMC is orders of
magnitude cheaper than circuit MPC), so the reproduction counts
everything — but totals alone cannot say *where* a query spent its time,
messages, bytes, or modexps.  This package adds the missing correlation
layer:

* :class:`~repro.obs.tracer.Tracer` — nested spans
  (``run → protocol → round → stage``) with monotonic timestamps,
  per-span attributes, and span events.  The
  :class:`~repro.obs.tracer.NoopTracer` (the default everywhere) makes
  tracing opt-in with near-zero disabled cost.
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  fixed-bucket histograms that :class:`~repro.net.stats.NetworkStats`
  and :class:`~repro.net.stats.CryptoOpCounter` feed into.
* :mod:`~repro.obs.export` — JSON-lines span log, Prometheus-style text
  dump, and a human-readable span tree.
* :mod:`~repro.obs.report` — the ``python -m repro trace-report`` cost
  attribution table (time / messages / bytes / modexp per span, % of
  parent).

Emitted traces are deterministic modulo timestamps: span ids are
sequential per tracer, so tests can assert the exact span structure of a
protocol run.
"""

from repro.obs.export import (
    export_jsonl,
    load_jsonl,
    loads_jsonl,
    render_tree,
    write_jsonl,
)
from repro.obs.metrics import (
    BATCH_BUCKETS,
    LATENCY_BUCKETS_SECONDS,
    SIZE_BUCKETS_BYTES,
    MetricsRegistry,
)
from repro.obs.report import attribution_rows, render_attribution
from repro.obs.tracer import NOOP_TRACER, NoopTracer, Span, SpanEvent, Tracer

__all__ = [
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "Span",
    "SpanEvent",
    "MetricsRegistry",
    "SIZE_BUCKETS_BYTES",
    "LATENCY_BUCKETS_SECONDS",
    "BATCH_BUCKETS",
    "export_jsonl",
    "write_jsonl",
    "load_jsonl",
    "loads_jsonl",
    "render_tree",
    "attribution_rows",
    "render_attribution",
]
