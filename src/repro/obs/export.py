"""Trace exporters: JSON-lines span log and a human-readable span tree.

The JSON-lines format writes one span object per line in completion
order (children precede parents, matching the order the tracer closed
them).  Every field is JSON-native, so the file round-trips exactly:
``loads_jsonl(export_jsonl(spans))`` reconstructs equal spans.  This is
the interchange format the ``python -m repro trace-report`` CLI reads
and the CI workflow uploads as an artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.tracer import Span, SpanEvent

__all__ = [
    "span_to_dict",
    "span_from_dict",
    "export_jsonl",
    "write_jsonl",
    "load_jsonl",
    "loads_jsonl",
    "render_tree",
    "escape_label_value",
    "escape_help_text",
]


def span_to_dict(span: Span) -> dict:
    data = {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "attributes": dict(span.attributes),
        "events": [event.to_dict() for event in span.events],
    }
    # Cross-node fields appear only when set, so traces written before
    # propagation existed stay valid and byte-identical on re-export.
    if span.trace_id is not None:
        data["trace_id"] = span.trace_id
    if span.node is not None:
        data["node"] = span.node
    if span.remote_parent is not None:
        data["remote_parent"] = span.remote_parent
    return data


def span_from_dict(data: dict) -> Span:
    return Span(
        name=data["name"],
        span_id=data["span_id"],
        parent_id=data["parent_id"],
        start=data["start"],
        end=data["end"],
        attributes=dict(data.get("attributes", {})),
        events=[
            SpanEvent(
                name=e["name"],
                timestamp=e["ts"],
                attributes=dict(e.get("attributes", {})),
            )
            for e in data.get("events", [])
        ],
        trace_id=data.get("trace_id"),
        node=data.get("node"),
        remote_parent=data.get("remote_parent"),
    )


def escape_label_value(value: str) -> str:
    """Prometheus text-format label-value escaping.

    The exposition format requires backslash, double-quote, and newline
    escaped inside ``label="value"`` — anything else is emitted verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help_text(text: str) -> str:
    """``# HELP`` line escaping: backslash and newline only (no quotes)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def export_jsonl(spans: list[Span]) -> str:
    """One JSON object per line, completion order preserved."""
    return "".join(json.dumps(span_to_dict(s), sort_keys=True) + "\n" for s in spans)


def write_jsonl(spans: list[Span], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(export_jsonl(spans), encoding="utf-8")
    return path


def loads_jsonl(text: str) -> list[Span]:
    spans = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            spans.append(span_from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError) as exc:
            raise ConfigurationError(
                f"malformed trace line {lineno}: {exc}"
            ) from exc
    return spans


def load_jsonl(path: str | Path) -> list[Span]:
    return loads_jsonl(Path(path).read_text(encoding="utf-8"))


def _children_index(spans: list[Span]) -> dict[int | None, list[Span]]:
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    # Start order within a parent mirrors execution order.
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))
    return children


def render_tree(spans: list[Span], include_events: bool = False) -> str:
    """Indented human-readable dump of the span forest."""
    children = _children_index(spans)
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        pad = "  " * depth
        attrs = ""
        if span.attributes:
            inner = ", ".join(
                f"{k}={span.attributes[k]!r}" for k in sorted(span.attributes)
            )
            attrs = f" [{inner}]"
        lines.append(f"{pad}{span.name} ({span.duration * 1e3:.3f} ms){attrs}")
        if include_events:
            for event in span.events:
                lines.append(f"{pad}  · {event.name} {event.attributes}")
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)
