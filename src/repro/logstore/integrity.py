"""Distributed integrity cross-checking (paper §4.1, eq. 8-9).

When a user writes a record, it accumulates every fragment into
``A(x_0, Log_0, ..., Log_{n-1})`` and hands the value to all DLA nodes.
To audit integrity later, a node circulates an accumulation token around
the cluster keyed by glsn; each node folds in *its own stored fragment*.
Quasi-commutativity (eq. 9) makes the result order-independent, so the
final token must equal the stored anchor — any single tampered fragment
changes it.  The checking nodes never see each other's fragments: only
accumulator values travel.

Both an in-process checker (:class:`IntegrityChecker`) and a message-driven
ring protocol (:func:`run_integrity_round`) are provided; the ring form is
what the networked service uses and what the integrity benchmarks measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.accumulator import OneWayAccumulator
from repro.errors import IntegrityError, ProtocolAbortError
from repro.logstore.store import DistributedLogStore, FragmentStore
from repro.net.message import Message
from repro.net.simnet import SimNetwork

__all__ = ["IntegrityChecker", "IntegrityReport", "IntegrityNode", "run_integrity_round"]


@dataclass(frozen=True)
class IntegrityReport:
    """Outcome of checking one glsn (or a batch)."""

    glsn: int
    ok: bool
    expected: int
    observed: int
    messages: int = 0


class IntegrityChecker:
    """In-process integrity verification over a :class:`DistributedLogStore`."""

    def __init__(self, store: DistributedLogStore) -> None:
        self.store = store
        self.accumulator: OneWayAccumulator = store.accumulator

    def check_glsn(self, glsn: int) -> IntegrityReport:
        """Fold every node's stored fragment; compare with the anchor."""
        observed = self.accumulator.params.x0
        expected = None
        for node_id in sorted(self.store.stores):
            node = self.store.stores[node_id]
            fragment = node.local_fragment(glsn)
            observed = self.accumulator.step(observed, fragment.canonical_bytes())
            anchor = node.expected_accumulator(glsn)
            if expected is None:
                expected = anchor
            elif expected != anchor:
                # Nodes disagree about the anchor itself: a compromised node
                # rewrote its copy.  Report against the majority value.
                anchors = [
                    s.expected_accumulator(glsn) for s in self.store.stores.values()
                ]
                expected = max(set(anchors), key=anchors.count)
        return IntegrityReport(
            glsn=glsn, ok=observed == expected, expected=expected, observed=observed
        )

    def check_all(self) -> list[IntegrityReport]:
        return [self.check_glsn(glsn) for glsn in self.store.glsns]

    def require_clean(self) -> None:
        """Raise :class:`IntegrityError` naming every tampered glsn."""
        bad = [r.glsn for r in self.check_all() if not r.ok]
        if bad:
            raise IntegrityError(
                "integrity violation at glsn(s): "
                + ", ".join(format(g, "x") for g in bad)
            )


@dataclass
class _RingState:
    reports: dict[int, IntegrityReport] = field(default_factory=dict)


class IntegrityNode:
    """Message-driven participant in the §4.1 accumulator ring.

    Each instance wraps one node's :class:`FragmentStore`.  The initiator
    calls :meth:`start_check`; the token visits every node once and returns.
    """

    def __init__(
        self,
        node_id: str,
        store: FragmentStore,
        accumulator: OneWayAccumulator,
        ring: list[str],
    ) -> None:
        self.node_id = node_id
        self.store = store
        self.accumulator = accumulator
        self.ring = sorted(ring)
        self.state = _RingState()

    def start_check(self, transport, glsn: int) -> None:
        """Initiate a circulation for one glsn (we fold our fragment first)."""
        value = self.accumulator.step(
            self.accumulator.params.x0,
            self.store.local_fragment(glsn).canonical_bytes(),
        )
        remaining = [n for n in self.ring if n != self.node_id]
        self._forward(transport, glsn, value, remaining)

    def _forward(self, transport, glsn: int, value: int, remaining: list[str]) -> None:
        if remaining:
            transport.send(
                Message(
                    src=self.node_id,
                    dst=remaining[0],
                    kind="integ.pass",
                    payload={
                        "glsn": glsn,
                        "value": value,
                        "remaining": remaining[1:],
                        "origin": self.node_id,
                    },
                )
            )
        else:
            self._finish(glsn, value)

    def handle(self, msg: Message, transport) -> None:
        if msg.kind == "integ.pass":
            glsn = msg.payload["glsn"]
            value = self.accumulator.step(
                msg.payload["value"],
                self.store.local_fragment(glsn).canonical_bytes(),
            )
            remaining = msg.payload["remaining"]
            origin = msg.payload["origin"]
            if remaining:
                transport.send(
                    Message(
                        src=self.node_id,
                        dst=remaining[0],
                        kind="integ.pass",
                        payload={
                            "glsn": glsn,
                            "value": value,
                            "remaining": remaining[1:],
                            "origin": origin,
                        },
                    )
                )
            else:
                transport.send(
                    Message(
                        src=self.node_id,
                        dst=origin,
                        kind="integ.done",
                        payload={"glsn": glsn, "value": value},
                    )
                )
        elif msg.kind == "integ.done":
            self._finish(msg.payload["glsn"], msg.payload["value"])
        else:
            raise ProtocolAbortError(f"unexpected message kind {msg.kind!r}")

    def _finish(self, glsn: int, observed: int) -> None:
        expected = self.store.expected_accumulator(glsn)
        self.state.reports[glsn] = IntegrityReport(
            glsn=glsn, ok=observed == expected, expected=expected, observed=observed
        )


def run_integrity_round(
    store: DistributedLogStore,
    glsns: list[int] | None = None,
    initiator: str | None = None,
    net: SimNetwork | None = None,
) -> list[IntegrityReport]:
    """Run the ring protocol for each glsn on a simulated network.

    Returns one report per glsn as observed by the initiating node.
    """
    net = net or SimNetwork()
    ring = sorted(store.stores)
    initiator = initiator or ring[0]
    if initiator not in ring:
        raise ProtocolAbortError(f"initiator {initiator!r} is not a DLA node")
    nodes = {
        node_id: IntegrityNode(
            node_id, store.stores[node_id], store.accumulator, ring
        )
        for node_id in ring
    }
    for node_id, node in nodes.items():
        net.register(node_id, node.handle)
    targets = glsns if glsns is not None else store.glsns
    for glsn in targets:
        nodes[initiator].start_check(net, glsn)
    net.run()
    reports = []
    for glsn in targets:
        report = nodes[initiator].state.reports.get(glsn)
        if report is None:
            raise ProtocolAbortError(f"no integrity verdict for glsn {glsn:#x}")
        reports.append(report)
    return reports
