"""Distributed integrity cross-checking (paper §4.1, eq. 8-9).

When a user writes a record, it accumulates every fragment into
``A(x_0, Log_0, ..., Log_{n-1})`` and hands the value to all DLA nodes.
To audit integrity later, a node circulates an accumulation token around
the cluster keyed by glsn; each node folds in *its own stored fragment*.
Quasi-commutativity (eq. 9) makes the result order-independent, so the
final token must equal the stored anchor — any single tampered fragment
changes it.  The checking nodes never see each other's fragments: only
accumulator values travel.

Both an in-process checker (:class:`IntegrityChecker`) and a message-driven
ring protocol (:func:`run_integrity_round`) are provided; the ring form is
what the networked service uses and what the integrity benchmarks measure.

Because the log is append-only, the per-glsn ring's O(nodes × glsns) cost
is almost entirely redundant, so two batched forms ride the same ring:

* :func:`run_batched_integrity_round` — one *multi-glsn token* visits each
  node once, folding that node's fragment for every requested glsn
  (engine-routed, one ``pow`` per glsn per hop).  Identical per-glsn
  reports at O(nodes) messages instead of O(nodes × glsns).
* :func:`run_combined_integrity_round` — when the write path's running
  *chain anchor* covers the requested glsns (no deletes), each hop
  collapses its k fragment folds into a **single** ``pow`` with the
  product of the k digest exponents (valid by eq. 9 quasi-commutativity:
  ``(x^a)^b = x^(ab)``), giving one modexp and one message per node for
  the whole log.  A mismatch is localized by falling back to the
  per-glsn batched round.

The in-process checker additionally memoizes per-glsn reports keyed by
each node's fragment version (``repro.cache``), so ``check_all`` after an
append folds only the new glsn.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field, replace

from repro.cache import LruCache
from repro.crypto.accumulator import OneWayAccumulator, digest_to_exponent
from repro.errors import IntegrityError, ProtocolAbortError, RingFailoverError
from repro.logstore.store import DistributedLogStore, FragmentStore
from repro.net.message import Message
from repro.net.simnet import SimNetwork
from repro.resilience import Deadline, ring_avoiding, supervise_ring, supervise_ring_async

__all__ = [
    "IntegrityChecker",
    "IntegrityReport",
    "BatchIntegrityReport",
    "IntegrityNode",
    "run_integrity_round",
    "run_integrity_round_async",
    "run_batched_integrity_round",
    "run_batched_integrity_round_async",
    "run_combined_integrity_round",
    "run_combined_integrity_round_async",
    "run_integrity_rounds_pipelined",
]


@dataclass(frozen=True)
class IntegrityReport:
    """Outcome of checking one glsn (or a batch).

    ``verified`` is ``False`` when ring failover had to exclude nodes
    (named in ``skipped_nodes``): the fold is then incomplete, so the
    check can neither confirm integrity nor prove tampering — ``ok`` is
    forced ``False`` and the report is explicitly *unverified*, never a
    false "intact" or a false tamper accusation.
    """

    glsn: int
    ok: bool
    expected: int
    observed: int
    messages: int = 0
    verified: bool = True
    skipped_nodes: tuple[str, ...] = ()


@dataclass(frozen=True)
class BatchIntegrityReport:
    """Outcome of one batched/combined check over a glsn set."""

    glsns: tuple[int, ...]
    ok: bool
    mode: str  # "combined" | "per-glsn"
    expected: int | None = None  # combined-mode anchor (None in per-glsn mode)
    observed: int | None = None
    reports: tuple[IntegrityReport, ...] = ()  # per-glsn verdicts, when computed
    verified: bool = True  # False when failover skipped nodes (see IntegrityReport)
    skipped_nodes: tuple[str, ...] = ()


class IntegrityChecker:
    """In-process integrity verification over a :class:`DistributedLogStore`.

    Per-glsn reports are memoized keyed by every node's fragment version
    for that glsn: a glsn whose fragments no node has touched since the
    last check is served from cache, so ``check_all`` after an append
    re-folds only the newly appended glsn.  ``REPRO_CACHE=off`` restores
    the always-recompute behaviour.
    """

    def __init__(self, store: DistributedLogStore, metrics=None) -> None:
        self.store = store
        self.accumulator: OneWayAccumulator = store.accumulator
        self._report_cache = LruCache("integrity.report", metrics=metrics)

    def _cache_key(self, glsn: int) -> tuple:
        return (glsn,) + tuple(
            (node_id, self.store.stores[node_id].fragment_version(glsn))
            for node_id in sorted(self.store.stores)
        )

    def check_glsn(self, glsn: int) -> IntegrityReport:
        """Fold every node's stored fragment; compare with the anchor."""
        key = self._cache_key(glsn)
        cached = self._report_cache.get(key)
        if cached is not None:
            return cached
        report = self._check_glsn_uncached(glsn)
        self._report_cache.put(key, report)
        return report

    def _check_glsn_uncached(self, glsn: int) -> IntegrityReport:
        observed = self.accumulator.params.x0
        expected = None
        for node_id in sorted(self.store.stores):
            node = self.store.stores[node_id]
            fragment = node.local_fragment(glsn)
            observed = self.accumulator.step(observed, fragment.canonical_bytes())
            anchor = node.expected_accumulator(glsn)
            if expected is None:
                expected = anchor
            elif expected != anchor:
                # Nodes disagree about the anchor itself: a compromised node
                # rewrote its copy.  Report against the majority value.
                anchors = [
                    s.expected_accumulator(glsn) for s in self.store.stores.values()
                ]
                expected = max(set(anchors), key=anchors.count)
        return IntegrityReport(
            glsn=glsn, ok=observed == expected, expected=expected, observed=observed
        )

    def check_all(self) -> list[IntegrityReport]:
        return [self.check_glsn(glsn) for glsn in self.store.glsns]

    def require_clean(self) -> None:
        """Raise :class:`IntegrityError` naming every tampered glsn."""
        bad = [r.glsn for r in self.check_all() if not r.ok]
        if bad:
            raise IntegrityError(
                "integrity violation at glsn(s): "
                + ", ".join(format(g, "x") for g in bad)
            )


@dataclass
class _RingState:
    reports: dict[int, IntegrityReport] = field(default_factory=dict)
    combined: BatchIntegrityReport | None = None


class IntegrityNode:
    """Message-driven participant in the §4.1 accumulator ring.

    Each instance wraps one node's :class:`FragmentStore`.  The initiator
    calls :meth:`start_check`; the token visits every node once and returns.

    ``precompute`` (a :class:`~repro.precompute.PrecomputeManager`) serves
    the *initiator's* folds from precomputed witness bases: the first hop
    of every token is ``pow(x0, e, n)`` for the node's own fragment digest
    ``e`` — pure per (fragment, epoch), so it can be produced while the
    cluster is idle.  Later hops fold an in-flight token value and always
    stay online.  ``crypto`` (a shared
    :class:`~repro.net.stats.CryptoOpCounter`) attributes every fold to
    the offline or online phase; the two sum to the pre-split total.
    """

    def __init__(
        self,
        node_id: str,
        store: FragmentStore,
        accumulator: OneWayAccumulator,
        ring: list[str],
        precompute=None,
        crypto=None,
        telemetry=None,
    ) -> None:
        self.node_id = node_id
        self.store = store
        self.accumulator = accumulator
        # Order is honoured (quasi-commutativity makes any order valid),
        # so a failover supervisor can hand in a ring that avoids bad links.
        self.ring = list(ring)
        self.precompute = precompute
        self.crypto = crypto
        # Cross-node tracing (repro.obs.flight.TelemetryHub): fold counts
        # attribute to this node's open flight-recorder span, and the
        # initiator's bootstrap fold opens one explicitly.
        self.telemetry = telemetry
        self.state = _RingState()

    def _node_span(self, name: str):
        if self.telemetry is None:
            return nullcontext(None)
        return self.telemetry.node_span(self.node_id, name, {"node": self.node_id})

    def _count_folds(self, count: int, offline: int = 0) -> None:
        if self.crypto is None or count == 0:
            return
        self.crypto.add(f"{self.node_id}.modexp", count)
        self.crypto.add("total.modexp", count)
        if offline:
            self.crypto.add("offline.modexp", offline)
        if self.telemetry is not None:
            self.telemetry.add_cost(self.node_id, "modexp", count)

    def _initial_fold(self, exponent: int) -> int:
        """``pow(x0, exponent, n)`` — from the witness pool when possible."""
        params = self.accumulator.params
        if self.precompute is not None:
            value, pooled = self.precompute.witness_base(
                params.n, params.x0, exponent
            )
            self._count_folds(1, offline=int(pooled))
            return value
        self._count_folds(1)
        return pow(params.x0, exponent, params.n)

    def start_check(self, transport, glsn: int) -> None:
        """Initiate a circulation for one glsn (we fold our fragment first)."""
        with self._node_span("node.integ.start"):
            value = self._initial_fold(
                digest_to_exponent(self.store.local_fragment(glsn).canonical_bytes())
            )
            remaining = [n for n in self.ring if n != self.node_id]
            self._forward(transport, glsn, value, remaining)

    def _forward(self, transport, glsn: int, value: int, remaining: list[str]) -> None:
        if remaining:
            transport.send(
                Message(
                    src=self.node_id,
                    dst=remaining[0],
                    kind="integ.pass",
                    payload={
                        "glsn": glsn,
                        "value": value,
                        "remaining": remaining[1:],
                        "origin": self.node_id,
                    },
                )
            )
        else:
            self._finish(glsn, value)

    def handle(self, msg: Message, transport) -> None:
        if msg.kind == "integ.pass":
            glsn = msg.payload["glsn"]
            value = self.accumulator.step(
                msg.payload["value"],
                self.store.local_fragment(glsn).canonical_bytes(),
            )
            self._count_folds(1)
            remaining = msg.payload["remaining"]
            origin = msg.payload["origin"]
            if remaining:
                transport.send(
                    Message(
                        src=self.node_id,
                        dst=remaining[0],
                        kind="integ.pass",
                        payload={
                            "glsn": glsn,
                            "value": value,
                            "remaining": remaining[1:],
                            "origin": origin,
                        },
                    )
                )
            else:
                transport.send(
                    Message(
                        src=self.node_id,
                        dst=origin,
                        kind="integ.done",
                        payload={"glsn": glsn, "value": value},
                    )
                )
        elif msg.kind == "integ.done":
            self._finish(msg.payload["glsn"], msg.payload["value"])
        elif msg.kind == "integ.mpass":
            self._on_multi_pass(msg, transport)
        elif msg.kind == "integ.mdone":
            self._finish_batch(msg.payload["glsns"], msg.payload["values"])
        elif msg.kind == "integ.cpass":
            self._on_combined_pass(msg, transport)
        elif msg.kind == "integ.cdone":
            self._finish_combined(msg.payload["glsns"], msg.payload["value"])
        else:
            raise ProtocolAbortError(f"unexpected message kind {msg.kind!r}")

    def _finish(self, glsn: int, observed: int) -> None:
        expected = self.store.expected_accumulator(glsn)
        self.state.reports[glsn] = IntegrityReport(
            glsn=glsn, ok=observed == expected, expected=expected, observed=observed
        )

    # -- batched (multi-glsn token) mode ------------------------------------

    def _fragment_bytes(self, glsns: list[int]) -> list[bytes]:
        return [self.store.local_fragment(g).canonical_bytes() for g in glsns]

    def start_batch_check(self, transport, glsns: list[int]) -> None:
        """One token carrying every glsn's running value (we fold first)."""
        with self._node_span("node.integ.start"):
            if self.precompute is not None:
                values = [
                    self._initial_fold(digest_to_exponent(fragment))
                    for fragment in self._fragment_bytes(glsns)
                ]
            else:
                x0 = self.accumulator.params.x0
                values = self.accumulator.step_many(
                    [x0] * len(glsns), self._fragment_bytes(glsns)
                )
                self._count_folds(len(glsns))
            remaining = [n for n in self.ring if n != self.node_id]
            self._forward_batch(transport, glsns, values, remaining)

    def _forward_batch(
        self, transport, glsns: list[int], values: list[int], remaining: list[str]
    ) -> None:
        if remaining:
            transport.send(
                Message(
                    src=self.node_id,
                    dst=remaining[0],
                    kind="integ.mpass",
                    payload={
                        "glsns": glsns,
                        "values": values,
                        "remaining": remaining[1:],
                        "origin": self.node_id,
                    },
                )
            )
        else:
            self._finish_batch(glsns, values)

    def _on_multi_pass(self, msg: Message, transport) -> None:
        glsns = msg.payload["glsns"]
        values = self.accumulator.step_many(
            msg.payload["values"], self._fragment_bytes(glsns)
        )
        self._count_folds(len(glsns))
        remaining = msg.payload["remaining"]
        origin = msg.payload["origin"]
        if remaining:
            transport.send(
                Message(
                    src=self.node_id,
                    dst=remaining[0],
                    kind="integ.mpass",
                    payload={
                        "glsns": glsns,
                        "values": values,
                        "remaining": remaining[1:],
                        "origin": origin,
                    },
                )
            )
        else:
            transport.send(
                Message(
                    src=self.node_id,
                    dst=origin,
                    kind="integ.mdone",
                    payload={"glsns": glsns, "values": values},
                )
            )

    def _finish_batch(self, glsns: list[int], values: list[int]) -> None:
        for glsn, observed in zip(glsns, values):
            self._finish(glsn, observed)

    # -- combined (single-pow-per-hop) mode ---------------------------------

    def start_combined_check(self, transport, glsns: list[int]) -> None:
        """One token, one value: each hop folds ALL its fragments at once."""
        with self._node_span("node.integ.start"):
            if self.precompute is not None:
                value = self._initial_fold(
                    self.accumulator.exponent_product(self._fragment_bytes(glsns))
                )
            else:
                value = self.accumulator.fold_product(
                    self.accumulator.params.x0, self._fragment_bytes(glsns)
                )
                self._count_folds(1)
            remaining = [n for n in self.ring if n != self.node_id]
            self._forward_combined(transport, glsns, value, remaining)

    def _forward_combined(
        self, transport, glsns: list[int], value: int, remaining: list[str]
    ) -> None:
        if remaining:
            transport.send(
                Message(
                    src=self.node_id,
                    dst=remaining[0],
                    kind="integ.cpass",
                    payload={
                        "glsns": glsns,
                        "value": value,
                        "remaining": remaining[1:],
                        "origin": self.node_id,
                    },
                )
            )
        else:
            self._finish_combined(glsns, value)

    def _on_combined_pass(self, msg: Message, transport) -> None:
        glsns = msg.payload["glsns"]
        value = self.accumulator.fold_product(
            msg.payload["value"], self._fragment_bytes(glsns)
        )
        self._count_folds(1)
        remaining = msg.payload["remaining"]
        origin = msg.payload["origin"]
        if remaining:
            transport.send(
                Message(
                    src=self.node_id,
                    dst=remaining[0],
                    kind="integ.cpass",
                    payload={
                        "glsns": glsns,
                        "value": value,
                        "remaining": remaining[1:],
                        "origin": origin,
                    },
                )
            )
        else:
            transport.send(
                Message(
                    src=self.node_id,
                    dst=origin,
                    kind="integ.cdone",
                    payload={"glsns": glsns, "value": value},
                )
            )

    def _finish_combined(self, glsns: list[int], observed: int) -> None:
        expected = self.store.chain_anchor_for(glsns)
        self.state.combined = BatchIntegrityReport(
            glsns=tuple(glsns),
            ok=expected is not None and observed == expected,
            mode="combined",
            expected=expected,
            observed=observed,
        )


def _ring_setup(
    store: DistributedLogStore,
    glsns: list[int] | None,
    initiator: str | None,
    net: SimNetwork | None,
    precompute=None,
    crypto=None,
) -> tuple[SimNetwork, dict[str, IntegrityNode], str, list[int]]:
    """Common bootstrap: build and register one IntegrityNode per store."""
    net = net or SimNetwork()
    ring = sorted(store.stores)
    initiator = initiator or ring[0]
    if initiator not in ring:
        raise ProtocolAbortError(f"initiator {initiator!r} is not a DLA node")
    telemetry = getattr(net, "telemetry", None)
    nodes = {
        node_id: IntegrityNode(
            node_id, store.stores[node_id], store.accumulator, ring,
            precompute=precompute, crypto=crypto, telemetry=telemetry,
        )
        for node_id in ring
    }
    for node_id, node in nodes.items():
        net.register(node_id, node.handle)
    targets = list(glsns) if glsns is not None else store.glsns
    return net, nodes, initiator, targets


def _collect_reports(
    node: IntegrityNode, targets: list[int]
) -> list[IntegrityReport]:
    reports = []
    for glsn in targets:
        report = node.state.reports.get(glsn)
        if report is None:
            raise ProtocolAbortError(f"no integrity verdict for glsn {glsn:#x}")
        reports.append(report)
    return reports


def _supervised_round(
    store: DistributedLogStore,
    targets: list[int],
    initiator: str,
    net: SimNetwork,
    deadline: Deadline | None,
    mode: str,
    precompute=None,
    crypto=None,
):
    """Failover-supervised §4.1 ring (any of the three token modes).

    A bad link is routed around (any ring order is valid by eq. 9
    quasi-commutativity); a dead node is excluded, in which case the
    resulting reports are *unverified* — the fold is missing that node's
    fragments, so neither "intact" nor "tampered" can be claimed.  The
    initiator is essential: it holds the anchor the token is compared to.
    """
    ring_all = sorted(store.stores)
    nodes_box: dict[str, IntegrityNode] = {}

    def launch(alive: list[str], avoid: frozenset):
        if initiator not in alive:
            raise RingFailoverError(
                f"integrity_ring: initiator {initiator!r} is unreachable"
            )
        order = ring_avoiding(alive, avoid)
        pivot = order.index(initiator)
        order = order[pivot:] + order[:pivot]
        nodes_box.clear()
        nodes_box.update(
            {
                nid: IntegrityNode(
                    nid, store.stores[nid], store.accumulator, order,
                    precompute=precompute, crypto=crypto,
                    telemetry=getattr(net, "telemetry", None),
                )
                for nid in alive
            }
        )
        for nid, node in nodes_box.items():
            net.register(nid, node.handle)
        init = nodes_box[initiator]
        if mode == "per-glsn":
            for glsn in targets:
                init.start_check(net, glsn)
        elif mode == "batched":
            init.start_batch_check(net, targets)
        else:
            init.start_combined_check(net, targets)

        def collect():
            node = nodes_box[initiator]
            if mode == "combined":
                if node.state.combined is None:
                    return None
                return {"combined": node.state.combined}
            if any(glsn not in node.state.reports for glsn in targets):
                return None
            return {"reports": [node.state.reports[glsn] for glsn in targets]}

        return collect

    return supervise_ring(
        net, "integrity_ring", ring_all, launch,
        essential=[initiator], min_parties=1, deadline=deadline,
    )


def _degrade(reports: list[IntegrityReport], skipped: tuple[str, ...]):
    """Mark reports from an incomplete fold as explicitly unverified."""
    return [
        replace(r, ok=False, verified=False, skipped_nodes=skipped)
        for r in reports
    ]


def run_integrity_round(
    store: DistributedLogStore,
    glsns: list[int] | None = None,
    initiator: str | None = None,
    net: SimNetwork | None = None,
    deadline: Deadline | None = None,
    precompute=None,
    crypto=None,
) -> list[IntegrityReport]:
    """Run the ring protocol for each glsn on a simulated network.

    Returns one report per glsn as observed by the initiating node.
    Circulates one token per glsn — O(nodes × glsns) messages; see
    :func:`run_batched_integrity_round` for the O(nodes) form.  On a
    resilient network the ring is failover-supervised (see
    :func:`_supervised_round`).  ``precompute``/``crypto`` are forwarded
    to every :class:`IntegrityNode` (witness-base pools, phase-attributed
    fold counts).
    """
    net, nodes, initiator, targets = _ring_setup(
        store, glsns, initiator, net, precompute=precompute, crypto=crypto
    )
    if net.reliable:
        outcome = _supervised_round(
            store, targets, initiator, net, deadline, "per-glsn",
            precompute=precompute, crypto=crypto,
        )
        reports = outcome.values["reports"]
        return _degrade(reports, outcome.skipped) if outcome.degraded else reports
    for glsn in targets:
        nodes[initiator].start_check(net, glsn)
    net.run(deadline=deadline)
    return _collect_reports(nodes[initiator], targets)


def run_batched_integrity_round(
    store: DistributedLogStore,
    glsns: list[int] | None = None,
    initiator: str | None = None,
    net: SimNetwork | None = None,
    deadline: Deadline | None = None,
    precompute=None,
    crypto=None,
) -> list[IntegrityReport]:
    """Batched §4.1 ring: one multi-glsn token, one message per hop.

    Each hop folds its own stored fragment for *every* requested glsn
    before forwarding, so an N-glsn check costs exactly ``nodes``
    messages ((nodes−1) ``integ.mpass`` + 1 ``integ.mdone``) instead of
    ``nodes × N``.  The per-glsn folds are value-identical to
    :func:`run_integrity_round` — same observed accumulators, same
    reports — only the transcript's message count changes.
    """
    net, nodes, initiator, targets = _ring_setup(
        store, glsns, initiator, net, precompute=precompute, crypto=crypto
    )
    if not targets:
        return []
    if net.reliable:
        outcome = _supervised_round(
            store, targets, initiator, net, deadline, "batched",
            precompute=precompute, crypto=crypto,
        )
        reports = outcome.values["reports"]
        return _degrade(reports, outcome.skipped) if outcome.degraded else reports
    nodes[initiator].start_batch_check(net, targets)
    net.run(deadline=deadline)
    return _collect_reports(nodes[initiator], targets)


def run_combined_integrity_round(
    store: DistributedLogStore,
    glsns: list[int] | None = None,
    initiator: str | None = None,
    net: SimNetwork | None = None,
    localize: bool = True,
    deadline: Deadline | None = None,
    precompute=None,
    crypto=None,
) -> BatchIntegrityReport:
    """Single-pow-per-hop ring over the write path's chain anchor.

    Applies when the requested glsns are a prefix of the append-only
    chain (the whole log, absent deletes): each hop performs ONE
    exponentiation with the product of its fragments' digest exponents
    (eq. 9), and the final token must equal the running chain anchor the
    write path handed every node.  Costs ``nodes`` messages and
    ``nodes`` modexps for the entire log.

    Falls back to :func:`run_batched_integrity_round` when no chain
    anchor covers the request (e.g. after a delete), and — with
    ``localize=True`` — also after a combined mismatch, to name the
    tampered glsn(s) in ``reports``.
    """
    targets = list(glsns) if glsns is not None else store.glsns
    ring = sorted(store.stores)
    first = initiator or (ring[0] if ring else None)
    anchor = (
        store.stores[first].chain_anchor_for(targets)
        if first in store.stores
        else None
    )
    if anchor is None or not targets:
        reports = run_batched_integrity_round(
            store, glsns=targets, initiator=initiator, net=net, deadline=deadline,
            precompute=precompute, crypto=crypto,
        )
        skipped = tuple(
            sorted({n for r in reports for n in getattr(r, "skipped_nodes", ())})
        )
        return BatchIntegrityReport(
            glsns=tuple(targets),
            ok=all(r.ok for r in reports),
            mode="per-glsn",
            reports=tuple(reports),
            verified=not skipped,
            skipped_nodes=skipped,
        )
    net = net or SimNetwork()
    _, nodes, first, targets = _ring_setup(
        store, targets, initiator, net, precompute=precompute, crypto=crypto
    )
    if net.reliable:
        outcome = _supervised_round(
            store, targets, first, net, deadline, "combined",
            precompute=precompute, crypto=crypto,
        )
        verdict = outcome.values["combined"]
        if outcome.degraded:
            # The fold skipped a node, so neither the combined verdict nor
            # a localizing re-run can be trusted — report unverified.
            return replace(
                verdict, ok=False, verified=False, skipped_nodes=outcome.skipped
            )
    else:
        nodes[first].start_combined_check(net, targets)
        net.run(deadline=deadline)
        verdict = nodes[first].state.combined
    if verdict is None:
        raise ProtocolAbortError("combined integrity round produced no verdict")
    if verdict.ok or not localize:
        return verdict
    reports = run_batched_integrity_round(
        store, glsns=targets, initiator=initiator, net=net, deadline=deadline,
        precompute=precompute, crypto=crypto,
    )
    return BatchIntegrityReport(
        glsns=verdict.glsns,
        ok=verdict.ok,
        mode=verdict.mode,
        expected=verdict.expected,
        observed=verdict.observed,
        reports=tuple(reports),
    )


# -- coroutine twins ---------------------------------------------------------
#
# Same nodes, token modes, fold counts and reports as the sync drivers; the
# rounds are driven by ``await net.drain(...)`` so independent checks over
# disjoint glsns overlap on one event loop (see run_integrity_rounds_pipelined).


def _async_net():
    from repro.aio.simnet import AsyncSimNetwork

    return AsyncSimNetwork()


async def _supervised_round_async(
    store: DistributedLogStore,
    targets: list[int],
    initiator: str,
    net,
    deadline: Deadline | None,
    mode: str,
    precompute=None,
    crypto=None,
):
    """Coroutine twin of :func:`_supervised_round` (same launch closure)."""
    ring_all = sorted(store.stores)
    nodes_box: dict[str, IntegrityNode] = {}

    def launch(alive: list[str], avoid: frozenset):
        if initiator not in alive:
            raise RingFailoverError(
                f"integrity_ring: initiator {initiator!r} is unreachable"
            )
        order = ring_avoiding(alive, avoid)
        pivot = order.index(initiator)
        order = order[pivot:] + order[:pivot]
        nodes_box.clear()
        nodes_box.update(
            {
                nid: IntegrityNode(
                    nid, store.stores[nid], store.accumulator, order,
                    precompute=precompute, crypto=crypto,
                    telemetry=getattr(net, "telemetry", None),
                )
                for nid in alive
            }
        )
        for nid, node in nodes_box.items():
            net.register(nid, node.handle)
        init = nodes_box[initiator]
        if mode == "per-glsn":
            for glsn in targets:
                init.start_check(net, glsn)
        elif mode == "batched":
            init.start_batch_check(net, targets)
        else:
            init.start_combined_check(net, targets)

        def collect():
            node = nodes_box[initiator]
            if mode == "combined":
                if node.state.combined is None:
                    return None
                return {"combined": node.state.combined}
            if any(glsn not in node.state.reports for glsn in targets):
                return None
            return {"reports": [node.state.reports[glsn] for glsn in targets]}

        return collect

    return await supervise_ring_async(
        net, "integrity_ring", ring_all, launch,
        essential=[initiator], min_parties=1, deadline=deadline,
    )


async def run_integrity_round_async(
    store: DistributedLogStore,
    glsns: list[int] | None = None,
    initiator: str | None = None,
    net=None,
    deadline: Deadline | None = None,
    precompute=None,
    crypto=None,
) -> list[IntegrityReport]:
    """Coroutine twin of :func:`run_integrity_round`."""
    net = net or _async_net()
    net, nodes, initiator, targets = _ring_setup(
        store, glsns, initiator, net, precompute=precompute, crypto=crypto
    )
    if net.reliable:
        outcome = await _supervised_round_async(
            store, targets, initiator, net, deadline, "per-glsn",
            precompute=precompute, crypto=crypto,
        )
        reports = outcome.values["reports"]
        return _degrade(reports, outcome.skipped) if outcome.degraded else reports
    for glsn in targets:
        nodes[initiator].start_check(net, glsn)
    await net.drain(deadline=deadline)
    return _collect_reports(nodes[initiator], targets)


async def run_batched_integrity_round_async(
    store: DistributedLogStore,
    glsns: list[int] | None = None,
    initiator: str | None = None,
    net=None,
    deadline: Deadline | None = None,
    precompute=None,
    crypto=None,
) -> list[IntegrityReport]:
    """Coroutine twin of :func:`run_batched_integrity_round`."""
    net = net or _async_net()
    net, nodes, initiator, targets = _ring_setup(
        store, glsns, initiator, net, precompute=precompute, crypto=crypto
    )
    if not targets:
        return []
    if net.reliable:
        outcome = await _supervised_round_async(
            store, targets, initiator, net, deadline, "batched",
            precompute=precompute, crypto=crypto,
        )
        reports = outcome.values["reports"]
        return _degrade(reports, outcome.skipped) if outcome.degraded else reports
    nodes[initiator].start_batch_check(net, targets)
    await net.drain(deadline=deadline)
    return _collect_reports(nodes[initiator], targets)


async def run_combined_integrity_round_async(
    store: DistributedLogStore,
    glsns: list[int] | None = None,
    initiator: str | None = None,
    net=None,
    localize: bool = True,
    deadline: Deadline | None = None,
    precompute=None,
    crypto=None,
) -> BatchIntegrityReport:
    """Coroutine twin of :func:`run_combined_integrity_round`."""
    targets = list(glsns) if glsns is not None else store.glsns
    ring = sorted(store.stores)
    first = initiator or (ring[0] if ring else None)
    anchor = (
        store.stores[first].chain_anchor_for(targets)
        if first in store.stores
        else None
    )
    if anchor is None or not targets:
        reports = await run_batched_integrity_round_async(
            store, glsns=targets, initiator=initiator, net=net, deadline=deadline,
            precompute=precompute, crypto=crypto,
        )
        skipped = tuple(
            sorted({n for r in reports for n in getattr(r, "skipped_nodes", ())})
        )
        return BatchIntegrityReport(
            glsns=tuple(targets),
            ok=all(r.ok for r in reports),
            mode="per-glsn",
            reports=tuple(reports),
            verified=not skipped,
            skipped_nodes=skipped,
        )
    net = net or _async_net()
    _, nodes, first, targets = _ring_setup(
        store, targets, initiator, net, precompute=precompute, crypto=crypto
    )
    if net.reliable:
        outcome = await _supervised_round_async(
            store, targets, first, net, deadline, "combined",
            precompute=precompute, crypto=crypto,
        )
        verdict = outcome.values["combined"]
        if outcome.degraded:
            return replace(
                verdict, ok=False, verified=False, skipped_nodes=outcome.skipped
            )
    else:
        nodes[first].start_combined_check(net, targets)
        await net.drain(deadline=deadline)
        verdict = nodes[first].state.combined
    if verdict is None:
        raise ProtocolAbortError("combined integrity round produced no verdict")
    if verdict.ok or not localize:
        return verdict
    reports = await run_batched_integrity_round_async(
        store, glsns=targets, initiator=initiator, net=net, deadline=deadline,
        precompute=precompute, crypto=crypto,
    )
    return BatchIntegrityReport(
        glsns=verdict.glsns,
        ok=verdict.ok,
        mode=verdict.mode,
        expected=verdict.expected,
        observed=verdict.observed,
        reports=tuple(reports),
    )


async def run_integrity_rounds_pipelined(
    store: DistributedLogStore,
    glsns: list[int] | None = None,
    initiator: str | None = None,
    deadline: Deadline | None = None,
    precompute=None,
    crypto=None,
    net_factory=None,
) -> list[IntegrityReport]:
    """Overlap per-glsn §4.1 rings as concurrent tasks on one event loop.

    Each glsn's token circulates on its own network (``net_factory``
    defaults to a fresh :class:`~repro.aio.simnet.AsyncSimNetwork` per
    glsn), so the folds for disjoint glsns interleave instead of running
    lockstep: in virtual time the makespan is the *slowest* ring rather
    than the sum of all rings.  Reports come back in request order and
    are value-identical to :func:`run_integrity_round` — only scheduling
    changes, never the folds.
    """
    import asyncio

    targets = list(glsns) if glsns is not None else store.glsns
    if not targets:
        return []
    factory = net_factory or (lambda glsn: _async_net())

    async def one(glsn: int) -> IntegrityReport:
        reports = await run_integrity_round_async(
            store, glsns=[glsn], initiator=initiator, net=factory(glsn),
            deadline=deadline, precompute=precompute, crypto=crypto,
        )
        return reports[0]

    return list(await asyncio.gather(*(one(glsn) for glsn in targets)))
