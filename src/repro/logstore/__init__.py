"""Distributed log store: fragmentation, storage, access control, integrity.

Implements the paper's §2/§4 storage design: records carry a cluster-unique
``glsn``; a :class:`~repro.logstore.fragmentation.FragmentPlan` splits each
record vertically across DLA nodes so no node holds a complete record;
tickets gate read/write/delete; one-way accumulators anchor integrity.
"""

from repro.logstore.access import (
    AccessControlTable,
    AccessEntry,
    check_table_consistency,
)
from repro.logstore.fragmentation import (
    Fragment,
    FragmentPlan,
    paper_fragment_plan,
    round_robin_plan,
)
from repro.logstore.glsn import (
    PAPER_GLSN_START,
    BlockGlsnAllocator,
    GlsnAllocator,
    GlsnBlock,
    RoutedGlsnAllocator,
)
from repro.logstore.glsn_service import (
    GlsnClient,
    GlsnCoordinator,
    audit_grants,
)
from repro.logstore.integrity import (
    IntegrityChecker,
    IntegrityNode,
    IntegrityReport,
    run_integrity_round,
    run_integrity_round_async,
    run_integrity_rounds_pipelined,
)
from repro.logstore.persistence import (
    dump_store,
    load_store,
    restore_store,
    snapshot_store,
)
from repro.logstore.records import LogRecord, format_glsn, render_table
from repro.logstore.schema import (
    Attribute,
    AttributeKind,
    GlobalSchema,
    paper_table1_schema,
)
from repro.logstore.store import DistributedLogStore, FragmentStore, WriteReceipt

__all__ = [
    "Attribute",
    "AttributeKind",
    "GlobalSchema",
    "paper_table1_schema",
    "LogRecord",
    "format_glsn",
    "render_table",
    "Fragment",
    "FragmentPlan",
    "paper_fragment_plan",
    "round_robin_plan",
    "GlsnAllocator",
    "BlockGlsnAllocator",
    "GlsnBlock",
    "RoutedGlsnAllocator",
    "GlsnCoordinator",
    "GlsnClient",
    "audit_grants",
    "PAPER_GLSN_START",
    "FragmentStore",
    "DistributedLogStore",
    "WriteReceipt",
    "AccessControlTable",
    "AccessEntry",
    "check_table_consistency",
    "IntegrityChecker",
    "IntegrityNode",
    "IntegrityReport",
    "run_integrity_round",
    "run_integrity_round_async",
    "run_integrity_rounds_pipelined",
    "snapshot_store",
    "restore_store",
    "dump_store",
    "load_store",
]
