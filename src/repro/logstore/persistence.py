"""Durable snapshots of the distributed log store.

DLA nodes are long-lived services; their fragment stores, ACL replicas
and integrity anchors must survive restarts.  This module serializes a
:class:`~repro.logstore.store.DistributedLogStore` (minus the live ticket
authority, which holds the secret and is restored separately) to a plain
JSON document and back.

The snapshot embeds the fragment plan and the accumulator parameters, so
a restored store verifies the same integrity anchors — a restore followed
by :class:`~repro.logstore.integrity.IntegrityChecker` is the recovery
audit (tested).

Format history:

* **v1** recorded fragments, anchors, and ACLs only.  The combined
  integrity ring's state — each node's append-only chain of
  ``(glsn, anchor)`` pairs and the cluster's running chain value — was
  silently dropped, so a restored store permanently fell back to the
  per-glsn ring and, worse, restarted its chain fold from ``x0``.
* **v2** (current) additionally persists each node's chain prefix and
  the cluster chain value (including its explicit ``None`` after a
  delete or a ``move_shard`` eviction suspended it), so a restore is
  state-identical: batched combined integrity rounds keep their one-
  exponentiation-per-hop fast path.

Whole-store snapshots complement (not replace) the write-ahead log of
:mod:`repro.store`: a snapshot is a point-in-time O(store) copy, the WAL
is an O(delta) incremental journal — ``docs/storage.md`` discusses the
trade-offs.
"""

from __future__ import annotations

import json
from typing import Any

from repro.crypto.accumulator import AccumulatorParams
from repro.crypto.tickets import Operation, TicketAuthority
from repro.errors import LogStoreError
from repro.logstore.access import AccessEntry
from repro.logstore.fragmentation import Fragment, FragmentPlan
from repro.logstore.glsn import GlsnAllocator
from repro.logstore.records import LogRecord
from repro.logstore.schema import Attribute, AttributeKind, GlobalSchema
from repro.logstore.store import DistributedLogStore

__all__ = ["snapshot_store", "restore_store", "dump_store", "load_store"]

_FORMAT_VERSION = 2
_SUPPORTED_FORMATS = (1, 2)


def _value_to_json(value: Any) -> Any:
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    return value


def _value_from_json(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__bytes__"}:
        return bytes.fromhex(value["__bytes__"])
    return value


def _next_glsn(store: DistributedLogStore) -> int:
    """Allocator cursor, tolerating routed allocators with nothing pinned.

    A shard ring's :class:`~repro.logstore.glsn.RoutedGlsnAllocator` only
    knows its next value while an append is in flight; between appends
    the best restorable cursor is one past the highest stored glsn.
    """
    try:
        return store.allocator.next_value
    except LogStoreError:
        glsns = store.glsns
        return (glsns[-1] + 1) if glsns else 0


def snapshot_store(store: DistributedLogStore) -> dict:
    """Serialize the full cluster storage state to a JSON-safe dict."""
    plan = store.plan
    schema = [
        {"name": attribute.name, "kind": attribute.kind.value}
        for attribute in plan.schema
    ]
    nodes = {}
    for node_id, node in store.stores.items():
        fragments = []
        for glsn in node.glsns:
            fragment = node.local_fragment(glsn)
            fragments.append(
                {
                    "glsn": glsn,
                    "values": {
                        k: _value_to_json(v) for k, v in fragment.values.items()
                    },
                    "anchor": format(node.expected_accumulator(glsn), "x"),
                }
            )
        acl_entries = []
        for ticket_id in node.acl.ticket_ids:
            entry = node.acl._entries[ticket_id]
            acl_entries.append(
                {
                    "ticket_id": ticket_id,
                    "operations": sorted(op.value for op in entry.operations),
                    "glsns": sorted(entry.glsns),
                }
            )
        nodes[node_id] = {
            "fragments": fragments,
            "acl": acl_entries,
            # The combined-ring chain prefix this node still vouches for
            # (pruned by deletes/evictions): [glsn, anchor-hex] pairs.
            "chain": [[g, format(a, "x")] for g, a in node._chain],
        }
    chain_value = store._chain_value
    return {
        "format": _FORMAT_VERSION,
        "schema": schema,
        "assignment": plan.assignment,
        "allow_overlap": plan.allow_overlap,
        "accumulator": {"n": format(store.accumulator.params.n, "x"),
                        "x0": format(store.accumulator.params.x0, "x")},
        "next_glsn": _next_glsn(store),
        "chain_value": format(chain_value, "x") if chain_value is not None else None,
        "nodes": nodes,
    }


def _populate(store: DistributedLogStore, snapshot: dict) -> None:
    """Install snapshot state into ``store`` (bypassing ticketed writes)."""
    version = snapshot.get("format")
    for node_id, body in snapshot["nodes"].items():
        node = store.node_store(node_id)
        for item in body["fragments"]:
            fragment = Fragment(
                glsn=item["glsn"],
                node_id=node_id,
                values={k: _value_from_json(v) for k, v in item["values"].items()},
            )
            # Bypass the ticket-checked write path: restoration re-installs
            # previously authorized state verbatim.
            node._fragments[fragment.glsn] = fragment
            node._accumulators[fragment.glsn] = int(item["anchor"], 16)
        for entry in body["acl"]:
            restored = AccessEntry(
                ticket_id=entry["ticket_id"],
                operations=frozenset(
                    Operation(op) for op in entry["operations"]
                ),
                glsns=set(entry["glsns"]),
            )
            node.acl._entries[entry["ticket_id"]] = restored
            for glsn in restored.glsns:
                node.acl._glsn_owner[glsn] = entry["ticket_id"]
        node._chain = [
            (pair[0], int(pair[1], 16)) for pair in body.get("chain", [])
        ]
    if version >= 2:
        raw = snapshot.get("chain_value")
        store._chain_value = int(raw, 16) if raw is not None else None
    elif store.glsns:
        # A v1 snapshot never recorded the running fold; resuming from x0
        # over a non-empty store would deposit anchors that fold none of
        # the existing fragments.  Suspend the chain (per-glsn fallback)
        # rather than resume it wrong.
        store._chain_value = None


def restore_store(
    snapshot: dict,
    authority: TicketAuthority,
    store: DistributedLogStore | None = None,
) -> DistributedLogStore:
    """Rebuild a store from a snapshot (ticket authority supplied fresh).

    When ``store`` is given (the durable backend recovering into a
    WAL-attached store), its existing stores are populated in place and
    its allocator/plan are left to the caller; otherwise a fresh
    in-memory :class:`DistributedLogStore` is built from the embedded
    plan and accumulator parameters.
    """
    if snapshot.get("format") not in _SUPPORTED_FORMATS:
        raise LogStoreError(
            f"unsupported snapshot format {snapshot.get('format')!r}"
        )
    if store is None:
        schema = GlobalSchema(
            [
                Attribute(item["name"], AttributeKind(item["kind"]))
                for item in snapshot["schema"]
            ]
        )
        plan = FragmentPlan(
            schema, snapshot["assignment"], allow_overlap=snapshot["allow_overlap"]
        )
        params = AccumulatorParams(
            n=int(snapshot["accumulator"]["n"], 16),
            x0=int(snapshot["accumulator"]["x0"], 16),
        )
        store = DistributedLogStore(
            plan,
            authority,
            params,
            allocator=GlsnAllocator(start=snapshot["next_glsn"]),
        )
    _populate(store, snapshot)
    return store


def dump_store(store: DistributedLogStore, path: str) -> None:
    """Write a snapshot to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot_store(store), handle, separators=(",", ":"))


def load_store(path: str, authority: TicketAuthority) -> DistributedLogStore:
    """Read a snapshot back from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return restore_store(json.load(handle), authority)
