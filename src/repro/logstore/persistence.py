"""Durable snapshots of the distributed log store.

DLA nodes are long-lived services; their fragment stores, ACL replicas
and integrity anchors must survive restarts.  This module serializes a
:class:`~repro.logstore.store.DistributedLogStore` (minus the live ticket
authority, which holds the secret and is restored separately) to a plain
JSON document and back.

The snapshot embeds the fragment plan and the accumulator parameters, so
a restored store verifies the same integrity anchors — a restore followed
by :class:`~repro.logstore.integrity.IntegrityChecker` is the recovery
audit (tested).
"""

from __future__ import annotations

import json
from typing import Any

from repro.crypto.accumulator import AccumulatorParams
from repro.crypto.tickets import Operation, TicketAuthority
from repro.errors import LogStoreError
from repro.logstore.access import AccessEntry
from repro.logstore.fragmentation import Fragment, FragmentPlan
from repro.logstore.glsn import GlsnAllocator
from repro.logstore.records import LogRecord
from repro.logstore.schema import Attribute, AttributeKind, GlobalSchema
from repro.logstore.store import DistributedLogStore

__all__ = ["snapshot_store", "restore_store", "dump_store", "load_store"]

_FORMAT_VERSION = 1


def _value_to_json(value: Any) -> Any:
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    return value


def _value_from_json(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__bytes__"}:
        return bytes.fromhex(value["__bytes__"])
    return value


def snapshot_store(store: DistributedLogStore) -> dict:
    """Serialize the full cluster storage state to a JSON-safe dict."""
    plan = store.plan
    schema = [
        {"name": attribute.name, "kind": attribute.kind.value}
        for attribute in plan.schema
    ]
    nodes = {}
    for node_id, node in store.stores.items():
        fragments = []
        for glsn in node.glsns:
            fragment = node.local_fragment(glsn)
            fragments.append(
                {
                    "glsn": glsn,
                    "values": {
                        k: _value_to_json(v) for k, v in fragment.values.items()
                    },
                    "anchor": format(node.expected_accumulator(glsn), "x"),
                }
            )
        acl_entries = []
        for ticket_id in node.acl.ticket_ids:
            entry = node.acl._entries[ticket_id]
            acl_entries.append(
                {
                    "ticket_id": ticket_id,
                    "operations": sorted(op.value for op in entry.operations),
                    "glsns": sorted(entry.glsns),
                }
            )
        nodes[node_id] = {"fragments": fragments, "acl": acl_entries}
    return {
        "format": _FORMAT_VERSION,
        "schema": schema,
        "assignment": plan.assignment,
        "allow_overlap": plan.allow_overlap,
        "accumulator": {"n": format(store.accumulator.params.n, "x"),
                        "x0": format(store.accumulator.params.x0, "x")},
        "next_glsn": store.allocator.next_value,
        "nodes": nodes,
    }


def restore_store(
    snapshot: dict, authority: TicketAuthority
) -> DistributedLogStore:
    """Rebuild a store from a snapshot (ticket authority supplied fresh)."""
    if snapshot.get("format") != _FORMAT_VERSION:
        raise LogStoreError(
            f"unsupported snapshot format {snapshot.get('format')!r}"
        )
    schema = GlobalSchema(
        [
            Attribute(item["name"], AttributeKind(item["kind"]))
            for item in snapshot["schema"]
        ]
    )
    plan = FragmentPlan(
        schema, snapshot["assignment"], allow_overlap=snapshot["allow_overlap"]
    )
    params = AccumulatorParams(
        n=int(snapshot["accumulator"]["n"], 16),
        x0=int(snapshot["accumulator"]["x0"], 16),
    )
    store = DistributedLogStore(
        plan,
        authority,
        params,
        allocator=GlsnAllocator(start=snapshot["next_glsn"]),
    )
    for node_id, body in snapshot["nodes"].items():
        node = store.node_store(node_id)
        for item in body["fragments"]:
            fragment = Fragment(
                glsn=item["glsn"],
                node_id=node_id,
                values={k: _value_from_json(v) for k, v in item["values"].items()},
            )
            # Bypass the ticket-checked write path: restoration re-installs
            # previously authorized state verbatim.
            node._fragments[fragment.glsn] = fragment
            node._accumulators[fragment.glsn] = int(item["anchor"], 16)
        for entry in body["acl"]:
            restored = AccessEntry(
                ticket_id=entry["ticket_id"],
                operations=frozenset(
                    Operation(op) for op in entry["operations"]
                ),
                glsns=set(entry["glsns"]),
            )
            node.acl._entries[entry["ticket_id"]] = restored
            for glsn in restored.glsns:
                node.acl._glsn_owner[glsn] = entry["ticket_id"]
    return store


def dump_store(store: DistributedLogStore, path: str) -> None:
    """Write a snapshot to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot_store(store), handle, separators=(",", ":"))


def load_store(path: str, authority: TicketAuthority) -> DistributedLogStore:
    """Read a snapshot back from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return restore_store(json.load(handle), authority)
