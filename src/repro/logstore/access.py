"""Ticket-keyed access control tables (paper §4, Table 6).

"Each audit node maintains the same access control table for every global
log sequence number.  Each assigned glsn is authorized by some ticket.
Once some glsn is assigned ... this glsn will be added to the access table
under the entry of that ticket's ID."

The table is replicated on every DLA node; §4.1 checks replica consistency
per ticket with the secure-set-intersection primitive (implemented in
:func:`check_table_consistency`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.tickets import Operation, Ticket, TicketAuthority
from repro.errors import AccessDeniedError, UnknownGlsnError
from repro.smc.base import SmcContext
from repro.smc.intersection import secure_set_intersection

__all__ = ["AccessEntry", "AccessControlTable", "check_table_consistency"]


@dataclass
class AccessEntry:
    """One row of the paper's Table 6: a ticket and its glsn grants."""

    ticket_id: str
    operations: frozenset[Operation]
    glsns: set[int] = field(default_factory=set)

    def type_string(self) -> str:
        """The paper's W/R column rendering."""
        flags = []
        if Operation.WRITE in self.operations:
            flags.append("W")
        if Operation.READ in self.operations:
            flags.append("R")
        if Operation.DELETE in self.operations:
            flags.append("D")
        return "/".join(flags)


class AccessControlTable:
    """Per-node replica of the cluster's ticket → glsn authorization map."""

    def __init__(self, authority: TicketAuthority) -> None:
        self._authority = authority
        self._entries: dict[str, AccessEntry] = {}
        self._glsn_owner: dict[int, str] = {}

    # -- mutation -----------------------------------------------------------

    def grant(self, ticket: Ticket, glsn: int) -> None:
        """Record that ``glsn`` was assigned under ``ticket``.

        The ticket must be authentic and must carry the WRITE right (a glsn
        is granted at log-write time).
        """
        self._authority.verify(ticket, Operation.WRITE)
        entry = self._entries.setdefault(
            ticket.ticket_id,
            AccessEntry(ticket_id=ticket.ticket_id, operations=ticket.operations),
        )
        entry.glsns.add(glsn)
        self._glsn_owner[glsn] = ticket.ticket_id

    def revoke_glsn(self, ticket: Ticket, glsn: int) -> None:
        """Remove a grant (delete path).  Requires the DELETE right."""
        self._authority.verify(ticket, Operation.DELETE)
        entry = self._entries.get(ticket.ticket_id)
        if entry is None or glsn not in entry.glsns:
            raise UnknownGlsnError(
                f"glsn {glsn:#x} is not granted under ticket {ticket.ticket_id}"
            )
        entry.glsns.discard(glsn)
        self._glsn_owner.pop(glsn, None)

    # -- checks --------------------------------------------------------------

    def authorize(self, ticket: Ticket, glsn: int, op: Operation) -> None:
        """Raise unless ``ticket`` authentically grants ``op`` on ``glsn``."""
        self._authority.verify(ticket, op)
        owner = self._glsn_owner.get(glsn)
        if owner is None:
            raise UnknownGlsnError(f"glsn {glsn:#x} was never assigned")
        if owner != ticket.ticket_id:
            raise AccessDeniedError(
                f"glsn {glsn:#x} belongs to ticket {owner}, not "
                f"{ticket.ticket_id}"
            )

    def glsns_for(self, ticket_id: str) -> set[int]:
        entry = self._entries.get(ticket_id)
        return set(entry.glsns) if entry else set()

    @property
    def ticket_ids(self) -> list[str]:
        return sorted(self._entries)

    def render(self) -> str:
        """ASCII rendering in the paper's Table 6 shape."""
        lines = ["Ticket ID         Type  glsn", "-" * 60]
        for ticket_id in self.ticket_ids:
            entry = self._entries[ticket_id]
            glsns = ", ".join(format(g, "x") for g in sorted(entry.glsns))
            lines.append(f"{ticket_id:<17} {entry.type_string():<5} {glsns}")
        return "\n".join(lines)


def check_table_consistency(
    ctx: SmcContext,
    replicas: dict[str, AccessControlTable],
    ticket_id: str,
) -> bool:
    """§4.1's replica-consistency check via secure set intersection.

    Each DLA node's grant set for ``ticket_id`` enters a secure set
    intersection keyed by glsn; the replicas agree iff the intersection
    cardinality equals every replica's set size.  No node reveals grants
    the others lack (only the shared subset surfaces).
    """
    sets = {
        node_id: sorted(table.glsns_for(ticket_id))
        for node_id, table in replicas.items()
    }
    sizes = {len(v) for v in sets.values()}
    if sizes == {0}:
        return True
    result = secure_set_intersection(ctx, sets)
    common = len(result.any_value)
    return all(len(v) == common for v in sets.values())
