"""Log records and table rendering (paper eq. 5, Table 1).

A log record is ``Log = {glsn, L = (l_0 ... l_m)}`` — a unique global log
sequence number plus attribute values drawn from the global schema.  Values
may be sparse: a record carries only the attributes its event produced.

:func:`render_table` reproduces the paper's table presentation (used to
regenerate Tables 1-5 in the examples and EXPERIMENTS.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.logstore.schema import GlobalSchema

__all__ = ["LogRecord", "format_glsn", "render_table"]


def format_glsn(glsn: int) -> str:
    """Render a glsn the way the paper prints them (lowercase hex)."""
    return format(glsn, "x")


@dataclass(frozen=True)
class LogRecord:
    """One immutable global log record.

    Attributes
    ----------
    glsn:
        Unique, monotonically increasing integer assigned by the DLA
        cluster (rendered in hex when displayed).
    values:
        Attribute name -> value.  Only attributes present in the event.
    """

    glsn: int
    values: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.glsn < 0:
            raise SchemaError("glsn must be non-negative")

    def get(self, attribute: str, default=None):
        return self.values.get(attribute, default)

    def project(self, attributes: list[str]) -> dict:
        """The record restricted to ``attributes`` (missing ones omitted)."""
        return {a: self.values[a] for a in attributes if a in self.values}

    def canonical_bytes(self) -> bytes:
        """Stable byte serialization (input to integrity accumulators)."""
        body = {"glsn": self.glsn, "values": _stringify(self.values)}
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()

    def validate_against(self, schema: GlobalSchema) -> None:
        schema.validate_values(self.values)


def _stringify(values: dict) -> dict:
    """JSON-safe rendering of attribute values for canonical encoding."""
    out = {}
    for key, value in sorted(values.items()):
        if isinstance(value, bytes):
            out[key] = {"__bytes__": value.hex()}
        else:
            out[key] = value
    return out


def render_table(
    records: list[LogRecord],
    columns: list[str],
    include_glsn: bool = True,
    missing: str = "",
) -> str:
    """Render records as an aligned ASCII table, paper style.

    ``columns`` chooses and orders the attribute columns; glsn leads by
    default.  Missing attribute values render as ``missing``.
    """
    headers = (["glsn"] if include_glsn else []) + list(columns)
    rows = []
    for record in records:
        row = [format_glsn(record.glsn)] if include_glsn else []
        row.extend(str(record.values.get(c, missing)) for c in columns)
        rows.append(row)
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
