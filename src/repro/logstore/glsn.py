"""Global log sequence number allocation (paper §2 eq. 5, §4).

"glsn is a monotonically increasing integer that uniquely defines a log
record" and "the glsn is uniquely assigned by [the] DLA cluster".

Two allocators:

* :class:`GlsnAllocator` — a single authority handing out consecutive
  values, the simple case for one coordinator node.
* :class:`BlockGlsnAllocator` — cluster mode: each DLA node leases disjoint
  blocks from a shared counter and allocates locally within its lease, so
  concurrent nodes never collide and the global order is still monotone
  per-node with bounded interleaving.  This mirrors how distributed
  databases allocate sequence numbers without a per-write round trip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, LogStoreError

__all__ = [
    "GlsnAllocator",
    "BlockGlsnAllocator",
    "GlsnBlock",
    "RoutedGlsnAllocator",
]

# The paper's Table 1 starts its example glsns at 0x139aef78; using the same
# origin makes the regenerated tables byte-identical.
PAPER_GLSN_START = 0x139AEF78


class GlsnAllocator:
    """Monotone unique allocator owned by a single authority."""

    def __init__(self, start: int = PAPER_GLSN_START) -> None:
        if start < 0:
            raise ConfigurationError("glsn start must be non-negative")
        self._next = start

    def allocate(self) -> int:
        value = self._next
        self._next += 1
        return value

    def allocate_many(self, count: int) -> list[int]:
        if count < 0:
            raise ConfigurationError("cannot allocate a negative count")
        values = list(range(self._next, self._next + count))
        self._next += count
        return values

    @property
    def next_value(self) -> int:
        return self._next


@dataclass
class GlsnBlock:
    """A leased half-open range ``[start, end)`` of glsns."""

    start: int
    end: int
    cursor: int = -1

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError("empty glsn block")
        if self.cursor < 0:
            self.cursor = self.start

    @property
    def remaining(self) -> int:
        return self.end - self.cursor

    def take(self) -> int:
        if self.cursor >= self.end:
            raise LogStoreError("glsn block exhausted")
        value = self.cursor
        self.cursor += 1
        return value


class BlockGlsnAllocator:
    """Cluster-mode allocation: nodes lease blocks, allocate locally.

    The shared counter lives with the cluster coordinator; each
    :meth:`lease` costs one round trip and yields ``block_size`` local
    allocations.  Uniqueness holds because leased ranges are disjoint.
    """

    def __init__(self, start: int = PAPER_GLSN_START, block_size: int = 64) -> None:
        if block_size < 1:
            raise ConfigurationError("block size must be positive")
        self._shared = GlsnAllocator(start)
        self.block_size = block_size
        self._blocks: dict[str, GlsnBlock] = {}
        self.leases_granted = 0

    def lease(self, node_id: str) -> GlsnBlock:
        """Grant a fresh block to ``node_id`` (replacing any exhausted one)."""
        start = self._shared.next_value
        self._shared.allocate_many(self.block_size)
        block = GlsnBlock(start=start, end=start + self.block_size)
        self._blocks[node_id] = block
        self.leases_granted += 1
        return block

    def allocate(self, node_id: str) -> int:
        """Allocate one glsn on behalf of ``node_id``, leasing as needed."""
        block = self._blocks.get(node_id)
        if block is None or block.remaining == 0:
            block = self.lease(node_id)
        return block.take()


class RoutedGlsnAllocator(GlsnAllocator):
    """Allocator for one shard of a sharded cluster: values are *pinned*.

    In a multi-ring deployment the glsn space is owned by the
    :class:`~repro.shard.ShardRouter`'s single global allocator — per-shard
    stores must append at exactly the glsn the router assigned, never
    invent their own.  The router pins the routed value immediately before
    the shard's ``append``; allocating without a pinned value is a wiring
    bug and raises.
    """

    def __init__(self) -> None:
        super().__init__(start=0)
        self._pinned: list[int] = []

    def pin(self, glsn: int) -> None:
        """Queue the next routed glsn (FIFO when appends are batched)."""
        if glsn < 0:
            raise ConfigurationError("glsn must be non-negative")
        self._pinned.append(glsn)

    def allocate(self) -> int:
        if not self._pinned:
            raise LogStoreError(
                "routed allocator has no pinned glsn — appends to a shard "
                "store must go through the shard router"
            )
        return self._pinned.pop(0)

    def allocate_many(self, count: int) -> list[int]:
        return [self.allocate() for _ in range(count)]

    @property
    def next_value(self) -> int:
        if not self._pinned:
            raise LogStoreError("routed allocator has no pinned glsn")
        return self._pinned[0]
