"""Networked glsn coordination: cluster-unique allocation (paper §4).

"The glsn is uniquely assigned by [the] DLA cluster."  In a deployment
the cluster needs a wire protocol, not just an in-process counter:

* one DLA node acts as the **glsn coordinator** (the paper's cluster is
  mutually monitored; the coordinator's grants are plain integers any
  node can later audit for overlap);
* other nodes lease disjoint blocks with a single request/response and
  then allocate locally from their lease (no per-write round trip);
* :func:`audit_grants` detects a misbehaving coordinator that hands out
  overlapping blocks — the mutual-monitoring counterpart of §4.1.

Message kinds: ``glsn.lease`` (request), ``glsn.grant`` (response).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LogStoreError, ProtocolAbortError
from repro.logstore.glsn import PAPER_GLSN_START, GlsnBlock
from repro.net.message import Message

__all__ = ["GlsnCoordinator", "GlsnClient", "audit_grants"]


@dataclass(frozen=True)
class _Grant:
    node_id: str
    start: int
    end: int


class GlsnCoordinator:
    """The coordinator role: grants disjoint half-open glsn ranges."""

    def __init__(
        self,
        node_id: str,
        start: int = PAPER_GLSN_START,
        block_size: int = 64,
    ) -> None:
        if block_size < 1:
            raise LogStoreError("block size must be positive")
        self.node_id = node_id
        self.block_size = block_size
        self._next = start
        self.grants: list[_Grant] = []

    def handle(self, msg: Message, transport) -> None:
        if msg.kind != "glsn.lease":
            raise ProtocolAbortError(f"coordinator got unexpected {msg.kind!r}")
        requested = msg.payload.get("count") or self.block_size
        grant = _Grant(node_id=msg.src, start=self._next, end=self._next + requested)
        self._next = grant.end
        self.grants.append(grant)
        transport.send(
            Message(
                src=self.node_id,
                dst=msg.src,
                kind="glsn.grant",
                payload={"start": grant.start, "end": grant.end},
            )
        )

    def grant_log(self) -> list[tuple[str, int, int]]:
        """Auditable record of every grant made."""
        return [(g.node_id, g.start, g.end) for g in self.grants]


@dataclass
class GlsnClient:
    """A DLA node's allocation client: lease blocks, allocate locally."""

    node_id: str
    coordinator_id: str
    block_size: int = 64
    _block: GlsnBlock | None = field(default=None, init=False)
    _pending: bool = field(default=False, init=False)
    allocations: int = field(default=0, init=False)

    def request_lease(self, transport, count: int | None = None) -> None:
        """Ask the coordinator for a fresh block."""
        self._pending = True
        transport.send(
            Message(
                src=self.node_id,
                dst=self.coordinator_id,
                kind="glsn.lease",
                payload={"count": count or self.block_size},
            )
        )

    def handle(self, msg: Message, transport) -> None:
        if msg.kind != "glsn.grant":
            raise ProtocolAbortError(f"client got unexpected {msg.kind!r}")
        self._block = GlsnBlock(start=msg.payload["start"], end=msg.payload["end"])
        self._pending = False

    @property
    def has_lease(self) -> bool:
        return self._block is not None and self._block.remaining > 0

    @property
    def remaining(self) -> int:
        return self._block.remaining if self._block else 0

    def allocate(self) -> int:
        """Allocate one glsn from the current lease.

        Raises
        ------
        LogStoreError
            If no lease is held or the lease is exhausted — the caller
            must ``request_lease`` and drain the network first.
        """
        if self._block is None or self._block.remaining == 0:
            raise LogStoreError(
                f"{self.node_id} has no usable glsn lease; request one first"
            )
        self.allocations += 1
        return self._block.take()


def audit_grants(grants: list[tuple[str, int, int]]) -> list[tuple[int, int]]:
    """Mutual monitoring: find overlapping grant ranges.

    Returns the list of overlapping ``(start, end)`` intersections — empty
    for an honest coordinator.  Any node can run this over the published
    grant log.
    """
    overlaps = []
    ordered = sorted(grants, key=lambda g: g[1])
    for (_, a_start, a_end), (_, b_start, b_end) in zip(ordered, ordered[1:]):
        if b_start < a_end:
            overlaps.append((b_start, min(a_end, b_end)))
    return overlaps
