"""Per-node fragment storage and the distributed logging write path.

Each DLA node owns a :class:`FragmentStore`: its slice of every record
(keyed by glsn), its access-control-table replica, and its integrity
digests.  :class:`DistributedLogStore` wires ``n`` stores behind one write
interface implementing the paper's logging flow (Figure 2): a user node
fragments the record, obtains a glsn, and ships fragment ``Log_i`` to node
``P_i`` together with the one-way accumulator of the full fragment set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.crypto.accumulator import AccumulatorParams, OneWayAccumulator
from repro.crypto.tickets import Operation, Ticket, TicketAuthority
from repro.errors import AccessDeniedError, LogStoreError, UnknownGlsnError
from repro.logstore.access import AccessControlTable
from repro.logstore.fragmentation import Fragment, FragmentPlan
from repro.logstore.glsn import GlsnAllocator
from repro.logstore.records import LogRecord

__all__ = ["FragmentStore", "DistributedLogStore", "WriteReceipt"]


class FragmentStore:
    """One DLA node's local storage: fragments, ACL replica, digests."""

    def __init__(self, node_id: str, authority: TicketAuthority) -> None:
        self.node_id = node_id
        self.acl = AccessControlTable(authority)
        self._fragments: dict[int, Fragment] = {}
        self._accumulators: dict[int, int] = {}  # glsn -> expected A(x0, frags)
        # Cache coherence: a monotonic store-wide epoch plus per-glsn
        # versions, bumped on every mutation (put/delete/tamper).  Caches
        # key on these, so stale entries are simply never looked up again.
        self._epoch = 0
        self._versions: dict[int, int] = {}
        # Append-only chain anchors for the combined integrity ring:
        # (glsn, A(x0, every fragment of every record up to this glsn)).
        self._chain: list[tuple[int, int]] = []

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter — cache keys include it."""
        return self._epoch

    def fragment_version(self, glsn: int) -> int | None:
        """Version of one fragment (bumped by put/tamper), None if absent."""
        return self._versions.get(glsn)

    def _bump(self, glsn: int, present: bool) -> None:
        self._epoch += 1
        if present:
            self._versions[glsn] = self._epoch
        else:
            self._versions.pop(glsn, None)

    # -- writes ---------------------------------------------------------------

    def put(
        self,
        fragment: Fragment,
        ticket: Ticket,
        expected_accumulator: int,
        chain_anchor: int | None = None,
    ) -> None:
        """Store a fragment under an authenticated WRITE ticket.

        ``chain_anchor``, when given by the write path, is the running
        accumulator over *all* fragments of *all* records appended so far
        (this glsn included) — the anchor the combined integrity ring
        checks against in one exponentiation per hop.
        """
        if fragment.node_id != self.node_id:
            raise LogStoreError(
                f"fragment addressed to {fragment.node_id}, this is {self.node_id}"
            )
        self.acl.grant(ticket, fragment.glsn)
        self._fragments[fragment.glsn] = fragment
        self._accumulators[fragment.glsn] = expected_accumulator
        if chain_anchor is not None:
            self._chain.append((fragment.glsn, chain_anchor))
        self._bump(fragment.glsn, present=True)

    def delete(self, glsn: int, ticket: Ticket) -> None:
        """Delete a fragment under an authenticated DELETE ticket."""
        if glsn not in self._fragments:
            raise UnknownGlsnError(f"{self.node_id} holds no fragment for {glsn:#x}")
        self.acl.revoke_glsn(ticket, glsn)
        del self._fragments[glsn]
        self._accumulators.pop(glsn, None)
        # Chain anchors at or after the deleted glsn fold its fragments
        # and can never match again; the prefix before it stays valid.
        self._chain = [entry for entry in self._chain if entry[0] < glsn]
        self._bump(glsn, present=False)

    # -- reads ----------------------------------------------------------------

    def get(self, glsn: int, ticket: Ticket) -> Fragment:
        """Ticket-checked read of one fragment."""
        self.acl.authorize(ticket, glsn, Operation.READ)
        return self._read(glsn)

    def _read(self, glsn: int) -> Fragment:
        try:
            return self._fragments[glsn]
        except KeyError as exc:
            raise UnknownGlsnError(
                f"{self.node_id} holds no fragment for glsn {glsn:#x}"
            ) from exc

    def local_fragment(self, glsn: int) -> Fragment:
        """Internal (node-side) read used by query processing and integrity
        checks — node code accessing its *own* storage needs no ticket."""
        return self._read(glsn)

    def expected_accumulator(self, glsn: int) -> int:
        try:
            return self._accumulators[glsn]
        except KeyError as exc:
            raise UnknownGlsnError(
                f"{self.node_id} has no accumulator for glsn {glsn:#x}"
            ) from exc

    def chain_anchor_for(self, glsns: list[int]) -> int | None:
        """Combined anchor covering exactly ``glsns``, or None.

        Available only when ``glsns`` equals a prefix of this store's
        append-only chain (the common case: every current glsn, in
        order, on a store that has seen no deletes).
        """
        if not glsns or len(glsns) > len(self._chain):
            return None
        prefix = self._chain[: len(glsns)]
        if [g for g, _ in prefix] != list(glsns):
            return None
        return prefix[-1][1]

    @property
    def glsns(self) -> list[int]:
        return sorted(self._fragments)

    def __len__(self) -> int:
        return len(self._fragments)

    def scan(
        self, predicate: Callable[[Fragment], bool] | None = None
    ) -> Iterable[Fragment]:
        """Iterate local fragments (optionally filtered) in glsn order."""
        for glsn in self.glsns:
            frag = self._fragments[glsn]
            if predicate is None or predicate(frag):
                yield frag

    # -- shard migration --------------------------------------------------------

    def evict(self, glsn: int) -> Fragment:
        """Node-internal removal used by shard rebalancing (no ticket).

        ``move_shard`` relocates fragments between rings: the destination
        adopts them through the ordinary ticketed :meth:`put`, the source
        drops its copy here.  Unlike :meth:`delete` this is not the user
        delete path — the record still exists, on another shard — so no
        DELETE right is involved; ACL grants referencing the glsn become
        inert (reads raise :class:`UnknownGlsnError` on this node).
        Returns the evicted fragment.
        """
        frag = self._read(glsn)
        del self._fragments[glsn]
        self._accumulators.pop(glsn, None)
        # Same chain pruning as delete: anchors at/after the evicted glsn
        # fold a fragment this store no longer holds.
        self._chain = [entry for entry in self._chain if entry[0] < glsn]
        self._bump(glsn, present=False)
        return frag

    # -- fault injection (tests/benches) ---------------------------------------

    def tamper(self, glsn: int, attribute: str, new_value) -> None:
        """Maliciously alter a stored fragment, bypassing every check.

        Exists so integrity tests can emulate a compromised node (§4.1:
        "When a DLA node is compromised, its access control tables and log
        records could be modified").
        """
        frag = self._read(glsn)
        values = dict(frag.values)
        values[attribute] = new_value
        self._fragments[glsn] = Fragment(
            glsn=frag.glsn, node_id=frag.node_id, values=values
        )
        # Even a malicious rewrite moves the epoch: the compromised node's
        # own caches see its mutation (anchors, of course, do not).
        self._bump(glsn, present=True)


@dataclass(frozen=True)
class WriteReceipt:
    """What the user node keeps after a distributed write."""

    glsn: int
    accumulator: int
    nodes: tuple[str, ...]


class DistributedLogStore:
    """The cluster-side write path of Figure 2, in-process form.

    The networked form lives in :mod:`repro.core.service`; this class is
    the storage engine both share and is directly useful for tests,
    examples and single-process embeddings.
    """

    def __init__(
        self,
        plan: FragmentPlan,
        authority: TicketAuthority,
        acc_params: AccumulatorParams,
        allocator: GlsnAllocator | None = None,
        tracer=None,
        store_factory: Callable[[str], FragmentStore] | None = None,
    ) -> None:
        self.plan = plan
        self.authority = authority
        self.accumulator = OneWayAccumulator(acc_params, tracer=tracer)
        self.allocator = allocator or GlsnAllocator()
        # ``store_factory`` lets a durable backend supply WAL-attached
        # node stores while this class keeps owning the write protocol.
        factory = store_factory or (
            lambda node_id: FragmentStore(node_id, authority)
        )
        self.stores: dict[str, FragmentStore] = {
            node_id: factory(node_id) for node_id in plan.node_ids
        }
        # Running accumulator over every fragment of every record appended
        # so far — the combined integrity ring's anchor.  Broken (None)
        # once a record is deleted: the folded-in exponents cannot be
        # divided back out without the modulus factorization.
        self._chain_value: int | None = acc_params.x0

    def append(self, values: dict, ticket: Ticket) -> WriteReceipt:
        """Log one event: allocate a glsn, fragment, store everywhere.

        Computes the order-independent accumulator over all fragments and
        hands it to every node — the anchor for §4.1 integrity checks —
        plus the running *chain* anchor over the whole append-only log,
        which lets the batched integrity ring verify every glsn with one
        exponentiation per hop.
        """
        self.authority.verify(ticket, Operation.WRITE)
        glsn = self.allocator.allocate()
        record = LogRecord(glsn=glsn, values=values)
        fragments = self.plan.fragment(record)
        fragment_bytes = [frag.canonical_bytes() for frag in fragments.values()]
        digest = self.accumulator.accumulate_all(fragment_bytes)
        if self._chain_value is not None:
            self._chain_value = self.accumulator.fold_product(
                self._chain_value, fragment_bytes
            )
        for node_id, fragment in fragments.items():
            self.stores[node_id].put(
                fragment, ticket, digest, chain_anchor=self._chain_value
            )
        return WriteReceipt(
            glsn=glsn, accumulator=digest, nodes=tuple(sorted(fragments))
        )

    def append_record(self, record_values_list: list[dict], ticket: Ticket) -> list[WriteReceipt]:
        """Batch append preserving order."""
        return [self.append(values, ticket) for values in record_values_list]

    def read_record(self, glsn: int, ticket: Ticket) -> LogRecord:
        """Reassemble a full record — requires READ right on the glsn.

        Note this is the *owner* path (a user reading its own logs); the
        auditor path never reassembles records, it runs confidential
        queries instead.
        """
        fragments = [
            store.get(glsn, ticket) for store in self.stores.values()
        ]
        return self.plan.reassemble(fragments)

    def delete_record(self, glsn: int, ticket: Ticket) -> None:
        """Delete every fragment of ``glsn`` — requires the DELETE right."""
        self.authority.verify(ticket, Operation.DELETE)
        for store in self.stores.values():
            try:
                store.delete(glsn, ticket)
            except UnknownGlsnError:
                # A node that never held values still participates; treat a
                # missing fragment on one node as already-deleted there.
                continue
        self._chain_value = None  # combined anchors after this glsn are void

    def suspend_chain(self) -> None:
        """Invalidate the combined-ring chain anchor after a migration.

        Fragments evicted by ``move_shard`` stay folded into the running
        chain value; new appends anchored on it would fail verification
        against the store's *present* fragments.  Dropping the chain makes
        the batched integrity ring fall back to its per-glsn mode — slower
        but correct — exactly as a user-path delete does.
        """
        self._chain_value = None

    def node_store(self, node_id: str) -> FragmentStore:
        try:
            return self.stores[node_id]
        except KeyError as exc:
            raise AccessDeniedError(f"unknown DLA node {node_id!r}") from exc

    @property
    def glsns(self) -> list[int]:
        """All glsns present on (any of) the cluster nodes."""
        everything: set[int] = set()
        for store in self.stores.values():
            everything.update(store.glsns)
        return sorted(everything)
