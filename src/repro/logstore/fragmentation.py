"""Vertical fragmentation of log records across DLA nodes (paper §4).

"A global log can be split into n fragments Log_i = {glsn, L_i} ... where
L_i ⊆ A_i, ∪ L_i = L, and Log_i is sent to P_i."  Each DLA node ``P_i``
supports an attribute subset ``A_i`` with ``∪ A_i = I`` and — in the
paper's strict form — ``A_i ∩ A_j = ∅``.

:class:`FragmentPlan` captures the assignment and validates cover and
disjointness; an ``allow_overlap`` escape hatch supports the replication
ablation (DESIGN.md §5), where overlapping attribute support trades
confidentiality (measured by §5's ``u``) for fault tolerance.

:func:`paper_fragment_plan` encodes the exact Table 2-5 assignment so the
examples regenerate those tables verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FragmentationError, UnknownAttributeError
from repro.logstore.records import LogRecord
from repro.logstore.schema import GlobalSchema

__all__ = ["Fragment", "FragmentPlan", "paper_fragment_plan", "round_robin_plan"]


@dataclass(frozen=True)
class Fragment:
    """The slice of one record stored at one DLA node: ``{glsn, L_i}``."""

    glsn: int
    node_id: str
    values: dict

    def canonical_bytes(self) -> bytes:
        """Stable serialization — the integrity accumulator's input."""
        record = LogRecord(glsn=self.glsn, values=self.values)
        return self.node_id.encode("utf-8") + b"|" + record.canonical_bytes()


class FragmentPlan:
    """Assignment ``node_id -> A_i`` over a global schema.

    Parameters
    ----------
    schema:
        The attribute universe ``I``.
    assignment:
        Node id -> list of supported attribute names.
    allow_overlap:
        Permit an attribute to be supported by several nodes.  The paper's
        base design forbids it (``A_i ∩ A_j = ∅``); overlapping plans are
        used by the replication ablation.
    """

    def __init__(
        self,
        schema: GlobalSchema,
        assignment: dict[str, list[str]],
        allow_overlap: bool = False,
    ) -> None:
        if not assignment:
            raise FragmentationError("a fragment plan needs at least one node")
        self.schema = schema
        self.assignment = {node: list(attrs) for node, attrs in assignment.items()}
        self.allow_overlap = allow_overlap

        covered: dict[str, list[str]] = {}
        for node, attrs in self.assignment.items():
            if len(set(attrs)) != len(attrs):
                raise FragmentationError(f"node {node} lists duplicate attributes")
            for attr in attrs:
                if attr not in schema:
                    raise UnknownAttributeError(
                        f"node {node} supports unknown attribute {attr!r}"
                    )
                covered.setdefault(attr, []).append(node)

        missing = [name for name in schema.names if name not in covered]
        if missing:
            raise FragmentationError(
                f"attributes not covered by any node: {missing}"
            )
        overlaps = {a: nodes for a, nodes in covered.items() if len(nodes) > 1}
        if overlaps and not allow_overlap:
            raise FragmentationError(
                f"attributes supported by multiple nodes: {sorted(overlaps)}"
            )
        self._owners = covered

    @property
    def node_ids(self) -> list[str]:
        return sorted(self.assignment)

    def supports(self, node_id: str, attribute: str) -> bool:
        return attribute in self.assignment.get(node_id, ())

    def owners_of(self, attribute: str) -> list[str]:
        """All nodes supporting ``attribute`` (singleton when disjoint)."""
        try:
            return list(self._owners[attribute])
        except KeyError as exc:
            raise UnknownAttributeError(f"unknown attribute {attribute!r}") from exc

    def home_of(self, attribute: str) -> str:
        """The canonical owner (first in sorted order) of ``attribute``."""
        return sorted(self.owners_of(attribute))[0]

    def fragment(self, record: LogRecord) -> dict[str, Fragment]:
        """Split a record into per-node fragments.

        Every node receives a fragment (possibly with no values) so each
        node's glsn index is complete — the paper's access-control tables
        are replicated on every node.
        """
        record.validate_against(self.schema)
        fragments = {}
        for node, attrs in self.assignment.items():
            fragments[node] = Fragment(
                glsn=record.glsn,
                node_id=node,
                values=record.project(attrs),
            )
        return fragments

    def reassemble(self, fragments: list[Fragment]) -> LogRecord:
        """Inverse of :meth:`fragment` — requires fragments of one glsn."""
        if not fragments:
            raise FragmentationError("no fragments to reassemble")
        glsns = {f.glsn for f in fragments}
        if len(glsns) != 1:
            raise FragmentationError(f"fragments mix glsns: {sorted(glsns)}")
        values: dict = {}
        for frag in fragments:
            for key, val in frag.values.items():
                if key in values and values[key] != val:
                    raise FragmentationError(
                        f"conflicting replicas for attribute {key!r} "
                        f"of glsn {frag.glsn}"
                    )
                values[key] = val
        return LogRecord(glsn=glsns.pop(), values=values)

    def minimum_cover_count(self, attributes: list[str]) -> int:
        """§5's ``u``: minimum number of nodes covering ``attributes``.

        Exact greedy-free computation via exhaustive search over small
        node counts; falls back to greedy for clusters above 16 nodes.
        """
        needed = set(attributes)
        if not needed:
            return 0
        nodes = self.node_ids
        supports = {
            node: needed & set(self.assignment[node]) for node in nodes
        }
        # Drop useless nodes.
        useful = [n for n in nodes if supports[n]]
        if not useful:
            raise FragmentationError("no node supports the requested attributes")
        if len(useful) <= 16:
            from itertools import combinations

            for size in range(1, len(useful) + 1):
                for combo in combinations(useful, size):
                    if set().union(*(supports[n] for n in combo)) >= needed:
                        return size
            raise FragmentationError(
                f"attributes {sorted(needed)} not jointly coverable"
            )
        # Greedy approximation for big clusters.
        remaining = set(needed)
        count = 0
        while remaining:
            best = max(useful, key=lambda n: len(supports[n] & remaining))
            gain = supports[best] & remaining
            if not gain:
                raise FragmentationError(
                    f"attributes {sorted(remaining)} not coverable"
                )
            remaining -= gain
            count += 1
        return count


def paper_fragment_plan(schema: GlobalSchema) -> FragmentPlan:
    """The exact Table 2-5 assignment: P0..P3 over the Table 1 schema."""
    return FragmentPlan(
        schema,
        {
            "P0": ["Time", "C4"],
            "P1": ["id", "EID", "C2", "C5"],
            "P2": ["Tid", "C3", "C"],
            "P3": ["protocl", "ip", "C1"],
        },
    )


def round_robin_plan(schema: GlobalSchema, node_ids: list[str]) -> FragmentPlan:
    """Spread attributes across ``node_ids`` round-robin (benchmark plans)."""
    if not node_ids:
        raise FragmentationError("need at least one node")
    assignment: dict[str, list[str]] = {node: [] for node in node_ids}
    for i, name in enumerate(schema.names):
        assignment[node_ids[i % len(node_ids)]].append(name)
    return FragmentPlan(schema, assignment)
