"""Global log schema: the attribute universe ``I`` (paper §4).

"Let I = {i_0, i_1, ..., i_m} denote a set of all possible audit log
attributes ... Attributes in I can be well known, such as time, id, pid,
salary, price, etc., or undefined (denoted as C_1, C_2, ..., C_n)."

Undefined attributes are abstract: only the application subsystem knows
their meaning (by private agreement), which is precisely what makes storing
them at a DLA node privacy-preserving — the node sees opaque column names
and values.  §5's store-confidentiality metric counts them (``v``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import SchemaError, UnknownAttributeError

__all__ = ["AttributeKind", "Attribute", "GlobalSchema", "paper_table1_schema"]


class AttributeKind(str, Enum):
    """Value domain of an attribute, used for predicate type checking."""

    TIME = "time"        # ordered timestamps (stored as int ticks or str)
    IDENTITY = "id"      # principal / transaction identifiers
    INTEGER = "int"
    DECIMAL = "decimal"  # fixed-point business amounts (stored as str/float)
    TEXT = "text"
    UNDEFINED = "undefined"  # the paper's C_1 ... C_n


@dataclass(frozen=True)
class Attribute:
    """One attribute in the global universe ``I``."""

    name: str
    kind: AttributeKind = AttributeKind.TEXT

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid attribute name {self.name!r}")

    @property
    def is_undefined(self) -> bool:
        return self.kind is AttributeKind.UNDEFINED

    @property
    def comparable(self) -> bool:
        """Can this attribute appear in ordered (<, >) predicates?"""
        return self.kind in (
            AttributeKind.TIME,
            AttributeKind.INTEGER,
            AttributeKind.DECIMAL,
        )


class GlobalSchema:
    """The attribute universe ``I`` shared by an application subsystem.

    Iteration order is the declaration order (matters for table rendering);
    lookup is by name.
    """

    def __init__(self, attributes: list[Attribute]) -> None:
        if not attributes:
            raise SchemaError("a schema needs at least one attribute")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {duplicates}")
        self._attributes = list(attributes)
        self._by_name = {a.name: a for a in attributes}

    def __iter__(self):
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> list[str]:
        return [a.name for a in self._attributes]

    @property
    def undefined_names(self) -> list[str]:
        return [a.name for a in self._attributes if a.is_undefined]

    def get(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise UnknownAttributeError(
                f"attribute {name!r} is not in the global schema"
            ) from exc

    def validate_values(self, values: dict) -> None:
        """Reject records that name attributes outside ``I``."""
        for name in values:
            if name not in self._by_name:
                raise UnknownAttributeError(
                    f"record attribute {name!r} is not in the global schema"
                )

    def subset(self, names: list[str]) -> list[Attribute]:
        """The attribute objects for ``names`` (schema order preserved)."""
        wanted = set(names)
        missing = wanted - set(self._by_name)
        if missing:
            raise UnknownAttributeError(f"unknown attributes: {sorted(missing)}")
        return [a for a in self._attributes if a.name in wanted]


def paper_table1_schema() -> GlobalSchema:
    """The exact schema of the paper's Table 1 global event log.

    Columns: glsn is carried separately (it is the record key, not an
    attribute); the attributes are Time, id, protocl [sic — kept verbatim
    from the paper], Tid, and undefined C1, C2, C3.  The extra attributes
    appearing only in the fragment tables (C4, EID, C5, C, ip) are included
    so the Table 2-5 fragment plan can be expressed.
    """
    return GlobalSchema(
        [
            Attribute("Time", AttributeKind.TIME),
            Attribute("id", AttributeKind.IDENTITY),
            Attribute("protocl", AttributeKind.TEXT),
            Attribute("Tid", AttributeKind.IDENTITY),
            Attribute("C1", AttributeKind.UNDEFINED),
            Attribute("C2", AttributeKind.UNDEFINED),
            Attribute("C3", AttributeKind.UNDEFINED),
            Attribute("C4", AttributeKind.UNDEFINED),
            Attribute("EID", AttributeKind.IDENTITY),
            Attribute("C5", AttributeKind.UNDEFINED),
            Attribute("C", AttributeKind.UNDEFINED),
            Attribute("ip", AttributeKind.TEXT),
        ]
    )
