"""Exception hierarchy for the DLA reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller that embeds the library can catch one base class.  Subsystems define
narrower classes below; modules raise the most specific class that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyMismatchError(CryptoError):
    """Decryption attempted with a key that does not match the ciphertext."""


class ParameterError(CryptoError):
    """Cryptographic domain parameters are invalid (bad prime, modulus...)."""


class SignatureError(CryptoError):
    """A signature failed to verify."""


class SecretSharingError(CryptoError):
    """Secret-share generation or reconstruction failed."""


class ThresholdError(SecretSharingError):
    """Not enough shares (fewer than the threshold k) to reconstruct."""


class NetworkError(ReproError):
    """Base class for transport/simulated-network failures."""


class NodeUnreachableError(NetworkError):
    """A message was addressed to a node that is not registered or is down."""


class PartitionError(NetworkError):
    """Delivery failed because the source and target are partitioned."""


class CodecError(NetworkError):
    """A message could not be encoded or decoded."""


class TransportClosedError(NetworkError):
    """An operation was attempted on a closed transport."""


class TransportTimeout(NetworkError):
    """A transport operation (connect, receive) exceeded its time budget."""


class DeadlineExceededError(NetworkError):
    """A propagated :class:`~repro.resilience.Deadline` expired mid-operation.

    Carries ``stage`` naming where the budget ran out, so callers can
    attribute the failure (planner, a specific SMC round, a transport
    wait...).
    """

    def __init__(self, message: str, stage: str = "") -> None:
        super().__init__(message)
        self.stage = stage


class DeliveryFailedError(NetworkError):
    """At-least-once delivery exhausted its retry budget for a link.

    ``links`` lists the ``(src, dst)`` pairs that could not be reached;
    the ring supervisors use it to plan failover.
    """

    def __init__(self, message: str, links: tuple | None = None) -> None:
        super().__init__(message)
        self.links = tuple(links or ())


class SmcError(ReproError):
    """Base class for secure-multiparty-computation protocol failures."""


class ProtocolAbortError(SmcError):
    """A participant aborted the protocol (malformed round, timeout...)."""


class RingFailoverError(ProtocolAbortError):
    """Ring failover could not restore a quorum able to finish the round.

    ``skipped`` names the nodes excluded before the run was abandoned and
    ``failed_links`` the directed links whose delivery retries exhausted —
    a typed, attributed account of *why* the protocol gave up.
    """

    def __init__(
        self,
        message: str,
        skipped: tuple[str, ...] = (),
        failed_links: tuple | None = None,
    ) -> None:
        super().__init__(message)
        self.skipped = tuple(skipped)
        self.failed_links = tuple(failed_links or ())


class UnauthorizedObserverError(SmcError):
    """A node that is not an authorized observer requested the SMC result."""


class LogStoreError(ReproError):
    """Base class for distributed log-store failures."""


class SchemaError(LogStoreError):
    """A record does not match the global schema, or the schema is invalid."""


class FragmentationError(LogStoreError):
    """The fragment assignment does not cover the schema or overlaps badly."""


class AccessDeniedError(LogStoreError):
    """A ticket does not authorize the attempted read/write/delete."""


class TicketError(AccessDeniedError):
    """A ticket is malformed, expired, or failed authentication."""


class IntegrityError(LogStoreError):
    """Accumulator cross-check detected fragment tampering."""


class UnknownGlsnError(LogStoreError):
    """A glsn was referenced that the store has never assigned."""


class ShardError(ReproError):
    """Base class for horizontal-sharding failures (``repro.shard``)."""


class ShardMapError(ShardError):
    """A shard-map operation was invalid (bad range bounds, overlap...)."""


class UnknownShardError(ShardError):
    """A shard id outside the cluster's shard set was referenced."""


class StaleShardMapError(ShardError):
    """A request was routed with an out-of-date shard-map version.

    Placement moved underneath the client (a ``split_range`` /
    ``move_shard`` / tenant-pinning change bumped the map); honoring the
    stale route would silently mis-shard the append.  ``expected`` is the
    router's current version, ``presented`` the client's cached one —
    re-fetch the map and retry.
    """

    def __init__(self, message: str, expected: int = 0, presented: int = 0) -> None:
        super().__init__(message)
        self.expected = expected
        self.presented = presented


class AuditError(ReproError):
    """Base class for audit-query failures."""


class QuerySyntaxError(AuditError):
    """The auditing criterion failed to lex or parse."""


class UnknownAttributeError(AuditError):
    """A predicate references an attribute absent from the global schema."""


class PlanningError(AuditError):
    """No DLA node (or node set) can evaluate a subquery."""


class SchedulerError(AuditError):
    """Base class for concurrent query-scheduler failures."""


class SchedulerSaturatedError(SchedulerError):
    """Admission queue full: backpressure rejected the query.

    Raised by :meth:`~repro.sched.QueryScheduler.submit` when the bounded
    admission queue stays full past the admission timeout.  Callers can
    retry later or widen ``REPRO_SCHED_QUEUE_DEPTH``.
    """


class SchedulerShutdownError(SchedulerError):
    """The scheduler is shut down and no longer admits queries."""


class ClusterError(ReproError):
    """Base class for DLA cluster-membership failures."""


class EvidenceError(ClusterError):
    """An evidence piece failed verification or was forged."""


class MembershipError(ClusterError):
    """Join handshake violated the protocol (stale authority, bad token...)."""


class AgreementError(ClusterError):
    """Distributed majority agreement could not be reached."""
