"""repro.cache — epoch-keyed memoization for the DLA hot paths.

One primitive (:class:`LruCache`) behind three hot paths:

* the query executor's per-(node, attribute) projection and per-predicate
  scan caches, keyed by the owning store's epoch;
* the :class:`~repro.crypto.pohlig_hellman.MessageEncoder` hashed-encoding
  memo (pure function of value and prime);
* the in-process :class:`~repro.logstore.integrity.IntegrityChecker`'s
  per-glsn report cache, keyed by the fragment version vector.

``REPRO_CACHE=off`` disables everything at once;
``REPRO_CACHE_MAX_ENTRIES`` bounds each cache.  See ``docs/perf.md``.
"""

from repro.cache.lru import (
    CACHE_ENV_VAR,
    MAX_ENTRIES_ENV_VAR,
    CacheStats,
    LruCache,
    cache_stats_snapshot,
    caching_enabled,
    clear_all_caches,
    default_max_entries,
    set_caching_enabled,
)

__all__ = [
    "CACHE_ENV_VAR",
    "MAX_ENTRIES_ENV_VAR",
    "CacheStats",
    "LruCache",
    "cache_stats_snapshot",
    "caching_enabled",
    "clear_all_caches",
    "default_max_entries",
    "set_caching_enabled",
]
