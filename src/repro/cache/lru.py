"""Bounded, epoch-keyed memoization stores for the DLA hot paths.

The service's steady-state cost is dominated by *redundant* work:
repeated audit queries re-scan the same fragment stores and re-hash the
same attribute sets into ``Z_p^*`` even though the log barely changed.
:class:`LruCache` is the one memoization primitive every hot path shares:

* **Bounded.** At most ``max_entries`` live entries (default from
  ``REPRO_CACHE_MAX_ENTRIES``, 4096); the least-recently-used entry is
  evicted first, so a long-running service cannot grow without limit.
* **Epoch-keyed.** Callers put the data-version (a
  :class:`~repro.logstore.store.FragmentStore` epoch, a fragment
  version vector, the cipher prime) *into the key*.  Stale entries are
  never served — they simply stop being looked up and age out of the
  LRU.  There is no invalidation bookkeeping to get wrong.
* **Observable.** Hit / miss / eviction counters and an entry gauge,
  mirrored into a :class:`~repro.obs.metrics.MetricsRegistry` when one
  is attached (``repro_cache_hits_total{cache=...}`` etc.).
* **Killable.** ``REPRO_CACHE=off`` (or :func:`set_caching_enabled`)
  turns every cache into a pass-through: :meth:`LruCache.get_or_compute`
  recomputes unconditionally and stores nothing, so any suspected
  cache-coherence bug can be ruled out with one environment variable.
  Cached and uncached paths are value-identical by construction — the
  equivalence test suite asserts it.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError

__all__ = [
    "CacheStats",
    "LruCache",
    "caching_enabled",
    "set_caching_enabled",
    "default_max_entries",
    "cache_stats_snapshot",
    "clear_all_caches",
    "CACHE_ENV_VAR",
    "MAX_ENTRIES_ENV_VAR",
]

CACHE_ENV_VAR = "REPRO_CACHE"
MAX_ENTRIES_ENV_VAR = "REPRO_CACHE_MAX_ENTRIES"

DEFAULT_MAX_ENTRIES = 4096

_OFF_VALUES = {"off", "0", "false", "no", "disabled"}
_ON_VALUES = {"on", "1", "true", "yes", "enabled", ""}

# None -> follow the environment; True/False -> runtime override.
_enabled_override: bool | None = None
_override_lock = threading.Lock()

# Every live cache, so snapshots/kill-switch sweeps can reach them all.
_live_caches: "weakref.WeakSet[LruCache]" = weakref.WeakSet()


def caching_enabled() -> bool:
    """Whether caches serve entries (the ``REPRO_CACHE`` kill switch)."""
    if _enabled_override is not None:
        return _enabled_override
    raw = os.environ.get(CACHE_ENV_VAR, "on").strip().lower()
    if raw in _OFF_VALUES:
        return False
    if raw in _ON_VALUES:
        return True
    raise ConfigurationError(
        f"{CACHE_ENV_VAR}={raw!r} is neither on nor off"
    )


def set_caching_enabled(flag: bool | None) -> None:
    """Override the kill switch at runtime; ``None`` re-reads the env."""
    global _enabled_override
    with _override_lock:
        _enabled_override = flag


def default_max_entries() -> int:
    """Per-cache entry bound (``REPRO_CACHE_MAX_ENTRIES``, default 4096)."""
    raw = os.environ.get(MAX_ENTRIES_ENV_VAR)
    if not raw:
        return DEFAULT_MAX_ENTRIES
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{MAX_ENTRIES_ENV_VAR}={raw!r} is not an integer"
        ) from None
    if value < 1:
        raise ConfigurationError(f"{MAX_ENTRIES_ENV_VAR} must be positive")
    return value


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one cache."""

    name: str
    hits: int
    misses: int
    evictions: int
    entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _MISSING:  # sentinel distinguishable from any cached value
    pass


class LruCache:
    """A named, bounded, metrics-aware least-recently-used cache.

    Thread-safe for the simple get/put paths (one lock); values are
    expected to be immutable (tuples, frozensets, ints) so a hit can be
    handed straight to the caller.
    """

    def __init__(
        self,
        name: str,
        max_entries: int | None = None,
        metrics=None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError("max_entries must be positive")
        self.name = name
        self.max_entries = max_entries if max_entries is not None else default_max_entries()
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metrics = None
        if metrics is not None:
            self.attach_metrics(metrics)
        _live_caches.add(self)

    # -- metrics -----------------------------------------------------------

    def attach_metrics(self, registry, prefix: str = "repro_cache") -> None:
        """Mirror hit/miss/eviction counts into a MetricsRegistry."""
        labels = {"cache": self.name}
        self._metrics = {
            "hits": registry.counter(
                f"{prefix}_hits_total", help="cache lookups served", labels=labels
            ),
            "misses": registry.counter(
                f"{prefix}_misses_total", help="cache lookups recomputed", labels=labels
            ),
            "evictions": registry.counter(
                f"{prefix}_evictions_total", help="LRU evictions", labels=labels
            ),
            "entries": registry.gauge(
                f"{prefix}_entries", help="live cache entries", labels=labels
            ),
        }

    def _record(self, counter: str) -> None:
        if self._metrics is not None:
            self._metrics[counter].inc()

    def _sync_gauge(self) -> None:
        if self._metrics is not None:
            self._metrics["entries"].set(len(self._entries))

    # -- core --------------------------------------------------------------

    def get(self, key, default=None):
        """Look up ``key``; counts a hit or miss, refreshes recency."""
        if not caching_enabled():
            return default
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                self._record("misses")
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            self._record("hits")
            return value

    def put(self, key, value) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        if not caching_enabled():
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._record("evictions")
            self._sync_gauge()

    def get_or_compute(self, key, compute: Callable[[], object]):
        """Serve ``key`` from cache or run ``compute`` and remember it.

        With caching disabled this is exactly ``compute()`` — nothing is
        read or written, so the kill switch also rules out key bugs.
        """
        if not caching_enabled():
            return compute()
        sentinel = _MISSING
        with self._lock:
            value = self._entries.get(key, sentinel)
            if value is not sentinel:
                self._entries.move_to_end(key)
                self.hits += 1
                self._record("hits")
                return value
            self.misses += 1
            self._record("misses")
        # Compute outside the lock: big-int work must not serialize readers.
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._sync_gauge()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self.name,
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                entries=len(self._entries),
            )

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"<LruCache {self.name} entries={s.entries}/{self.max_entries} "
            f"hits={s.hits} misses={s.misses} evictions={s.evictions}>"
        )


def cache_stats_snapshot() -> dict[str, dict]:
    """Stats of every live cache, keyed by cache name (JSON-safe).

    Same-named caches (e.g. per-executor scan caches) are summed.
    """
    out: dict[str, dict] = {}
    for cache in list(_live_caches):
        s = cache.stats
        row = out.setdefault(
            s.name, {"hits": 0, "misses": 0, "evictions": 0, "entries": 0}
        )
        row["hits"] += s.hits
        row["misses"] += s.misses
        row["evictions"] += s.evictions
        row["entries"] += s.entries
    return dict(sorted(out.items()))


def clear_all_caches() -> int:
    """Drop every entry of every live cache; returns caches cleared."""
    caches = list(_live_caches)
    for cache in caches:
        cache.clear()
    return len(caches)
