"""Pluggable bulk modular-exponentiation engines.

Every relaxed-SMC protocol in the reproduction spends essentially all of
its CPU time in per-element ``pow(m, e, p)`` calls — the commutative
cipher's encrypt/decrypt, accumulator witnesses, hash-encoding squares.
CPython holds the GIL throughout a big-int ``pow``, so threads cannot
help; this module fans the work out across *processes* instead, behind a
tiny engine interface that every bulk crypto API accepts:

* :class:`SerialEngine` — the plain list comprehension.  Zero overhead,
  the right choice for small inputs and small moduli.
* :class:`ProcessPoolEngine` — chunked fan-out over ``os.cpu_count()``
  workers.  Results are byte-identical to the serial engine (same
  ``pow``), just computed concurrently.
* :class:`AutoEngine` — estimates the workload (elements × modulus bits²
  × exponent bits) and dispatches to the pool only past a crossover
  threshold, so small sets never pay pool/IPC overhead.

Selection: pass an engine (or spec string) explicitly, set the
``REPRO_PERF_ENGINE`` environment variable (``serial`` / ``process`` /
``auto``), or take the default (``auto``).  ``REPRO_PERF_WORKERS`` and
``REPRO_PERF_THRESHOLD`` tune the pool width and the auto crossover.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor

from repro.errors import ConfigurationError, ParameterError

__all__ = [
    "ExponentiationEngine",
    "SerialEngine",
    "ProcessPoolEngine",
    "AutoEngine",
    "resolve_engine",
    "get_default_engine",
    "set_default_engine",
    "shutdown_shared_pool",
    "ensure_shutdown_at_exit",
    "register_shutdown_hook",
    "unregister_shutdown_hook",
]

ENGINE_ENV_VAR = "REPRO_PERF_ENGINE"
WORKERS_ENV_VAR = "REPRO_PERF_WORKERS"
THRESHOLD_ENV_VAR = "REPRO_PERF_THRESHOLD"

# Auto crossover, in abstract work units (elements × mod_bits² × exp_bits).
# Calibrated so 512 elements at 512-bit prime (~0.3 s serial) parallelise
# while the 64/128-bit test-sized workloads stay serial.
DEFAULT_THRESHOLD_WORK = 1 << 31


def _pow_chunk(bases: list[int], exponent: int, modulus: int) -> list[int]:
    """Worker task: shared exponent over a slice of bases."""
    return [pow(b, exponent, modulus) for b in bases]


def _pow_chunk_pairs(pairs: list[tuple[int, int]], modulus: int) -> list[int]:
    """Worker task: per-element (base, exponent) pairs."""
    return [pow(b, e, modulus) for b, e in pairs]


def _env_int(var: str, default: int) -> int:
    raw = os.environ.get(var)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{var}={raw!r} is not an integer"
        ) from None


def _check_lengths(bases, exponent) -> None:
    if not isinstance(exponent, int) and len(exponent) != len(bases):
        raise ParameterError(
            f"per-element exponent list length {len(exponent)} "
            f"!= base count {len(bases)}"
        )


class ExponentiationEngine:
    """Interface: compute ``[pow(b, e, m) for b, e in ...]`` in bulk.

    ``exponent`` is either one shared ``int`` or a list aligned with
    ``bases``.  Implementations must preserve order and produce results
    identical to the serial evaluation — parallelism is an implementation
    detail, never a semantic one.
    """

    name = "abstract"

    def pow_many(self, bases: list[int], exponent, modulus: int) -> list[int]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class SerialEngine(ExponentiationEngine):
    """In-process evaluation — the baseline every other engine must match."""

    name = "serial"

    def pow_many(self, bases: list[int], exponent, modulus: int) -> list[int]:
        _check_lengths(bases, exponent)
        if isinstance(exponent, int):
            return [pow(b, exponent, modulus) for b in bases]
        return [pow(b, e, modulus) for b, e in zip(bases, exponent)]


class ProcessPoolEngine(ExponentiationEngine):
    """Chunked fan-out over a lazily-created process pool.

    The pool is created on first use (so merely constructing the engine —
    e.g. inside ``AutoEngine`` — costs nothing) and prefers the ``fork``
    start method where available: workers only ever run built-in ``pow``,
    and fork avoids re-importing the world per worker.
    """

    name = "process"

    def __init__(self, workers: int | None = None, chunks_per_worker: int = 4) -> None:
        if workers is None:
            workers = _env_int(WORKERS_ENV_VAR, os.cpu_count() or 1)
        if workers < 1:
            raise ConfigurationError("process engine needs at least one worker")
        if chunks_per_worker < 1:
            raise ConfigurationError("chunks_per_worker must be positive")
        self.workers = workers
        self.chunks_per_worker = chunks_per_worker
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                try:
                    mp_context = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX platforms
                    mp_context = multiprocessing.get_context()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=mp_context
                )
            return self._pool

    def _chunk_size(self, n: int) -> int:
        return max(1, math.ceil(n / (self.workers * self.chunks_per_worker)))

    def pow_many(self, bases: list[int], exponent, modulus: int) -> list[int]:
        _check_lengths(bases, exponent)
        if not bases:
            return []
        pool = self._ensure_pool()
        step = self._chunk_size(len(bases))
        if isinstance(exponent, int):
            futures = [
                pool.submit(_pow_chunk, bases[i : i + step], exponent, modulus)
                for i in range(0, len(bases), step)
            ]
        else:
            pairs = list(zip(bases, exponent))
            futures = [
                pool.submit(_pow_chunk_pairs, pairs[i : i + step], modulus)
                for i in range(0, len(pairs), step)
            ]
        out: list[int] = []
        for future in futures:  # submission order == element order
            out.extend(future.result())
        return out

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "ProcessPoolEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# One pool for the whole process: AutoEngine instances (one per SmcContext)
# all dispatch here, so tests creating many contexts never stack up pools.
_shared_pool: ProcessPoolEngine | None = None
_shared_pool_lock = threading.Lock()


def _get_shared_pool() -> ProcessPoolEngine:
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is None:
            _shared_pool = ProcessPoolEngine()
        return _shared_pool


def shutdown_shared_pool() -> None:
    """Tear down the process-global worker pool (it re-creates on demand).

    Idempotent: safe to call repeatedly, with or without a live pool, and
    the pool lazily re-creates on the next use.
    """
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is not None:
            _shared_pool.close()
            _shared_pool = None


# Callables other perf consumers register to be torn down *before* the
# worker pool: the precompute refill worker is a non-daemon thread whose
# fills may be mid-flight inside the pool, so it must stop/join first or
# pytest and the demo CLI hang at interpreter exit.
_shutdown_hooks: list = []
_shutdown_hooks_lock = threading.Lock()


def register_shutdown_hook(hook) -> None:
    """Run ``hook()`` ahead of the shared pool at process shutdown.

    Idempotent per hook (comparing equal hooks registers once).  Hooks
    must themselves be idempotent: explicit shutdowns before exit are
    fine, and the atexit pass runs whatever is still registered.
    """
    with _shutdown_hooks_lock:
        if hook not in _shutdown_hooks:
            _shutdown_hooks.append(hook)


def unregister_shutdown_hook(hook) -> None:
    with _shutdown_hooks_lock:
        if hook in _shutdown_hooks:
            _shutdown_hooks.remove(hook)


def _run_shutdown_hooks() -> None:
    with _shutdown_hooks_lock:
        hooks = list(_shutdown_hooks)
    for hook in hooks:
        try:
            hook()
        except Exception:  # pragma: no cover - teardown is best-effort
            pass


def _shutdown_at_exit() -> None:
    """The atexit target: stop registered workers, then the pool."""
    _run_shutdown_hooks()
    shutdown_shared_pool()


_atexit_registered = False
_atexit_lock = threading.Lock()


def ensure_shutdown_at_exit() -> None:
    """Register :func:`_shutdown_at_exit` with :mod:`atexit`, once.

    Without this, a process that used the shared pool but never called
    ``shutdown_shared_pool`` explicitly could hang at interpreter exit
    waiting on worker processes (seen with short-lived benchmark runs) —
    or, since the offline/online split, on a live background refill
    thread.  Registration is idempotent; the hook itself is too, so
    explicit shutdowns before exit are fine.
    """
    global _atexit_registered
    with _atexit_lock:
        if not _atexit_registered:
            atexit.register(_shutdown_at_exit)
            _atexit_registered = True


ensure_shutdown_at_exit()


class AutoEngine(ExponentiationEngine):
    """Crossover dispatcher: serial below the threshold, pool above.

    The workload estimate is ``len(bases) * mod_bits² * exp_bits`` —
    ``pow`` cost is roughly quadratic in modulus bits and linear in
    exponent bits — compared against ``threshold_work``.  Single-worker
    hosts always stay serial (a pool of one only adds IPC).
    """

    name = "auto"

    def __init__(
        self,
        threshold_work: int | None = None,
        pool: ProcessPoolEngine | None = None,
    ) -> None:
        if threshold_work is None:
            threshold_work = _env_int(THRESHOLD_ENV_VAR, DEFAULT_THRESHOLD_WORK)
        if threshold_work < 0:
            raise ConfigurationError("threshold_work must be non-negative")
        self.threshold_work = threshold_work
        self._serial = SerialEngine()
        self._pool = pool  # None -> process-global shared pool, on demand

    def _pool_engine(self) -> ProcessPoolEngine:
        return self._pool if self._pool is not None else _get_shared_pool()

    def estimate_work(self, bases: list[int], exponent, modulus: int) -> int:
        if not bases:
            return 0
        if isinstance(exponent, int):
            exp_bits = exponent.bit_length()
        else:
            exp_bits = max((e.bit_length() for e in exponent), default=0)
        return len(bases) * modulus.bit_length() ** 2 * max(exp_bits, 1)

    def select(self, bases: list[int], exponent, modulus: int) -> ExponentiationEngine:
        """The engine a given workload would dispatch to (for introspection)."""
        pool_width = (
            self._pool.workers if self._pool is not None else (os.cpu_count() or 1)
        )
        if pool_width <= 1:
            return self._serial
        if self.estimate_work(bases, exponent, modulus) < self.threshold_work:
            return self._serial
        return self._pool_engine()

    def pow_many(self, bases: list[int], exponent, modulus: int) -> list[int]:
        return self.select(bases, exponent, modulus).pow_many(bases, exponent, modulus)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()


_SPECS = {
    "serial": SerialEngine,
    "process": ProcessPoolEngine,
    "parallel": ProcessPoolEngine,
    "auto": AutoEngine,
}

_default_engine: ExponentiationEngine | None = None
_default_lock = threading.Lock()


def resolve_engine(spec=None) -> ExponentiationEngine:
    """Turn ``None`` / a spec string / an engine instance into an engine.

    ``None`` resolves to the process-wide default (which in turn honours
    the ``REPRO_PERF_ENGINE`` environment variable).
    """
    if spec is None:
        return get_default_engine()
    if isinstance(spec, ExponentiationEngine):
        return spec
    if isinstance(spec, str):
        cls = _SPECS.get(spec.strip().lower())
        if cls is None:
            raise ConfigurationError(
                f"unknown exponentiation engine {spec!r}; "
                f"expected one of {sorted(_SPECS)}"
            )
        return cls()
    raise ConfigurationError(f"cannot resolve engine from {type(spec)!r}")


def get_default_engine() -> ExponentiationEngine:
    """The process-wide default engine (env-var driven, built lazily)."""
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            spec = os.environ.get(ENGINE_ENV_VAR, "auto")
            cls = _SPECS.get(spec.strip().lower())
            if cls is None:
                raise ConfigurationError(
                    f"{ENGINE_ENV_VAR}={spec!r} is not a known engine; "
                    f"expected one of {sorted(_SPECS)}"
                )
            _default_engine = cls()
        return _default_engine


def set_default_engine(spec) -> ExponentiationEngine:
    """Install (and return) a new process-wide default.

    Pass ``None`` to reset, so the next :func:`get_default_engine` re-reads
    the environment.
    """
    global _default_engine
    if spec is None:
        with _default_lock:
            _default_engine = None
        return get_default_engine()
    engine = resolve_engine(spec)
    with _default_lock:
        _default_engine = engine
    return engine
