"""Performance subsystem: pluggable engines for the bulk-crypto hot path.

See :mod:`repro.perf.engine` for the engine interface and the
``REPRO_PERF_ENGINE`` / ``REPRO_PERF_WORKERS`` / ``REPRO_PERF_THRESHOLD``
environment knobs.  ``docs/api.md`` has the tuning guide.
"""

from repro.perf.engine import (
    AutoEngine,
    ExponentiationEngine,
    ProcessPoolEngine,
    SerialEngine,
    get_default_engine,
    resolve_engine,
    set_default_engine,
    shutdown_shared_pool,
)

__all__ = [
    "AutoEngine",
    "ExponentiationEngine",
    "ProcessPoolEngine",
    "SerialEngine",
    "get_default_engine",
    "resolve_engine",
    "set_default_engine",
    "shutdown_shared_pool",
]
