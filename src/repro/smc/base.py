"""Shared context and result types for the relaxed-SMC protocols.

Every protocol run happens inside an :class:`SmcContext` that fixes the
cluster-wide crypto parameters (the commutative-cipher prime, the secret-
sharing field), the RNG, and the three ledgers a run reports into: network
stats (owned by the transport), crypto-op counts, and the leakage ledger.

Definition 1 (paper §3) distinguishes *participants* (hold private inputs),
*observers* (authorized to learn the result ``w``) and an optional blind
*TTP coordinator*.  :class:`SmcResult` captures who got what.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro.cache import LruCache
from repro.crypto.pohlig_hellman import MessageEncoder
from repro.crypto.rng import DeterministicRng, system_rng
from repro.errors import ConfigurationError, UnauthorizedObserverError
from repro.net.stats import CryptoOpCounter
from repro.obs.metrics import BATCH_BUCKETS
from repro.obs.tracer import NOOP_TRACER
from repro.perf.engine import resolve_engine
from repro.smc.leakage import LeakageLedger

__all__ = ["SmcContext", "SmcResult", "protocol_span"]


@contextmanager
def protocol_span(ctx: "SmcContext", net, name: str, attributes: dict | None = None):
    """Span wrapping one protocol run, with cost deltas as attributes.

    Snapshots the transport's message/byte counters and the context's
    modexp total on entry, and writes the deltas (``messages``, ``bytes``,
    ``modexp``) onto the span on exit — so each protocol span carries
    exactly the cost it caused, even when several runs share one network.
    """
    tracer = ctx.tracer
    if not tracer.enabled:
        with tracer.span(name) as span:
            yield span
        return
    start_msgs = net.stats.messages
    start_bytes = net.stats.bytes
    start_modexp = ctx.crypto_ops.modexp
    with tracer.span(name, attributes) as span:
        try:
            yield span
        finally:
            span.set_attributes(
                {
                    "messages": net.stats.messages - start_msgs,
                    "bytes": net.stats.bytes - start_bytes,
                    "modexp": ctx.crypto_ops.modexp - start_modexp,
                }
            )


class SmcContext:
    """Cluster-wide parameters and ledgers for SMC protocol runs.

    Parameters
    ----------
    prime:
        Shared Pohlig-Hellman modulus (a safe prime all parties agree on).
    rng:
        Root RNG; each party derives a child stream via ``rng.spawn`` so
        runs are reproducible yet parties' randomness is independent.
    engine:
        Bulk-exponentiation engine for the protocols' crypto hot path —
        an :class:`~repro.perf.engine.ExponentiationEngine`, a spec string
        (``"serial"`` / ``"process"`` / ``"auto"``), or ``None`` for the
        process default (the ``REPRO_PERF_ENGINE`` environment variable,
        falling back to ``auto``).  Engines never change results, only
        how the ``pow`` calls are scheduled.
    tracer:
        An :class:`~repro.obs.tracer.Tracer` all protocol runs emit spans
        into; ``None`` (the default) installs the no-op tracer, which
        records nothing.  Tracing never changes protocol behaviour:
        message contents, counts, and modexp totals are identical with
        any tracer.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when given,
        crypto-op counts and modexp batch sizes feed into it.
    encoder:
        Optional :class:`~repro.crypto.pohlig_hellman.MessageEncoder` to
        share instead of building a fresh one.  The query scheduler gives
        every concurrent query its own context (own RNG stream, crypto
        counter, and leakage ledger) but passes the service's encoder
        through, so the hashed-encoding memo — pure in (value, prime) —
        is warmed once for all in-flight queries.
    precompute:
        Optional :class:`~repro.precompute.PrecomputeManager`.  When set,
        the protocols draw their query-independent crypto material (key
        pairs, blindings, share polynomials) from its pools instead of
        computing inline; draws are thread-safe, so concurrent scheduler
        contexts share one manager the same way they share the encoder.
        ``None`` — and likewise ``REPRO_PRECOMPUTE=off`` — keeps the
        original inline computation, bit for bit.
    telemetry:
        Optional :class:`~repro.obs.flight.TelemetryHub` for cross-node
        tracing: modexp counts are then also attributed to the open
        flight-recorder span of the party that performed them, and
        protocol bootstrap code can open per-node spans through
        :meth:`node_span`.  Never changes protocol behaviour.
    """

    def __init__(
        self,
        prime: int,
        rng: DeterministicRng | None = None,
        engine=None,
        tracer=None,
        metrics=None,
        encoder: MessageEncoder | None = None,
        precompute=None,
        telemetry=None,
    ) -> None:
        if prime < 17:
            raise ConfigurationError("shared prime too small")
        self.prime = prime
        self.rng = rng or system_rng()
        # Hashed encodings are pure in (value, prime): memoize them so
        # repeated protocol runs over the same elements skip the SHA-256
        # rejection sampling and squaring (REPRO_CACHE=off disables).
        if encoder is not None and encoder.p != prime:
            raise ConfigurationError("shared encoder prime does not match context")
        self.encoder = encoder or MessageEncoder(
            prime, cache=LruCache("encoder.hashed", metrics=metrics)
        )
        self.engine = resolve_engine(engine)
        self.tracer = tracer or NOOP_TRACER
        self.metrics = metrics
        self.crypto_ops = CryptoOpCounter()
        if metrics is not None:
            self.crypto_ops.attach_metrics(metrics)
        self.leakage = LeakageLedger(tracer=self.tracer)
        self.precompute = precompute
        # Cross-node tracing (repro.obs.flight.TelemetryHub): when set, a
        # party's modexps are additionally attributed to whichever of its
        # flight-recorder spans is open, and bootstrap (round-0) work can
        # open node spans via :meth:`node_span`.
        self.telemetry = telemetry

    def party_rng(self, party_id: str) -> DeterministicRng:
        """Independent randomness stream for one party."""
        return self.rng.spawn(f"party:{party_id}")

    def count_modexp(self, party_id: str, count: int = 1, phase: str = "online") -> None:
        """Record ``count`` modular exponentiations performed by a party.

        ``phase`` attributes the work to the offline/online split: pool
        draws record the drawn material's production cost as
        ``offline.modexp``, so a warm query's offline + online counts sum
        to exactly what the pool-disabled run pays online.
        """
        self.crypto_ops.add(f"{party_id}.modexp", count)
        self.crypto_ops.add("total.modexp", count)
        if phase == "offline":
            self.crypto_ops.add("offline.modexp", count)
        if self.telemetry is not None:
            self.telemetry.add_cost(party_id, "modexp", count)
        if self.metrics is not None:
            self.metrics.histogram(
                "repro_crypto_modexp_batch_size",
                buckets=BATCH_BUCKETS,
                help="modexps recorded per bulk call",
            ).observe(count)

    def node_span(self, party_id: str, name: str, attributes: dict | None = None):
        """Context manager: a flight-recorder span at ``party_id``.

        Protocol ``start()`` methods run on the coordinator thread before
        any message is delivered, so their per-party work (encrypting own
        sets, dealing shares, blinding values) has no handler span to land
        in — this opens one explicitly.  A no-op without a telemetry hub.
        """
        if self.telemetry is None:
            return nullcontext(None)
        return self.telemetry.node_span(party_id, name, attributes)

    # -- precompute draws (total: pool hit, else the legacy inline path) -------

    def make_cipher(self, party_id: str, rng: DeterministicRng):
        """A commutative cipher for one party — pooled when possible.

        The fallback generates from ``rng`` exactly as the parties did
        before the offline/online split, so with no manager (or with
        ``REPRO_PRECOMPUTE=off``) the key material is bitwise-identical.
        """
        from repro.crypto.pohlig_hellman import PohligHellmanCipher

        if self.precompute is not None:
            return self.precompute.ph_cipher(
                self.prime, party_id, rng, ops=self.crypto_ops
            )
        return PohligHellmanCipher.generate(self.prime, rng)

    def shamir_share(self, scheme, party_id: str, secret: int, rng) -> list:
        """Deal Shamir shares for one party, drawing pooled polynomial
        tails when a manager is attached."""
        if self.precompute is not None:
            return self.precompute.shamir_share(
                scheme, party_id, secret, rng, ops=self.crypto_ops
            )
        return scheme.share(secret, rng=rng)


@dataclass
class SmcResult:
    """Outcome of one relaxed-SMC run.

    ``values`` maps each authorized observer to the result it learned.
    Reading the result as an unauthorized party raises — mirroring the
    protocol property that only selected observers receive ``w``.

    ``degraded`` is ``True`` when ring failover completed the run without
    some participants; ``skipped`` names them.  A degraded answer is
    *explicitly* partial — callers must treat the result as computed over
    the surviving inputs only (the leakage ledger records the same fact).
    ``failovers`` counts relaunches the supervisor needed.
    """

    protocol: str
    observers: frozenset[str]
    values: dict[str, Any] = field(default_factory=dict)
    rounds: int = 0
    degraded: bool = False
    skipped: tuple[str, ...] = ()
    failovers: int = 0

    def value_for(self, observer: str) -> Any:
        if observer not in self.observers:
            raise UnauthorizedObserverError(
                f"{observer!r} is not an authorized observer of {self.protocol}"
            )
        return self.values[observer]

    @property
    def any_value(self) -> Any:
        """The result as seen by an arbitrary authorized observer.

        All observers of a correct run hold equal values; tests assert it.
        """
        if not self.values:
            raise UnauthorizedObserverError(f"{self.protocol}: no observer values")
        return next(iter(self.values.values()))
