"""Secure sum Σₛ and weighted sum (paper §3.5, ref [7]).

``n`` nodes with local values ``a_0 .. a_{n-1}`` compute ``Σ a_i`` without
revealing any ``a_i``.  Exactly the paper's construction: each node ``P_i``
picks a random degree-(k-1) polynomial ``f_i`` with ``f_i(0) = a_i`` over a
public prime field ``Z_p`` (``p >> Σ a_i``) and predetermined evaluation
points ``x_0 .. x_{n-1}``, and sends the share ``s_ij = f_i(x_j)`` to node
``P_j``.  Every node sums its received shares to hold one share of
``F(z) = Σ f_i(z)``, whose free coefficient is the answer; any ``k`` nodes'
F-shares reconstruct it.

The weighted variant computes ``Σ α_i a_i`` for public constants ``α_i``:
each node scales its *F-share contribution* — precisely, ``P_j`` computes
``Σ_i α_i s_ij`` — and reconstruction proceeds identically.

Leakage: the result itself reveals the sum (by design, to observers only);
share traffic reveals nothing (Shamir is information-theoretically hiding
below k shares).  The field modulus bounds the sum, so parties learn the
*a-priori range*, recorded as secondary leakage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.shamir import ShamirScheme
from repro.errors import ConfigurationError, ProtocolAbortError, RingFailoverError
from repro.net.message import Message
from repro.net.simnet import SimNetwork
from repro.resilience import Deadline, supervise_ring, supervise_ring_async
from repro.smc.base import SmcContext, SmcResult, protocol_span

__all__ = [
    "SumParty",
    "secure_sum",
    "secure_sum_async",
    "secure_weighted_sum",
    "secure_weighted_sum_async",
]

PROTOCOL = "secure_sum"


@dataclass
class _SumState:
    received_shares: dict[str, int] = field(default_factory=dict)
    f_shares: dict[int, int] = field(default_factory=dict)  # x_j -> F(x_j)
    result: int | None = None


class SumParty:
    """One node in the secure-sum protocol.

    ``index`` is the node's 1-based position; its Shamir evaluation point is
    ``xs[index-1]``.
    """

    def __init__(
        self,
        party_id: str,
        value: int,
        weight: int,
        ctx: SmcContext,
        parties: list[str],
        observers: list[str],
        scheme: ShamirScheme,
    ) -> None:
        if value < 0:
            raise ConfigurationError("secure sum takes non-negative integers")
        self.party_id = party_id
        self.value = value
        self.weight = weight
        self.ctx = ctx
        self.parties = sorted(parties)
        self.observers = sorted(observers)
        self.scheme = scheme
        self.index = self.parties.index(party_id)
        self._rng = ctx.party_rng(party_id)
        self.state = _SumState()

    @property
    def my_x(self) -> int:
        return self.scheme.xs[self.index]

    def start(self, transport) -> None:
        """Deal one share of our secret to every party (including ourselves)."""
        # The polynomial tail is secret-independent; a warmed precompute
        # pool supplies its evaluations so only `secret + t(x_j)` is online.
        with self.ctx.node_span(
            self.party_id, "node.ssum.deal", {"node": self.party_id}
        ):
            shares = self.ctx.shamir_share(
                self.scheme, self.party_id, self.value, self._rng
            )
            for peer, share in zip(self.parties, shares):
                payload = {"y": share.y, "from": self.party_id}
                if peer == self.party_id:
                    self._accept_share(self.party_id, share.y, transport)
                else:
                    transport.send(
                        Message(src=self.party_id, dst=peer, kind="ssum.share", payload=payload)
                    )

    def handle(self, msg: Message, transport) -> None:
        if msg.kind == "ssum.share":
            self._accept_share(msg.payload["from"], msg.payload["y"], transport)
        elif msg.kind == "ssum.fshare":
            self._accept_fshare(msg.payload["x"], msg.payload["y"], transport)
        else:
            raise ProtocolAbortError(f"unexpected message kind {msg.kind!r}")

    def _accept_share(self, from_party: str, y: int, transport) -> None:
        if from_party in self.state.received_shares:
            raise ProtocolAbortError(f"duplicate share from {from_party}")
        self.state.received_shares[from_party] = y
        if len(self.state.received_shares) < len(self.parties):
            return
        # F(x_j) = Σ_i α_i · s_ij   (α_i = 1 for the plain sum)
        weights = {p: w for p, w in zip(self.parties, self._all_weights)}
        f_share = sum(
            weights[p] * y_i for p, y_i in self.state.received_shares.items()
        ) % self.scheme.p
        # Send our F-share to each observer; k of these reconstruct F(0).
        for obs in self.observers:
            if obs == self.party_id:
                self._accept_fshare(self.my_x, f_share, transport)
            else:
                transport.send(
                    Message(
                        src=self.party_id,
                        dst=obs,
                        kind="ssum.fshare",
                        payload={"x": self.my_x, "y": f_share},
                    )
                )

    _all_weights: list[int] = []  # injected by the driver before start()

    def _accept_fshare(self, x: int, y: int, transport) -> None:
        if self.party_id not in self.observers:
            raise ProtocolAbortError(
                f"non-observer {self.party_id} received an F-share"
            )
        self.state.f_shares[x] = y
        if len(self.state.f_shares) >= self.scheme.k and self.state.result is None:
            from repro.crypto.shamir import Share

            shares = [
                Share(x=x, y=y, p=self.scheme.p)
                for x, y in sorted(self.state.f_shares.items())
            ]
            self.state.result = self.scheme.reconstruct(shares)


def _run_sum(
    ctx: SmcContext,
    values: dict[str, int],
    weights: dict[str, int] | None,
    observers: list[str] | None,
    k: int | None,
    net: SimNetwork | None,
    field_prime: int | None,
    deadline: Deadline | None = None,
) -> SmcResult:
    if not values:
        raise ConfigurationError("secure sum needs at least one party")
    parties = sorted(values)
    observers = sorted(observers) if observers else list(parties)
    unknown = [o for o in observers if o not in parties]
    if unknown:
        raise ConfigurationError(f"observers {unknown} are not parties")
    n = len(parties)
    k = k if k is not None else n
    weights = weights or {p: 1 for p in parties}
    if set(weights) != set(parties):
        raise ConfigurationError("weights must be given for exactly the parties")

    if field_prime is None:
        from repro.crypto.primes import prime_above

        bound = sum(abs(weights[p]) * values[p] for p in parties) + n + 1
        field_prime = prime_above(max(bound, 2 * n + 3))

    net = net or SimNetwork(tracer=ctx.tracer)

    def build(alive: list[str]) -> dict[str, SumParty]:
        """Construct the party objects over the (possibly reduced) cluster."""
        scheme = ShamirScheme(
            k=min(k, len(alive)), n=len(alive), p=field_prime
        )
        obs_alive = [o for o in observers if o in alive]
        weight_list = [weights[p] % field_prime for p in alive]
        nodes = {}
        for pid in alive:
            node = SumParty(
                pid, values[pid], weights[pid], ctx, alive, obs_alive, scheme
            )
            node._all_weights = weight_list
            nodes[pid] = node
        return nodes

    with protocol_span(
        ctx,
        net,
        "smc.sum",
        {"parties": n, "k": k, "weighted": any(w != 1 for w in weights.values())},
    ):
        ctx.leakage.record(
            PROTOCOL, "*", "value_bound",
            f"field modulus {field_prime} bounds the (weighted) sum a priori",
        )
        if net.reliable:
            nodes_box: dict[str, SumParty] = {}

            def launch(alive: list[str], avoid: frozenset):
                obs_alive = [o for o in observers if o in alive]
                if not obs_alive:
                    raise RingFailoverError(
                        f"{PROTOCOL}: every authorized observer is unreachable"
                    )
                nodes_box.clear()
                nodes_box.update(build(alive))
                for pid, node in nodes_box.items():
                    net.register(pid, node.handle)
                for node in nodes_box.values():
                    node.start(net)

                def collect():
                    out = {}
                    for obs in obs_alive:
                        result = nodes_box[obs].state.result
                        if result is None:
                            return None
                        out[obs] = result
                    return out

                return collect

            outcome = supervise_ring(
                net, PROTOCOL, parties, launch,
                min_parties=1, deadline=deadline, ledger=ctx.leakage,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset(outcome.values),
                values=outcome.values,
                rounds=2,
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )
        nodes = build(parties)
        for pid, node in nodes.items():
            net.register(pid, node.handle)
        for node in nodes.values():
            node.start(net)
        net.run(deadline=deadline)

    out = {}
    for obs in observers:
        result = nodes[obs].state.result
        if result is None:
            raise ProtocolAbortError(f"observer {obs} could not reconstruct the sum")
        out[obs] = result
    return SmcResult(
        protocol=PROTOCOL, observers=frozenset(observers), values=out, rounds=2
    )


async def _run_sum_async(
    ctx: SmcContext,
    values: dict[str, int],
    weights: dict[str, int] | None,
    observers: list[str] | None,
    k: int | None,
    net,
    field_prime: int | None,
    deadline: Deadline | None = None,
) -> SmcResult:
    """Coroutine twin of :func:`_run_sum` (same scheme, spans and leakage)."""
    if not values:
        raise ConfigurationError("secure sum needs at least one party")
    parties = sorted(values)
    observers = sorted(observers) if observers else list(parties)
    unknown = [o for o in observers if o not in parties]
    if unknown:
        raise ConfigurationError(f"observers {unknown} are not parties")
    n = len(parties)
    k = k if k is not None else n
    weights = weights or {p: 1 for p in parties}
    if set(weights) != set(parties):
        raise ConfigurationError("weights must be given for exactly the parties")

    if field_prime is None:
        from repro.crypto.primes import prime_above

        bound = sum(abs(weights[p]) * values[p] for p in parties) + n + 1
        field_prime = prime_above(max(bound, 2 * n + 3))

    if net is None:
        from repro.aio.simnet import AsyncSimNetwork

        net = AsyncSimNetwork(tracer=ctx.tracer)

    def build(alive: list[str]) -> dict[str, SumParty]:
        scheme = ShamirScheme(
            k=min(k, len(alive)), n=len(alive), p=field_prime
        )
        obs_alive = [o for o in observers if o in alive]
        weight_list = [weights[p] % field_prime for p in alive]
        nodes = {}
        for pid in alive:
            node = SumParty(
                pid, values[pid], weights[pid], ctx, alive, obs_alive, scheme
            )
            node._all_weights = weight_list
            nodes[pid] = node
        return nodes

    with protocol_span(
        ctx,
        net,
        "smc.sum",
        {"parties": n, "k": k, "weighted": any(w != 1 for w in weights.values())},
    ):
        ctx.leakage.record(
            PROTOCOL, "*", "value_bound",
            f"field modulus {field_prime} bounds the (weighted) sum a priori",
        )
        if net.reliable:
            nodes_box: dict[str, SumParty] = {}

            def launch(alive: list[str], avoid: frozenset):
                obs_alive = [o for o in observers if o in alive]
                if not obs_alive:
                    raise RingFailoverError(
                        f"{PROTOCOL}: every authorized observer is unreachable"
                    )
                nodes_box.clear()
                nodes_box.update(build(alive))
                for pid, node in nodes_box.items():
                    net.register(pid, node.handle)
                for node in nodes_box.values():
                    node.start(net)

                def collect():
                    out = {}
                    for obs in obs_alive:
                        result = nodes_box[obs].state.result
                        if result is None:
                            return None
                        out[obs] = result
                    return out

                return collect

            outcome = await supervise_ring_async(
                net, PROTOCOL, parties, launch,
                min_parties=1, deadline=deadline, ledger=ctx.leakage,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset(outcome.values),
                values=outcome.values,
                rounds=2,
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )
        nodes = build(parties)
        for pid, node in nodes.items():
            net.register(pid, node.handle)
        for node in nodes.values():
            node.start(net)
        await net.drain(deadline=deadline)

    out = {}
    for obs in observers:
        result = nodes[obs].state.result
        if result is None:
            raise ProtocolAbortError(f"observer {obs} could not reconstruct the sum")
        out[obs] = result
    return SmcResult(
        protocol=PROTOCOL, observers=frozenset(observers), values=out, rounds=2
    )


def secure_sum(
    ctx: SmcContext,
    values: dict[str, int],
    observers: list[str] | None = None,
    k: int | None = None,
    net: SimNetwork | None = None,
    field_prime: int | None = None,
    deadline: Deadline | None = None,
) -> SmcResult:
    """Compute ``Σ values[p]`` with per-party privacy.

    ``k`` is the reconstruction threshold (defaults to n — every node's
    F-share needed).  ``field_prime`` defaults to a prime safely above the
    maximum possible sum.  On a resilient network the run is supervised:
    unreachable parties are excluded and the (partial) sum comes back with
    ``degraded=True`` and the skipped ids listed.
    """
    return _run_sum(ctx, values, None, observers, k, net, field_prime, deadline)


def secure_weighted_sum(
    ctx: SmcContext,
    values: dict[str, int],
    weights: dict[str, int],
    observers: list[str] | None = None,
    k: int | None = None,
    net: SimNetwork | None = None,
    field_prime: int | None = None,
    deadline: Deadline | None = None,
) -> SmcResult:
    """Compute ``Σ weights[p] · values[p]`` for public weights."""
    return _run_sum(ctx, values, weights, observers, k, net, field_prime, deadline)


async def secure_sum_async(
    ctx: SmcContext,
    values: dict[str, int],
    observers: list[str] | None = None,
    k: int | None = None,
    net=None,
    field_prime: int | None = None,
    deadline: Deadline | None = None,
) -> SmcResult:
    """Coroutine twin of :func:`secure_sum`."""
    return await _run_sum_async(
        ctx, values, None, observers, k, net, field_prime, deadline
    )


async def secure_weighted_sum_async(
    ctx: SmcContext,
    values: dict[str, int],
    weights: dict[str, int],
    observers: list[str] | None = None,
    k: int | None = None,
    net=None,
    field_prime: int | None = None,
    deadline: Deadline | None = None,
) -> SmcResult:
    """Coroutine twin of :func:`secure_weighted_sum`."""
    return await _run_sum_async(
        ctx, values, weights, observers, k, net, field_prime, deadline
    )
