"""Secure distributed sorting: Maxₛ, Minₛ, Rankₛ (paper §3.3).

``n`` nodes each hold a secret number ``x_i``.  They want to learn *who*
holds the maximum / minimum, and interested parties want the rank of their
own number — without anyone learning the numbers.

The paper's relaxed construction: "all n parties negotiate for a
transformation, and let a blind TTP process these transformed numbers."
We use a shared secret strictly-increasing affine map ``W = a·Y + b``
(``a > 0``), with the working modulus chosen large enough that no value
wraps — order is exactly preserved, so the blind TTP can sort the blinded
values and answer argmax / argmin / rank queries while seeing only blinded
magnitudes.

Leakage (recorded): the TTP learns the *order statistics* of the inputs
and the *scaled pairwise gaps* ``a·(x_i - x_j)`` — secondary information
permitted by Definition 1.  To blunt gap leakage, callers can enable
``rank_only_noise``: each party adds a small shared-per-party jitter drawn
below ``a`` (order preserved for distinct values because jitter < a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ProtocolAbortError
from repro.net.message import Message
from repro.net.simnet import SimNetwork
from repro.resilience import Deadline, standby_id, supervise_ring, supervise_ring_async
from repro.smc.base import SmcContext, SmcResult, protocol_span

__all__ = [
    "MonotoneBlinding",
    "RankingTtp",
    "RankingParty",
    "secure_ranking",
    "secure_ranking_async",
]

PROTOCOL = "secure_ranking"


@dataclass(frozen=True)
class MonotoneBlinding:
    """Shared secret strictly-increasing map ``Y -> a·Y + b`` (no wrap).

    ``value_bound`` is the public a-priori bound on inputs; the map is
    injective and order-preserving on ``[0, value_bound]``.
    """

    a: int
    b: int
    value_bound: int

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise ConfigurationError("slope a must be positive")
        if self.b < 0:
            raise ConfigurationError("offset b must be non-negative")

    @classmethod
    def agree(
        cls, ctx: SmcContext, group_label: str, value_bound: int
    ) -> "MonotoneBlinding":
        """Derive a shared map from the group's out-of-band secret.

        The slope is value-independent and comes from the precompute pool
        when a manager is attached; the offset depends on the data-derived
        bound and always stays online.
        """
        if ctx.precompute is not None:
            a, b = ctx.precompute.monotone_pair(
                ctx.rng, group_label, value_bound, ops=ctx.crypto_ops
            )
            return cls(a=a, b=b, value_bound=value_bound)
        rng = ctx.rng.spawn(f"monotone:{group_label}")
        a = rng.randrange(2**16, 2**32)
        b = rng.randrange(0, a * max(value_bound, 1))
        return cls(a=a, b=b, value_bound=value_bound)

    def apply(self, value: int, jitter: int = 0) -> int:
        if not 0 <= value <= self.value_bound:
            raise ConfigurationError(
                f"value {value} outside the agreed bound [0, {self.value_bound}]"
            )
        if not 0 <= jitter < self.a:
            raise ConfigurationError("jitter must lie in [0, a)")
        return self.a * value + self.b + jitter


class RankingTtp:
    """Blind coordinator: sorts blinded values and answers rank queries."""

    def __init__(self, ttp_id: str, ctx: SmcContext, expected: int) -> None:
        self.ttp_id = ttp_id
        self.ctx = ctx
        self.expected = expected
        self._blinded: dict[str, int] = {}
        self._requests: list[str] = []

    def handle(self, msg: Message, transport) -> None:
        if msg.kind != "rank.blinded":
            raise ProtocolAbortError(f"TTP got unexpected {msg.kind!r}")
        self._blinded[msg.src] = msg.payload["w"]
        self._requests.append(msg.src)
        if len(self._blinded) < self.expected:
            return
        # Sort ascending; ties broken by party id for determinism.
        ordering = sorted(self._blinded.items(), key=lambda kv: (kv[1], kv[0]))
        ranks = {pid: rank for rank, (pid, _w) in enumerate(ordering, start=1)}
        argmin = ordering[0][0]
        argmax = ordering[-1][0]
        self.ctx.leakage.record(
            PROTOCOL, self.ttp_id, "order_statistics",
            f"TTP learns the full blinded ordering of {self.expected} parties",
        )
        self.ctx.leakage.record(
            PROTOCOL, self.ttp_id, "scaled_gap",
            "TTP sees pairwise differences scaled by the secret slope a",
        )
        for pid in self._blinded:
            transport.send(
                Message(
                    src=self.ttp_id,
                    dst=pid,
                    kind="rank.verdict",
                    payload={
                        "rank": ranks[pid],
                        "argmax": argmax,
                        "argmin": argmin,
                        "n": self.expected,
                    },
                )
            )


class RankingParty:
    """One secret-holder in the ranking protocol."""

    def __init__(
        self,
        party_id: str,
        value: int,
        ctx: SmcContext,
        blinding: MonotoneBlinding,
        ttp_id: str,
        rank_only_noise: bool = False,
    ) -> None:
        self.party_id = party_id
        self.value = value
        self.ctx = ctx
        self.blinding = blinding
        self.ttp_id = ttp_id
        jitter = 0
        if rank_only_noise:
            jitter = ctx.party_rng(party_id).randbelow(blinding.a)
        self._jitter = jitter
        self.verdict: dict | None = None

    def start(self, transport) -> None:
        with self.ctx.node_span(
            self.party_id, "node.rank.blind", {"node": self.party_id}
        ):
            transport.send(
                Message(
                    src=self.party_id,
                    dst=self.ttp_id,
                    kind="rank.blinded",
                    payload={"w": self.blinding.apply(self.value, self._jitter)},
                )
            )

    def handle(self, msg: Message, transport) -> None:
        if msg.kind != "rank.verdict":
            raise ProtocolAbortError(f"unexpected message kind {msg.kind!r}")
        self.verdict = dict(msg.payload)


def secure_ranking(
    ctx: SmcContext,
    values: dict[str, int],
    value_bound: int | None = None,
    ttp_id: str = "ttp",
    net: SimNetwork | None = None,
    rank_only_noise: bool = False,
    group_label: str = "rank-0",
    deadline: Deadline | None = None,
) -> SmcResult:
    """Run Maxₛ / Minₛ / Rankₛ in one round through a blind TTP.

    Every party learns ``argmax``, ``argmin`` and *its own* rank (1-based,
    ascending).  Per-party results differ only in the ``rank`` field.

    ``rank_only_noise`` adds sub-slope jitter so the TTP's scaled-gap
    leakage is perturbed; ordering of *distinct* values is unaffected, but
    equal values may order arbitrarily (they already tie-break by id).

    On a resilient network an unreachable TTP fails over to a standby id,
    and an unreachable party is excluded: survivors learn ranks over the
    reduced group, the result is ``degraded=True`` and names the skipped
    party — never a silent ranking that pretends everyone participated.
    """
    if len(values) < 2:
        raise ConfigurationError("ranking needs at least two parties")
    if any(v < 0 for v in values.values()):
        raise ConfigurationError("ranking takes non-negative integers")
    bound = value_bound if value_bound is not None else max(values.values())
    blinding = MonotoneBlinding.agree(ctx, group_label, bound)
    net = net or SimNetwork(tracer=ctx.tracer)

    with protocol_span(
        ctx,
        net,
        "smc.ranking",
        {"parties": len(values), "rank_only_noise": rank_only_noise},
    ):
        def build(alive: list[str], ttp_node_id: str) -> dict[str, RankingParty]:
            ttp = RankingTtp(ttp_node_id, ctx, expected=len(alive))
            net.register(ttp_node_id, ttp.handle)
            parties = {
                pid: RankingParty(
                    pid, values[pid], ctx, blinding, ttp_node_id, rank_only_noise
                )
                for pid in alive
            }
            for pid, party in parties.items():
                net.register(pid, party.handle)
            return parties

        if net.reliable:
            box: dict[str, RankingParty] = {}

            def launch(alive: list[str], avoid: frozenset):
                box.clear()
                box.update(build(alive, standby_id(ttp_id, avoid)))
                for party in box.values():
                    party.start(net)

                def collect():
                    if any(p.verdict is None for p in box.values()):
                        return None
                    return {pid: p.verdict for pid, p in box.items()}

                return collect

            outcome = supervise_ring(
                net, PROTOCOL, sorted(values), launch,
                min_parties=2, deadline=deadline, ledger=ctx.leakage,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset(outcome.values),
                values=outcome.values,
                rounds=2,
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )
        parties = build(sorted(values), ttp_id)
        for party in parties.values():
            party.start(net)
        net.run(deadline=deadline)

    out = {}
    for pid, party in parties.items():
        if party.verdict is None:
            raise ProtocolAbortError(f"party {pid} never received its rank")
        out[pid] = party.verdict
    return SmcResult(
        protocol=PROTOCOL, observers=frozenset(values), values=out, rounds=2
    )


async def secure_ranking_async(
    ctx: SmcContext,
    values: dict[str, int],
    value_bound: int | None = None,
    ttp_id: str = "ttp",
    net=None,
    rank_only_noise: bool = False,
    group_label: str = "rank-0",
    deadline: Deadline | None = None,
) -> SmcResult:
    """Coroutine twin of :func:`secure_ranking` (same blinding and spans)."""
    if len(values) < 2:
        raise ConfigurationError("ranking needs at least two parties")
    if any(v < 0 for v in values.values()):
        raise ConfigurationError("ranking takes non-negative integers")
    bound = value_bound if value_bound is not None else max(values.values())
    blinding = MonotoneBlinding.agree(ctx, group_label, bound)
    if net is None:
        from repro.aio.simnet import AsyncSimNetwork

        net = AsyncSimNetwork(tracer=ctx.tracer)

    with protocol_span(
        ctx,
        net,
        "smc.ranking",
        {"parties": len(values), "rank_only_noise": rank_only_noise},
    ):
        def build(alive: list[str], ttp_node_id: str) -> dict[str, RankingParty]:
            ttp = RankingTtp(ttp_node_id, ctx, expected=len(alive))
            net.register(ttp_node_id, ttp.handle)
            parties = {
                pid: RankingParty(
                    pid, values[pid], ctx, blinding, ttp_node_id, rank_only_noise
                )
                for pid in alive
            }
            for pid, party in parties.items():
                net.register(pid, party.handle)
            return parties

        if net.reliable:
            box: dict[str, RankingParty] = {}

            def launch(alive: list[str], avoid: frozenset):
                box.clear()
                box.update(build(alive, standby_id(ttp_id, avoid)))
                for party in box.values():
                    party.start(net)

                def collect():
                    if any(p.verdict is None for p in box.values()):
                        return None
                    return {pid: p.verdict for pid, p in box.items()}

                return collect

            outcome = await supervise_ring_async(
                net, PROTOCOL, sorted(values), launch,
                min_parties=2, deadline=deadline, ledger=ctx.leakage,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset(outcome.values),
                values=outcome.values,
                rounds=2,
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )
        parties = build(sorted(values), ttp_id)
        for party in parties.values():
            party.start(net)
        await net.drain(deadline=deadline)

    out = {}
    for pid, party in parties.items():
        if party.verdict is None:
            raise ProtocolAbortError(f"party {pid} never received its rank")
        out[pid] = party.verdict
    return SmcResult(
        protocol=PROTOCOL, observers=frozenset(values), values=out, rounds=2
    )
