"""Leakage ledger: makes "relaxed" disclosure explicit and testable.

Definition 1 of the paper *permits* disclosure of secondary information
about private inputs (set sizes, counts, blinded gaps) while forbidding
disclosure of the data itself.  Classical MPC papers prove zero leakage;
a relaxed protocol must instead *state* its leakage.  Every protocol in
:mod:`repro.smc` writes each secondary disclosure into a
:class:`LeakageLedger`, and the test suite asserts both directions:

* everything the protocol reveals is recorded (no silent leaks), and
* nothing recorded is a *primary* secret (the ledger refuses entries
  flagged as primary).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SmcError

__all__ = ["LeakageEvent", "LeakageLedger"]


@dataclass(frozen=True)
class LeakageEvent:
    """One secondary disclosure.

    Attributes
    ----------
    protocol:
        Name of the protocol leaking (``"secure_set_intersection"``...).
    observer:
        Who learns the information (node id, or ``"*"`` for all parties).
    category:
        Machine-readable kind: ``"set_size"``, ``"position_linkage"``,
        ``"scaled_gap"``, ``"result_cardinality"``, ``"order_statistics"``.
    detail:
        Human-readable description of exactly what leaks.
    """

    protocol: str
    observer: str
    category: str
    detail: str


_PRIMARY_CATEGORIES = frozenset({"plaintext", "raw_value", "private_set_element"})


class LeakageLedger:
    """Append-only record of secondary disclosures in a protocol run.

    When constructed with a tracer, every recorded disclosure is also
    emitted as a ``"leakage"`` span event on whatever span is open — so a
    trace carries the full disclosure story inline with the cost story.
    """

    def __init__(self, tracer=None) -> None:
        self._events: list[LeakageEvent] = []
        self._tracer = tracer

    def record(self, protocol: str, observer: str, category: str, detail: str) -> None:
        """Record one disclosure.

        Raises
        ------
        SmcError
            If the category denotes primary data — a relaxed protocol must
            never disclose primary secrets, so attempting to log one is a
            protocol bug surfaced immediately.
        """
        if category in _PRIMARY_CATEGORIES:
            raise SmcError(
                f"protocol {protocol!r} attempted to disclose primary data "
                f"({category}) to {observer!r}"
            )
        self._events.append(LeakageEvent(protocol, observer, category, detail))
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.add_event(
                "leakage",
                {
                    "protocol": protocol,
                    "observer": observer,
                    "category": category,
                    "detail": detail,
                },
            )

    @property
    def events(self) -> list[LeakageEvent]:
        return list(self._events)

    def categories(self) -> set[str]:
        return {e.category for e in self._events}

    def by_observer(self, observer: str) -> list[LeakageEvent]:
        return [e for e in self._events if e.observer in (observer, "*")]

    def count(self, category: str | None = None) -> int:
        if category is None:
            return len(self._events)
        return sum(1 for e in self._events if e.category == category)

    def clear(self) -> None:
        self._events.clear()
