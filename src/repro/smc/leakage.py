"""Leakage ledger: makes "relaxed" disclosure explicit and testable.

Definition 1 of the paper *permits* disclosure of secondary information
about private inputs (set sizes, counts, blinded gaps) while forbidding
disclosure of the data itself.  Classical MPC papers prove zero leakage;
a relaxed protocol must instead *state* its leakage.  Every protocol in
:mod:`repro.smc` writes each secondary disclosure into a
:class:`LeakageLedger`, and the test suite asserts both directions:

* everything the protocol reveals is recorded (no silent leaks), and
* nothing recorded is a *primary* secret (the ledger refuses entries
  flagged as primary).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable

from repro.errors import SmcError

__all__ = ["LeakageEvent", "LeakageLedger"]


@dataclass(frozen=True)
class LeakageEvent:
    """One secondary disclosure.

    Attributes
    ----------
    protocol:
        Name of the protocol leaking (``"secure_set_intersection"``...).
    observer:
        Who learns the information (node id, or ``"*"`` for all parties).
    category:
        Machine-readable kind: ``"set_size"``, ``"position_linkage"``,
        ``"scaled_gap"``, ``"result_cardinality"``, ``"order_statistics"``.
    detail:
        Human-readable description of exactly what leaks.
    """

    protocol: str
    observer: str
    category: str
    detail: str


_PRIMARY_CATEGORIES = frozenset({"plaintext", "raw_value", "private_set_element"})


class LeakageLedger:
    """Append-only record of secondary disclosures in a protocol run.

    When constructed with a tracer, every recorded disclosure is also
    emitted as a ``"leakage"`` span event on whatever span is open — so a
    trace carries the full disclosure story inline with the cost story.

    Ledgers are thread-safe, and crucially :meth:`extend` appends a whole
    group of events under one lock hold: the query scheduler gives each
    concurrent query a private ledger (within-query order is the
    protocol's deterministic causal order) and merges it into the
    service-wide ledger on completion, so the global ledger stays grouped
    per query instead of interleaving entries from racing queries.
    """

    def __init__(self, tracer=None) -> None:
        self._events: list[LeakageEvent] = []
        self._tracer = tracer
        self._lock = threading.Lock()

    def record(self, protocol: str, observer: str, category: str, detail: str) -> None:
        """Record one disclosure.

        Raises
        ------
        SmcError
            If the category denotes primary data — a relaxed protocol must
            never disclose primary secrets, so attempting to log one is a
            protocol bug surfaced immediately.
        """
        if category in _PRIMARY_CATEGORIES:
            raise SmcError(
                f"protocol {protocol!r} attempted to disclose primary data "
                f"({category}) to {observer!r}"
            )
        with self._lock:
            self._events.append(LeakageEvent(protocol, observer, category, detail))
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.add_event(
                "leakage",
                {
                    "protocol": protocol,
                    "observer": observer,
                    "category": category,
                    "detail": detail,
                },
            )

    def extend(self, events: Iterable[LeakageEvent]) -> None:
        """Append a group of events atomically (one lock hold).

        Used to merge a completed query's private ledger into a shared
        one: the group lands contiguous and in order, never interleaved
        with another query's merge.  Primary-category screening applies
        to every event, same as :meth:`record`.
        """
        batch = list(events)
        for event in batch:
            if event.category in _PRIMARY_CATEGORIES:
                raise SmcError(
                    f"protocol {event.protocol!r} attempted to disclose primary "
                    f"data ({event.category}) to {event.observer!r}"
                )
        with self._lock:
            self._events.extend(batch)

    @property
    def events(self) -> list[LeakageEvent]:
        with self._lock:
            return list(self._events)

    def categories(self) -> set[str]:
        return {e.category for e in self.events}

    def by_observer(self, observer: str) -> list[LeakageEvent]:
        return [e for e in self.events if e.observer in (observer, "*")]

    def count(self, category: str | None = None) -> int:
        if category is None:
            with self._lock:
                return len(self._events)
        return sum(1 for e in self.events if e.category == category)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
