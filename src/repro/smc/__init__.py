"""Relaxed secure multiparty computation (paper §3, Definition 1).

The primitive set the paper builds confidential auditing from:

* :func:`~repro.smc.intersection.secure_set_intersection` — ∩ₛ (§3.1);
* :func:`~repro.smc.equality.secure_equality` — =ₛ (§3.2), blind-TTP and
  commutative variants;
* :func:`~repro.smc.ranking.secure_ranking` — Maxₛ/Minₛ/Rankₛ (§3.3);
* :func:`~repro.smc.union_.secure_set_union` — ∪ₛ (§3.4);
* :func:`~repro.smc.sum_.secure_sum` / ``secure_weighted_sum`` — Σₛ (§3.5);
* :func:`~repro.smc.comparison.secure_compare` — <ₛ for predicates.

"Relaxed" (Definition 1) means: only selected observers learn the result,
a blind TTP may coordinate, and *secondary* information may be disclosed —
every such disclosure is recorded in the run's
:class:`~repro.smc.leakage.LeakageLedger`.

Every driver also has a ``secure_*_async`` coroutine twin (driven by
``await net.drain(...)`` on an event loop, see :mod:`repro.aio`) with
bitwise-identical results, spans, costs and leakage.
"""

from repro.smc.base import SmcContext, SmcResult
from repro.smc.comparison import (
    COMPARISON_OPERATORS,
    evaluate_operator,
    secure_compare,
    secure_compare_async,
    secure_compare_batch,
    secure_compare_batch_async,
)
from repro.smc.equality import (
    AffineBlinding,
    BlindTtp,
    EqualityParty,
    secure_equality,
    secure_equality_async,
    secure_equality_commutative,
    secure_equality_commutative_async,
)
from repro.smc.intersection import (
    IntersectionParty,
    fig4_walkthrough,
    secure_set_intersection,
    secure_set_intersection_async,
)
from repro.smc.leakage import LeakageEvent, LeakageLedger
from repro.smc.ranking import (
    MonotoneBlinding,
    RankingParty,
    RankingTtp,
    secure_ranking,
    secure_ranking_async,
)
from repro.smc.sum_ import (
    SumParty,
    secure_sum,
    secure_sum_async,
    secure_weighted_sum,
    secure_weighted_sum_async,
)
from repro.smc.union_ import UnionParty, secure_set_union, secure_set_union_async

__all__ = [
    "SmcContext",
    "SmcResult",
    "LeakageEvent",
    "LeakageLedger",
    "secure_set_intersection",
    "secure_set_intersection_async",
    "IntersectionParty",
    "fig4_walkthrough",
    "secure_set_union",
    "secure_set_union_async",
    "UnionParty",
    "secure_equality",
    "secure_equality_async",
    "secure_equality_commutative",
    "secure_equality_commutative_async",
    "AffineBlinding",
    "BlindTtp",
    "EqualityParty",
    "secure_sum",
    "secure_sum_async",
    "secure_weighted_sum",
    "secure_weighted_sum_async",
    "SumParty",
    "secure_ranking",
    "secure_ranking_async",
    "MonotoneBlinding",
    "RankingParty",
    "RankingTtp",
    "secure_compare",
    "secure_compare_async",
    "secure_compare_batch",
    "secure_compare_batch_async",
    "evaluate_operator",
    "COMPARISON_OPERATORS",
]
