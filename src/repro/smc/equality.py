"""Secure equality checking =ₛ (paper §3.2).

Two parties hold ``X_R`` and ``X_M`` privately and want to learn whether
they are equal without revealing them.  The paper gives two routes; both
are implemented:

* **Commutative route** — run the secure set intersection with singleton
  sets; equal iff the intersection is non-empty.  No TTP needed.
* **Randomized-mapping route** — the two parties secretly agree on an
  injective map and random affine blinding ``W = (a·Y + b) mod p`` with
  ``a ≢ 0``, send their blinded values to a *blind TTP*, and the TTP
  compares ``W_R = W_M`` and returns the verdict.  The TTP never sees the
  inputs; affine blinding with secret ``(a, b)`` makes a single blinded
  value information-theoretically uniform.

The randomized-mapping route is the one the DLA query executor uses for
cross-node equality predicates: it costs O(1) messages via the coordinator
instead of a ring circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, ProtocolAbortError
from repro.net.message import Message
from repro.net.simnet import SimNetwork
from repro.resilience import Deadline, standby_id, supervise_ring, supervise_ring_async
from repro.smc.base import SmcContext, SmcResult, protocol_span
from repro.smc.intersection import (
    secure_set_intersection,
    secure_set_intersection_async,
)

__all__ = [
    "AffineBlinding",
    "BlindTtp",
    "EqualityParty",
    "secure_equality",
    "secure_equality_async",
    "secure_equality_commutative",
    "secure_equality_commutative_async",
]

PROTOCOL = "secure_equality"


@dataclass(frozen=True)
class AffineBlinding:
    """The shared secret map ``Y -> (a·Y + b) mod p``.

    ``a`` must be non-zero mod ``p``; both parties derive the same
    instance out-of-band (in the protocols here, from the pairwise secret
    channel the paper's model assumes).
    """

    a: int
    b: int
    p: int

    def __post_init__(self) -> None:
        if self.a % self.p == 0:
            raise ConfigurationError("blinding slope a must be non-zero mod p")

    @classmethod
    def agree(cls, ctx: SmcContext, pair_label: str) -> "AffineBlinding":
        """Deterministically derive a pair-secret blinding from the context.

        Models the out-of-band agreement; both parties call with the same
        label (e.g. ``"P1|P2|query-17"``) and obtain the same map.  With a
        precompute manager attached, the pair comes from the shared
        blinding pool (the "agreement" is the draw itself); the fallback
        derivation is unchanged.
        """
        p = ctx.prime
        if ctx.precompute is not None:
            a, b = ctx.precompute.affine_pair(
                p, ctx.rng, pair_label, ops=ctx.crypto_ops
            )
            return cls(a=a, b=b, p=p)
        rng = ctx.rng.spawn(f"blinding:{pair_label}")
        return cls(a=rng.randrange(1, p), b=rng.randbelow(p), p=p)

    def apply(self, value: int) -> int:
        return (self.a * value + self.b) % self.p


class BlindTtp:
    """The blind coordinator: compares blinded values, learns nothing else.

    One TTP instance can serve many comparison sessions concurrently;
    sessions are keyed by ``session`` in the payload.
    """

    def __init__(self, ttp_id: str, ctx: SmcContext) -> None:
        self.ttp_id = ttp_id
        self.ctx = ctx
        self._pending: dict[str, dict] = {}

    def handle(self, msg: Message, transport) -> None:
        if msg.kind != "seq.blinded":
            raise ProtocolAbortError(f"TTP got unexpected {msg.kind!r}")
        session = msg.payload["session"]
        entry = self._pending.setdefault(
            session, {"values": {}, "reply_to": msg.payload["reply_to"]}
        )
        entry["values"][msg.src] = msg.payload["w"]
        if len(entry["values"]) < 2:
            return
        (w1, w2) = entry["values"].values()
        equal = w1 == w2
        self.ctx.leakage.record(
            PROTOCOL, self.ttp_id, "equality_verdict",
            f"TTP learns whether the two blinded values match (session {session})",
        )
        for dst in entry["reply_to"]:
            transport.send(
                Message(
                    src=self.ttp_id,
                    dst=dst,
                    kind="seq.verdict",
                    payload={"session": session, "equal": equal},
                )
            )
        del self._pending[session]


class EqualityParty:
    """One of the two comparing parties in the randomized-mapping route."""

    def __init__(
        self,
        party_id: str,
        value,
        ctx: SmcContext,
        blinding: AffineBlinding,
        ttp_id: str,
        session: str,
        reply_to: list[str],
    ) -> None:
        self.party_id = party_id
        self.ctx = ctx
        self.blinding = blinding
        self.ttp_id = ttp_id
        self.session = session
        self.reply_to = reply_to
        # The "random mapping table" of the paper: any injective map into
        # Z_p.  Hash-encoding is injective w.h.p. and needs no shared table.
        self.mapped = ctx.encoder.encode_hashed(value)
        self.verdict: bool | None = None

    def start(self, transport) -> None:
        with self.ctx.node_span(
            self.party_id, "node.seq.blind", {"node": self.party_id}
        ):
            transport.send(
                Message(
                    src=self.party_id,
                    dst=self.ttp_id,
                    kind="seq.blinded",
                    payload={
                        "session": self.session,
                        "w": self.blinding.apply(self.mapped),
                        "reply_to": self.reply_to,
                    },
                )
            )

    def handle(self, msg: Message, transport) -> None:
        if msg.kind != "seq.verdict":
            raise ProtocolAbortError(f"unexpected message kind {msg.kind!r}")
        self.verdict = bool(msg.payload["equal"])


def secure_equality(
    ctx: SmcContext,
    left: tuple[str, object],
    right: tuple[str, object],
    ttp_id: str = "ttp",
    net: SimNetwork | None = None,
    session: str = "eq-0",
    deadline: Deadline | None = None,
) -> SmcResult:
    """Randomized-mapping equality between two (party, value) pairs.

    Both parties learn the verdict; the TTP learns only the verdict.  On a
    resilient network an unreachable TTP fails over to a standby id
    (``"ttp~1"``, ...); the two input parties are essential, so a dead
    party aborts with a typed :class:`~repro.errors.RingFailoverError`
    rather than a silent partial answer.
    """
    (lid, lval), (rid, rval) = left, right
    if lid == rid:
        raise ConfigurationError("equality requires two distinct parties")
    net = net or SimNetwork(tracer=ctx.tracer)
    with protocol_span(
        ctx,
        net,
        "smc.equality",
        {"route": "blind_ttp", "session": session},
    ):
        blinding = AffineBlinding.agree(
            ctx, f"{min(lid, rid)}|{max(lid, rid)}|{session}"
        )
        reply_to = [lid, rid]

        def build(ttp_node_id: str) -> dict[str, EqualityParty]:
            ttp = BlindTtp(ttp_node_id, ctx)
            parties = {
                lid: EqualityParty(
                    lid, lval, ctx, blinding, ttp_node_id, session, reply_to
                ),
                rid: EqualityParty(
                    rid, rval, ctx, blinding, ttp_node_id, session, reply_to
                ),
            }
            net.register(ttp_node_id, ttp.handle)
            for pid, party in parties.items():
                net.register(pid, party.handle)
            return parties

        if net.reliable:
            box: dict[str, EqualityParty] = {}

            def launch(alive: list[str], avoid: frozenset):
                box.clear()
                box.update(build(standby_id(ttp_id, avoid)))
                for party in box.values():
                    party.start(net)

                def collect():
                    if any(p.verdict is None for p in box.values()):
                        return None
                    return {pid: p.verdict for pid, p in box.items()}

                return collect

            outcome = supervise_ring(
                net, PROTOCOL, [lid, rid], launch,
                essential=[lid, rid], min_parties=2,
                deadline=deadline, ledger=ctx.leakage,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset([lid, rid]),
                values=outcome.values,
                rounds=2,
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )

        parties = build(ttp_id)
        for party in parties.values():
            party.start(net)
        net.run(deadline=deadline)

    values = {}
    for pid, party in parties.items():
        if party.verdict is None:
            raise ProtocolAbortError(f"party {pid} never received the verdict")
        values[pid] = party.verdict
    return SmcResult(
        protocol=PROTOCOL, observers=frozenset([lid, rid]), values=values, rounds=2
    )


async def secure_equality_async(
    ctx: SmcContext,
    left: tuple[str, object],
    right: tuple[str, object],
    ttp_id: str = "ttp",
    net=None,
    session: str = "eq-0",
    deadline: Deadline | None = None,
) -> SmcResult:
    """Coroutine twin of :func:`secure_equality` (same blinding and spans)."""
    (lid, lval), (rid, rval) = left, right
    if lid == rid:
        raise ConfigurationError("equality requires two distinct parties")
    if net is None:
        from repro.aio.simnet import AsyncSimNetwork

        net = AsyncSimNetwork(tracer=ctx.tracer)
    with protocol_span(
        ctx,
        net,
        "smc.equality",
        {"route": "blind_ttp", "session": session},
    ):
        blinding = AffineBlinding.agree(
            ctx, f"{min(lid, rid)}|{max(lid, rid)}|{session}"
        )
        reply_to = [lid, rid]

        def build(ttp_node_id: str) -> dict[str, EqualityParty]:
            ttp = BlindTtp(ttp_node_id, ctx)
            parties = {
                lid: EqualityParty(
                    lid, lval, ctx, blinding, ttp_node_id, session, reply_to
                ),
                rid: EqualityParty(
                    rid, rval, ctx, blinding, ttp_node_id, session, reply_to
                ),
            }
            net.register(ttp_node_id, ttp.handle)
            for pid, party in parties.items():
                net.register(pid, party.handle)
            return parties

        if net.reliable:
            box: dict[str, EqualityParty] = {}

            def launch(alive: list[str], avoid: frozenset):
                box.clear()
                box.update(build(standby_id(ttp_id, avoid)))
                for party in box.values():
                    party.start(net)

                def collect():
                    if any(p.verdict is None for p in box.values()):
                        return None
                    return {pid: p.verdict for pid, p in box.items()}

                return collect

            outcome = await supervise_ring_async(
                net, PROTOCOL, [lid, rid], launch,
                essential=[lid, rid], min_parties=2,
                deadline=deadline, ledger=ctx.leakage,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset([lid, rid]),
                values=outcome.values,
                rounds=2,
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )

        parties = build(ttp_id)
        for party in parties.values():
            party.start(net)
        await net.drain(deadline=deadline)

    values = {}
    for pid, party in parties.items():
        if party.verdict is None:
            raise ProtocolAbortError(f"party {pid} never received the verdict")
        values[pid] = party.verdict
    return SmcResult(
        protocol=PROTOCOL, observers=frozenset([lid, rid]), values=values, rounds=2
    )


def secure_equality_commutative(
    ctx: SmcContext,
    left: tuple[str, object],
    right: tuple[str, object],
    net: SimNetwork | None = None,
    coalesce: bool = False,
) -> SmcResult:
    """Equality via singleton secure set intersection (no TTP).

    "When the set size of S_i = 1, the secure set intersection could be
    used for secure equality comparison."  ``coalesce`` selects the
    intersection's convoy relay mode (fewer frames, serialized hops).
    """
    (lid, lval), (rid, rval) = left, right
    with ctx.tracer.span("smc.equality", {"route": "commutative"}):
        result = secure_set_intersection(
            ctx, {lid: [lval], rid: [rval]}, net=net, shuffle=False, coalesce=coalesce
        )
    equal = len(result.any_value) == 1
    return SmcResult(
        protocol=PROTOCOL,
        observers=result.observers,
        values={obs: equal for obs in result.observers},
        rounds=result.rounds,
    )


async def secure_equality_commutative_async(
    ctx: SmcContext,
    left: tuple[str, object],
    right: tuple[str, object],
    net=None,
    coalesce: bool = False,
) -> SmcResult:
    """Coroutine twin of :func:`secure_equality_commutative`."""
    (lid, lval), (rid, rval) = left, right
    with ctx.tracer.span("smc.equality", {"route": "commutative"}):
        result = await secure_set_intersection_async(
            ctx, {lid: [lval], rid: [rval]}, net=net, shuffle=False, coalesce=coalesce
        )
    equal = len(result.any_value) == 1
    return SmcResult(
        protocol=PROTOCOL,
        observers=result.observers,
        values={obs: equal for obs in result.observers},
        rounds=result.rounds,
    )
