"""Secure comparison <ₛ between two private values (paper §2, §3).

The auditing predicates need ``<, >, =, ≤, ≥, ≠`` across DLA nodes.
Equality has its own protocol (:mod:`repro.smc.equality`); the ordered
comparisons reduce to the two-party case of the blind-TTP monotone-map
construction of §3.3: both parties blind with the shared secret strictly
increasing map, the TTP compares the blinded values and returns one of
``lt / eq / gt``.

:func:`secure_compare` wraps the exchange; :func:`evaluate_operator` maps
the paper's six comparison operators onto the trichotomy verdict.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, ProtocolAbortError, SmcError
from repro.net.message import Message
from repro.net.simnet import SimNetwork
from repro.resilience import Deadline, standby_id, supervise_ring, supervise_ring_async
from repro.smc.base import SmcContext, SmcResult, protocol_span
from repro.smc.ranking import MonotoneBlinding

__all__ = [
    "secure_compare",
    "secure_compare_async",
    "secure_compare_batch",
    "secure_compare_batch_async",
    "evaluate_operator",
    "COMPARISON_OPERATORS",
]

PROTOCOL = "secure_compare"

COMPARISON_OPERATORS = ("<", ">", "=", "!=", "<=", ">=")


class _CompareTtp:
    """Blind TTP comparing exactly two blinded values per session."""

    def __init__(self, ttp_id: str, ctx: SmcContext) -> None:
        self.ttp_id = ttp_id
        self.ctx = ctx
        self._pending: dict[str, dict] = {}

    def handle(self, msg: Message, transport) -> None:
        if msg.kind != "scmp.blinded":
            raise ProtocolAbortError(f"TTP got unexpected {msg.kind!r}")
        session = msg.payload["session"]
        entry = self._pending.setdefault(
            session, {"values": {}, "left": msg.payload["left"]}
        )
        entry["values"][msg.src] = msg.payload["w"]
        if len(entry["values"]) < 2:
            return
        left = entry["left"]
        w_left = entry["values"][left]
        w_right = next(w for pid, w in entry["values"].items() if pid != left)
        if w_left < w_right:
            verdict = "lt"
        elif w_left > w_right:
            verdict = "gt"
        else:
            verdict = "eq"
        self.ctx.leakage.record(
            PROTOCOL, self.ttp_id, "order_statistics",
            f"TTP learns the order of two blinded values (session {session})",
        )
        for pid in entry["values"]:
            transport.send(
                Message(
                    src=self.ttp_id,
                    dst=pid,
                    kind="scmp.verdict",
                    payload={"session": session, "verdict": verdict},
                )
            )
        del self._pending[session]


class _CompareParty:
    def __init__(
        self,
        party_id: str,
        value: int,
        ctx: SmcContext,
        blinding: MonotoneBlinding,
        ttp_id: str,
        session: str,
        left_id: str,
    ) -> None:
        self.party_id = party_id
        self.value = value
        self.ctx = ctx
        self.blinding = blinding
        self.ttp_id = ttp_id
        self.session = session
        self.left_id = left_id
        self.verdict: str | None = None

    def start(self, transport) -> None:
        with self.ctx.node_span(
            self.party_id, "node.scmp.blind", {"node": self.party_id}
        ):
            transport.send(
                Message(
                    src=self.party_id,
                    dst=self.ttp_id,
                    kind="scmp.blinded",
                    payload={
                        "session": self.session,
                        "w": self.blinding.apply(self.value),
                        "left": self.left_id,
                    },
                )
            )

    def handle(self, msg: Message, transport) -> None:
        if msg.kind != "scmp.verdict":
            raise ProtocolAbortError(f"unexpected message kind {msg.kind!r}")
        self.verdict = msg.payload["verdict"]


def _supervise_ttp_pair(
    ctx: SmcContext,
    net: SimNetwork,
    lid: str,
    rid: str,
    ttp_id: str,
    build,
    result_of,
    deadline: Deadline | None,
):
    """Failover supervision for a two-party blind-TTP exchange.

    ``build(ttp_node_id)`` registers the TTP + both parties and returns
    the party map; ``result_of(party)`` extracts a party's verdict (or
    ``None`` while missing).  An unreachable TTP fails over to a standby
    id (:func:`~repro.resilience.standby_id`); the two input parties are
    essential, so a dead one raises a typed
    :class:`~repro.errors.RingFailoverError`.
    """
    box: dict = {}

    def launch(alive: list[str], avoid: frozenset):
        box.clear()
        box.update(build(standby_id(ttp_id, avoid)))
        for party in box.values():
            party.start(net)

        def collect():
            if any(result_of(p) is None for p in box.values()):
                return None
            return {pid: result_of(p) for pid, p in box.items()}

        return collect

    return supervise_ring(
        net, PROTOCOL, [lid, rid], launch,
        essential=[lid, rid], min_parties=2,
        deadline=deadline, ledger=ctx.leakage,
    )


async def _supervise_ttp_pair_async(
    ctx: SmcContext,
    net,
    lid: str,
    rid: str,
    ttp_id: str,
    build,
    result_of,
    deadline: Deadline | None,
):
    """Coroutine twin of :func:`_supervise_ttp_pair` (same launch closure)."""
    box: dict = {}

    def launch(alive: list[str], avoid: frozenset):
        box.clear()
        box.update(build(standby_id(ttp_id, avoid)))
        for party in box.values():
            party.start(net)

        def collect():
            if any(result_of(p) is None for p in box.values()):
                return None
            return {pid: result_of(p) for pid, p in box.items()}

        return collect

    return await supervise_ring_async(
        net, PROTOCOL, [lid, rid], launch,
        essential=[lid, rid], min_parties=2,
        deadline=deadline, ledger=ctx.leakage,
    )


def secure_compare(
    ctx: SmcContext,
    left: tuple[str, int],
    right: tuple[str, int],
    value_bound: int | None = None,
    ttp_id: str = "ttp",
    net: SimNetwork | None = None,
    session: str = "cmp-0",
    deadline: Deadline | None = None,
) -> SmcResult:
    """Blind-TTP trichotomy comparison of two private non-negative ints.

    Returns an :class:`SmcResult` whose per-observer value is one of
    ``"lt" | "eq" | "gt"`` describing ``left ? right``.  On a resilient
    network an unreachable TTP fails over to a standby id; the two input
    parties are essential (a dead one raises
    :class:`~repro.errors.RingFailoverError`).
    """
    (lid, lval), (rid, rval) = left, right
    if lid == rid:
        raise ConfigurationError("comparison requires two distinct parties")
    if lval < 0 or rval < 0:
        raise ConfigurationError("comparison takes non-negative integers")
    bound = value_bound if value_bound is not None else max(lval, rval)
    blinding = MonotoneBlinding.agree(
        ctx, f"{min(lid, rid)}|{max(lid, rid)}|{session}", bound
    )
    net = net or SimNetwork(tracer=ctx.tracer)
    with protocol_span(
        ctx, net, "smc.compare", {"session": session, "batch": 1}
    ):
        def build(ttp_node_id: str) -> dict[str, _CompareParty]:
            ttp = _CompareTtp(ttp_node_id, ctx)
            net.register(ttp_node_id, ttp.handle)
            parties = {
                lid: _CompareParty(lid, lval, ctx, blinding, ttp_node_id, session, lid),
                rid: _CompareParty(rid, rval, ctx, blinding, ttp_node_id, session, lid),
            }
            for pid, party in parties.items():
                net.register(pid, party.handle)
            return parties

        if net.reliable:
            outcome = _supervise_ttp_pair(
                ctx, net, lid, rid, ttp_id, build,
                lambda party: party.verdict, deadline,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset([lid, rid]),
                values=outcome.values,
                rounds=2,
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )
        parties = build(ttp_id)
        for party in parties.values():
            party.start(net)
        net.run(deadline=deadline)

    values = {}
    for pid, party in parties.items():
        if party.verdict is None:
            raise ProtocolAbortError(f"party {pid} never received the verdict")
        values[pid] = party.verdict
    return SmcResult(
        protocol=PROTOCOL, observers=frozenset([lid, rid]), values=values, rounds=2
    )


async def secure_compare_async(
    ctx: SmcContext,
    left: tuple[str, int],
    right: tuple[str, int],
    value_bound: int | None = None,
    ttp_id: str = "ttp",
    net=None,
    session: str = "cmp-0",
    deadline: Deadline | None = None,
) -> SmcResult:
    """Coroutine twin of :func:`secure_compare` (same blinding and spans)."""
    (lid, lval), (rid, rval) = left, right
    if lid == rid:
        raise ConfigurationError("comparison requires two distinct parties")
    if lval < 0 or rval < 0:
        raise ConfigurationError("comparison takes non-negative integers")
    bound = value_bound if value_bound is not None else max(lval, rval)
    blinding = MonotoneBlinding.agree(
        ctx, f"{min(lid, rid)}|{max(lid, rid)}|{session}", bound
    )
    if net is None:
        from repro.aio.simnet import AsyncSimNetwork

        net = AsyncSimNetwork(tracer=ctx.tracer)
    with protocol_span(
        ctx, net, "smc.compare", {"session": session, "batch": 1}
    ):
        def build(ttp_node_id: str) -> dict[str, _CompareParty]:
            ttp = _CompareTtp(ttp_node_id, ctx)
            net.register(ttp_node_id, ttp.handle)
            parties = {
                lid: _CompareParty(lid, lval, ctx, blinding, ttp_node_id, session, lid),
                rid: _CompareParty(rid, rval, ctx, blinding, ttp_node_id, session, lid),
            }
            for pid, party in parties.items():
                net.register(pid, party.handle)
            return parties

        if net.reliable:
            outcome = await _supervise_ttp_pair_async(
                ctx, net, lid, rid, ttp_id, build,
                lambda party: party.verdict, deadline,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset([lid, rid]),
                values=outcome.values,
                rounds=2,
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )
        parties = build(ttp_id)
        for party in parties.values():
            party.start(net)
        await net.drain(deadline=deadline)

    values = {}
    for pid, party in parties.items():
        if party.verdict is None:
            raise ProtocolAbortError(f"party {pid} never received the verdict")
        values[pid] = party.verdict
    return SmcResult(
        protocol=PROTOCOL, observers=frozenset([lid, rid]), values=values, rounds=2
    )


class _BatchCompareTtp:
    """Blind TTP comparing aligned vectors of blinded values."""

    def __init__(self, ttp_id: str, ctx: SmcContext) -> None:
        self.ttp_id = ttp_id
        self.ctx = ctx
        self._pending: dict[str, dict] = {}

    def handle(self, msg: Message, transport) -> None:
        if msg.kind != "scmpb.blinded":
            raise ProtocolAbortError(f"TTP got unexpected {msg.kind!r}")
        session = msg.payload["session"]
        entry = self._pending.setdefault(
            session, {"vectors": {}, "left": msg.payload["left"]}
        )
        entry["vectors"][msg.src] = msg.payload["ws"]
        if len(entry["vectors"]) < 2:
            return
        left = entry["left"]
        left_vec = entry["vectors"][left]
        right_vec = next(v for pid, v in entry["vectors"].items() if pid != left)
        if len(left_vec) != len(right_vec):
            raise ProtocolAbortError(
                "batch comparison vectors have mismatched lengths"
            )
        verdicts = [
            "lt" if a < b else ("gt" if a > b else "eq")
            for a, b in zip(left_vec, right_vec)
        ]
        self.ctx.leakage.record(
            PROTOCOL, self.ttp_id, "order_statistics",
            f"TTP learns {len(verdicts)} pairwise blinded orderings "
            f"(session {session})",
        )
        for pid in entry["vectors"]:
            transport.send(
                Message(
                    src=self.ttp_id,
                    dst=pid,
                    kind="scmpb.verdict",
                    payload={"session": session, "verdicts": verdicts},
                )
            )
        del self._pending[session]


class _BatchCompareParty:
    def __init__(
        self,
        party_id: str,
        values: list[int],
        ctx: SmcContext,
        blinding: MonotoneBlinding,
        ttp_id: str,
        session: str,
        left_id: str,
    ) -> None:
        self.party_id = party_id
        self.values = values
        self.ctx = ctx
        self.blinding = blinding
        self.ttp_id = ttp_id
        self.session = session
        self.left_id = left_id
        self.verdicts: list[str] | None = None

    def start(self, transport) -> None:
        with self.ctx.node_span(
            self.party_id, "node.scmpb.blind", {"node": self.party_id}
        ):
            transport.send(
                Message(
                    src=self.party_id,
                    dst=self.ttp_id,
                    kind="scmpb.blinded",
                    payload={
                        "session": self.session,
                        "ws": [self.blinding.apply(v) for v in self.values],
                        "left": self.left_id,
                    },
                )
            )

    def handle(self, msg: Message, transport) -> None:
        if msg.kind != "scmpb.verdict":
            raise ProtocolAbortError(f"unexpected message kind {msg.kind!r}")
        self.verdicts = list(msg.payload["verdicts"])


def secure_compare_batch(
    ctx: SmcContext,
    left: tuple[str, list[int]],
    right: tuple[str, list[int]],
    value_bound: int | None = None,
    ttp_id: str = "ttp",
    net: SimNetwork | None = None,
    session: str = "cmpb-0",
    deadline: Deadline | None = None,
) -> SmcResult:
    """Compare aligned vectors of private values in ONE round trip each.

    The auditing executor's cross-order predicates compare one value pair
    per common glsn; running :func:`secure_compare` per glsn costs 4
    messages each.  Batching sends all blinded values in a single message
    per party (2 submissions + 2 verdict deliveries total), at identical
    leakage per comparison.  Returns a verdict list aligned with the
    inputs.
    """
    (lid, lvals), (rid, rvals) = left, right
    if lid == rid:
        raise ConfigurationError("comparison requires two distinct parties")
    if len(lvals) != len(rvals):
        raise ConfigurationError("batch comparison needs aligned vectors")
    if any(v < 0 for v in lvals) or any(v < 0 for v in rvals):
        raise ConfigurationError("comparison takes non-negative integers")
    if not lvals:
        return SmcResult(
            protocol=PROTOCOL, observers=frozenset([lid, rid]),
            values={lid: [], rid: []}, rounds=0,
        )
    bound = value_bound if value_bound is not None else max(max(lvals), max(rvals))
    blinding = MonotoneBlinding.agree(
        ctx, f"{min(lid, rid)}|{max(lid, rid)}|{session}", bound
    )
    net = net or SimNetwork(tracer=ctx.tracer)
    with protocol_span(
        ctx, net, "smc.compare", {"session": session, "batch": len(lvals)}
    ):
        def build(ttp_node_id: str) -> dict[str, _BatchCompareParty]:
            ttp = _BatchCompareTtp(ttp_node_id, ctx)
            net.register(ttp_node_id, ttp.handle)
            parties = {
                lid: _BatchCompareParty(
                    lid, lvals, ctx, blinding, ttp_node_id, session, lid
                ),
                rid: _BatchCompareParty(
                    rid, rvals, ctx, blinding, ttp_node_id, session, lid
                ),
            }
            for pid, party in parties.items():
                net.register(pid, party.handle)
            return parties

        if net.reliable:
            outcome = _supervise_ttp_pair(
                ctx, net, lid, rid, ttp_id, build,
                lambda party: party.verdicts, deadline,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset([lid, rid]),
                values=outcome.values,
                rounds=2,
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )
        parties = build(ttp_id)
        for party in parties.values():
            party.start(net)
        net.run(deadline=deadline)

    values = {}
    for pid, party in parties.items():
        if party.verdicts is None:
            raise ProtocolAbortError(f"party {pid} never received verdicts")
        values[pid] = party.verdicts
    return SmcResult(
        protocol=PROTOCOL, observers=frozenset([lid, rid]), values=values, rounds=2
    )


async def secure_compare_batch_async(
    ctx: SmcContext,
    left: tuple[str, list[int]],
    right: tuple[str, list[int]],
    value_bound: int | None = None,
    ttp_id: str = "ttp",
    net=None,
    session: str = "cmpb-0",
    deadline: Deadline | None = None,
) -> SmcResult:
    """Coroutine twin of :func:`secure_compare_batch`."""
    (lid, lvals), (rid, rvals) = left, right
    if lid == rid:
        raise ConfigurationError("comparison requires two distinct parties")
    if len(lvals) != len(rvals):
        raise ConfigurationError("batch comparison needs aligned vectors")
    if any(v < 0 for v in lvals) or any(v < 0 for v in rvals):
        raise ConfigurationError("comparison takes non-negative integers")
    if not lvals:
        return SmcResult(
            protocol=PROTOCOL, observers=frozenset([lid, rid]),
            values={lid: [], rid: []}, rounds=0,
        )
    bound = value_bound if value_bound is not None else max(max(lvals), max(rvals))
    blinding = MonotoneBlinding.agree(
        ctx, f"{min(lid, rid)}|{max(lid, rid)}|{session}", bound
    )
    if net is None:
        from repro.aio.simnet import AsyncSimNetwork

        net = AsyncSimNetwork(tracer=ctx.tracer)
    with protocol_span(
        ctx, net, "smc.compare", {"session": session, "batch": len(lvals)}
    ):
        def build(ttp_node_id: str) -> dict[str, _BatchCompareParty]:
            ttp = _BatchCompareTtp(ttp_node_id, ctx)
            net.register(ttp_node_id, ttp.handle)
            parties = {
                lid: _BatchCompareParty(
                    lid, lvals, ctx, blinding, ttp_node_id, session, lid
                ),
                rid: _BatchCompareParty(
                    rid, rvals, ctx, blinding, ttp_node_id, session, lid
                ),
            }
            for pid, party in parties.items():
                net.register(pid, party.handle)
            return parties

        if net.reliable:
            outcome = await _supervise_ttp_pair_async(
                ctx, net, lid, rid, ttp_id, build,
                lambda party: party.verdicts, deadline,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset([lid, rid]),
                values=outcome.values,
                rounds=2,
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )
        parties = build(ttp_id)
        for party in parties.values():
            party.start(net)
        await net.drain(deadline=deadline)

    values = {}
    for pid, party in parties.items():
        if party.verdicts is None:
            raise ProtocolAbortError(f"party {pid} never received verdicts")
        values[pid] = party.verdicts
    return SmcResult(
        protocol=PROTOCOL, observers=frozenset([lid, rid]), values=values, rounds=2
    )


def evaluate_operator(op: str, verdict: str) -> bool:
    """Map a trichotomy verdict onto one of the paper's six operators."""
    if verdict not in ("lt", "eq", "gt"):
        raise SmcError(f"unknown comparison verdict {verdict!r}")
    table = {
        "<": verdict == "lt",
        ">": verdict == "gt",
        "=": verdict == "eq",
        "!=": verdict != "eq",
        "<=": verdict in ("lt", "eq"),
        ">=": verdict in ("gt", "eq"),
    }
    if op not in table:
        raise SmcError(f"unknown comparison operator {op!r}")
    return table[op]
