"""Secure set union ∪ₛ (paper §3.4, ref [20]).

The n parties compute ``S_1 ∪ ... ∪ S_n`` such that the final output does
not reveal *which party contributed which element*.  The flow mirrors the
secure intersection: sets circulate the ring being encrypted by every key.
The collector deduplicates the fully-encrypted elements (commutativity:
equal ciphertexts <=> equal plaintexts), destroying multiplicity and
ownership, then the deduplicated list is decrypted around the ring — "by
keeping only one copy of any redundant entries ... one can recover the
plaintext of the set union by sending each of the kept (encrypted) elements
to every node for decoding."

Ownership anonymity requires relays to shuffle (otherwise block boundaries
identify the origin), so shuffling is unconditional here.  Because the
plaintext must be *recovered* (not just compared), elements are encoded
reversibly — the protocol therefore operates on non-negative integers
(< p/4), which covers the DLA use case (glsn sets, attribute codes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.pohlig_hellman import PohligHellmanCipher
from repro.errors import ConfigurationError, ProtocolAbortError, RingFailoverError
from repro.net.message import Message
from repro.net.simnet import SimNetwork
from repro.net.topology import next_on_ring
from repro.resilience import (
    Deadline,
    pick_coordinator,
    ring_avoiding,
    supervise_ring,
    supervise_ring_async,
)
from repro.smc.base import SmcContext, SmcResult, protocol_span

__all__ = ["UnionParty", "secure_set_union", "secure_set_union_async"]

PROTOCOL = "secure_set_union"


@dataclass
class _UnionState:
    full_blocks: int = 0
    pool: list[int] = field(default_factory=list)
    result: list[int] | None = None


class UnionParty:
    """One participant in the secure-union ring."""

    def __init__(
        self,
        party_id: str,
        private_set: list[int],
        ctx: SmcContext,
        parties: list[str],
        observers: list[str],
        collector: str,
        ring: list[str] | None = None,
    ) -> None:
        self.party_id = party_id
        self.ctx = ctx
        self.parties = sorted(parties)
        if ring is not None and sorted(ring) != self.parties:
            raise ConfigurationError("ring must be a permutation of the parties")
        self.ring = list(ring) if ring is not None else list(self.parties)
        self.observers = sorted(observers)
        self.collector = collector
        self._rng = ctx.party_rng(party_id)
        self.cipher = ctx.make_cipher(party_id, self._rng)
        self.encoded = sorted({ctx.encoder.encode_int(v) for v in private_set})
        self.state = _UnionState()

    def start(self, transport) -> None:
        with self.ctx.node_span(
            self.party_id, "node.ssu.encrypt", {"node": self.party_id}
        ):
            with self.ctx.tracer.span(
                "ssu.hop",
                {
                    "party": self.party_id,
                    "set_size": len(self.encoded),
                    "engine": self.ctx.engine.name,
                },
            ):
                with transport.stats.time_stage("ssu.encrypt"):
                    encrypted = self.cipher.encrypt_set(
                        self.encoded, engine=self.ctx.engine
                    )
            self.ctx.count_modexp(self.party_id, len(encrypted))
            self._rng.shuffle(encrypted)
            self._advance(transport, hops=1, elements=encrypted)

    def _advance(self, transport, hops: int, elements: list[int]) -> None:
        if hops >= len(self.parties):
            transport.send(
                Message(
                    src=self.party_id,
                    dst=self.collector,
                    kind="ssu.full",
                    payload={"elements": elements},
                )
            )
            return
        transport.send(
            Message(
                src=self.party_id,
                dst=next_on_ring(self.ring, self.party_id),
                kind="ssu.relay",
                payload={"hops": hops, "elements": elements},
            )
        )

    def handle(self, msg: Message, transport) -> None:
        if msg.kind == "ssu.relay":
            with self.ctx.tracer.span(
                "ssu.hop",
                {
                    "party": self.party_id,
                    "set_size": len(msg.payload["elements"]),
                    "engine": self.ctx.engine.name,
                },
            ):
                with transport.stats.time_stage("ssu.encrypt"):
                    elements = self.cipher.encrypt_set(
                        msg.payload["elements"], engine=self.ctx.engine
                    )
            self.ctx.count_modexp(self.party_id, len(elements))
            self.ctx.leakage.record(
                PROTOCOL, self.party_id, "set_size",
                f"relay sees a block of {len(elements)} elements",
            )
            self._rng.shuffle(elements)
            self._advance(transport, msg.payload["hops"] + 1, elements)
        elif msg.kind == "ssu.full":
            self._on_full(msg, transport)
        elif msg.kind == "ssu.decrypt":
            with transport.stats.time_stage("ssu.decrypt"):
                elements = self.cipher.decrypt_set(
                    msg.payload["elements"], engine=self.ctx.engine
                )
            self.ctx.count_modexp(self.party_id, len(elements))
            self._send_decrypt(transport, elements, msg.payload["remaining"])
        elif msg.kind == "ssu.result":
            self.state.result = list(msg.payload["items"])
        else:
            raise ProtocolAbortError(f"unexpected message kind {msg.kind!r}")

    def _on_full(self, msg: Message, transport) -> None:
        if self.party_id != self.collector:
            raise ProtocolAbortError(f"{self.party_id} is not the union collector")
        self.state.pool.extend(msg.payload["elements"])
        self.state.full_blocks += 1
        if self.state.full_blocks < len(self.parties):
            return
        unique = sorted(set(self.state.pool))
        self.ctx.leakage.record(
            PROTOCOL, self.party_id, "result_cardinality",
            f"collector learns |∪ S_i| = {len(unique)}",
        )
        with transport.stats.time_stage("ssu.decrypt"):
            decrypted = self.cipher.decrypt_set(unique, engine=self.ctx.engine)
        self.ctx.count_modexp(self.party_id, len(decrypted))
        # Decrypt around the ring starting after ourselves, so a re-routed
        # ring order steers the decrypt chain clear of avoided links too.
        pos = self.ring.index(self.party_id)
        remaining = [
            self.ring[(pos + i) % len(self.ring)] for i in range(1, len(self.ring))
        ]
        self._send_decrypt(transport, decrypted, remaining=remaining)

    def _send_decrypt(self, transport, elements: list[int], remaining: list[str]) -> None:
        if remaining:
            transport.send(
                Message(
                    src=self.party_id,
                    dst=remaining[0],
                    kind="ssu.decrypt",
                    payload={"elements": elements, "remaining": remaining[1:]},
                )
            )
            return
        items = sorted(self.ctx.encoder.decode_int(e) for e in elements)
        for observer in self.observers:
            if observer == self.party_id:
                self.state.result = items
            else:
                transport.send(
                    Message(
                        src=self.party_id,
                        dst=observer,
                        kind="ssu.result",
                        payload={"items": items},
                    )
                )


def secure_set_union(
    ctx: SmcContext,
    sets: dict[str, list[int]],
    observers: list[str] | None = None,
    net: SimNetwork | None = None,
    collector: str | None = None,
    ring: list[str] | None = None,
    deadline: Deadline | None = None,
) -> SmcResult:
    """Run secure union over integer sets on a simulated network.

    See module docstring; interface mirrors
    :func:`repro.smc.intersection.secure_set_intersection`, including
    failover supervision on a resilient network (re-route or exclude, with
    ``degraded``/``skipped`` set on the result).
    """
    if not sets:
        raise ConfigurationError("union needs at least one party")
    parties = sorted(sets)
    observers = sorted(observers) if observers else list(parties)
    unknown = [o for o in observers if o not in parties]
    if unknown:
        raise ConfigurationError(f"observers {unknown} are not parties")
    collector = collector or observers[0]
    net = net or SimNetwork(tracer=ctx.tracer)

    with protocol_span(
        ctx,
        net,
        "smc.union",
        {
            "parties": len(parties),
            "set_sizes": {pid: len(sets[pid]) for pid in parties},
            "engine": ctx.engine.name,
        },
    ):
        if net.reliable:
            nodes_box: dict[str, UnionParty] = {}

            def launch(alive: list[str], avoid: frozenset):
                obs_alive = [o for o in observers if o in alive]
                if not obs_alive:
                    raise RingFailoverError(
                        f"{PROTOCOL}: every authorized observer is unreachable"
                    )
                candidates = sorted(set(obs_alive) | ({collector} & set(alive)))
                coll = pick_coordinator(candidates, avoid, default=collector)
                prefer = [p for p in (ring or sorted(alive)) if p in alive]
                ring_order = ring_avoiding(alive, avoid, prefer=prefer)
                nodes_box.clear()
                nodes_box.update(
                    {
                        pid: UnionParty(
                            pid, sets[pid], ctx, alive, obs_alive, coll,
                            ring=ring_order,
                        )
                        for pid in alive
                    }
                )
                for pid, node in nodes_box.items():
                    net.register(pid, node.handle)
                for node in nodes_box.values():
                    node.start(net)

                def collect():
                    out = {}
                    for obs in obs_alive:
                        result = nodes_box[obs].state.result
                        if result is None:
                            return None
                        out[obs] = result
                    return out

                return collect

            outcome = supervise_ring(
                net, PROTOCOL, parties, launch,
                min_parties=1, deadline=deadline, ledger=ctx.leakage,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset(outcome.values),
                values=outcome.values,
                rounds=len(parties),
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )
        nodes = {
            pid: UnionParty(pid, sets[pid], ctx, parties, observers, collector,
                            ring=ring)
            for pid in parties
        }
        for pid, node in nodes.items():
            net.register(pid, node.handle)
        for node in nodes.values():
            node.start(net)
        net.run(deadline=deadline)

    values = {}
    for obs in observers:
        result = nodes[obs].state.result
        if result is None:
            raise ProtocolAbortError(f"observer {obs} never received the union")
        values[obs] = result
    return SmcResult(
        protocol=PROTOCOL,
        observers=frozenset(observers),
        values=values,
        rounds=len(parties),
    )


async def secure_set_union_async(
    ctx: SmcContext,
    sets: dict[str, list[int]],
    observers: list[str] | None = None,
    net=None,
    collector: str | None = None,
    ring: list[str] | None = None,
    deadline: Deadline | None = None,
) -> SmcResult:
    """Coroutine twin of :func:`secure_set_union`.

    Same parties, spans, leakage and results; rounds are driven by
    ``await net.drain(...)`` so concurrent unions over one shared network
    pipeline their ring hops.
    """
    if not sets:
        raise ConfigurationError("union needs at least one party")
    parties = sorted(sets)
    observers = sorted(observers) if observers else list(parties)
    unknown = [o for o in observers if o not in parties]
    if unknown:
        raise ConfigurationError(f"observers {unknown} are not parties")
    collector = collector or observers[0]
    if net is None:
        from repro.aio.simnet import AsyncSimNetwork

        net = AsyncSimNetwork(tracer=ctx.tracer)

    with protocol_span(
        ctx,
        net,
        "smc.union",
        {
            "parties": len(parties),
            "set_sizes": {pid: len(sets[pid]) for pid in parties},
            "engine": ctx.engine.name,
        },
    ):
        if net.reliable:
            nodes_box: dict[str, UnionParty] = {}

            def launch(alive: list[str], avoid: frozenset):
                obs_alive = [o for o in observers if o in alive]
                if not obs_alive:
                    raise RingFailoverError(
                        f"{PROTOCOL}: every authorized observer is unreachable"
                    )
                candidates = sorted(set(obs_alive) | ({collector} & set(alive)))
                coll = pick_coordinator(candidates, avoid, default=collector)
                prefer = [p for p in (ring or sorted(alive)) if p in alive]
                ring_order = ring_avoiding(alive, avoid, prefer=prefer)
                nodes_box.clear()
                nodes_box.update(
                    {
                        pid: UnionParty(
                            pid, sets[pid], ctx, alive, obs_alive, coll,
                            ring=ring_order,
                        )
                        for pid in alive
                    }
                )
                for pid, node in nodes_box.items():
                    net.register(pid, node.handle)
                for node in nodes_box.values():
                    node.start(net)

                def collect():
                    out = {}
                    for obs in obs_alive:
                        result = nodes_box[obs].state.result
                        if result is None:
                            return None
                        out[obs] = result
                    return out

                return collect

            outcome = await supervise_ring_async(
                net, PROTOCOL, parties, launch,
                min_parties=1, deadline=deadline, ledger=ctx.leakage,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset(outcome.values),
                values=outcome.values,
                rounds=len(parties),
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )
        nodes = {
            pid: UnionParty(pid, sets[pid], ctx, parties, observers, collector,
                            ring=ring)
            for pid in parties
        }
        for pid, node in nodes.items():
            net.register(pid, node.handle)
        for node in nodes.values():
            node.start(net)
        await net.drain(deadline=deadline)

    values = {}
    for obs in observers:
        result = nodes[obs].state.result
        if result is None:
            raise ProtocolAbortError(f"observer {obs} never received the union")
        values[obs] = result
    return SmcResult(
        protocol=PROTOCOL,
        observers=frozenset(observers),
        values=values,
        rounds=len(parties),
    )
