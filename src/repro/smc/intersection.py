"""Secure set intersection ∩ₛ (paper §3.1, Figure 4).

Each DLA node ``P_i`` holds a private set ``S_i`` and a Pohlig-Hellman key
pair over the shared prime.  The sets circulate a ring: every hop encrypts
every element with the hop's key, so after ``n`` hops each set is encrypted
by all ``n`` parties.  Commutativity makes the n-fold encryptions
comparable: two fully-encrypted elements are equal iff their plaintexts are
(eq. 6-7).  A designated *collector* (one of the authorized observers
``P_w``) intersects the encrypted sets and the result flows back to the
observers in plaintext.

Two result-recovery modes:

* ``shuffle=False`` (paper's Figure 4 flow): relays preserve element order,
  so each origin can map "position j of my set is in the intersection"
  straight back to plaintext.  Leaks position linkage to the collector.
* ``shuffle=True``: relays shuffle, killing position linkage; recovery
  instead decrypts the encrypted intersection around the ring (again
  commutativity: any decryption order works), and the final holder matches
  the decrypted hash-encodings against its own set.

Both modes leak set sizes and the intersection cardinality — *secondary*
information permitted by Definition 1 and recorded in the leakage ledger.

Relay scheduling has two modes:

* **Pipelined** (``coalesce=False``, the paper's Figure 4 flow): all n
  sets circulate simultaneously, one frame per set per hop — n·(n-1)
  relay frames plus n collector deliveries.  Minimal wall-clock rounds
  (n), maximal frame count.
* **Convoy** (``coalesce=True``): one bundle travels the ring; each hop
  re-encrypts every in-flight set, adds its own, and drops fully-
  encrypted sets off toward the collector — one frame per *hop* instead
  of one frame per *set*, ~2n+1 frames total.  Identical results, modexp
  counts and leakage; the trade is serialized hops (≈2n link latencies)
  against an O(n²)→O(n) frame-count reduction, which wins whenever
  per-frame overhead dominates (small sets, many parties, chatty links).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.pohlig_hellman import PohligHellmanCipher
from repro.errors import ConfigurationError, ProtocolAbortError, RingFailoverError
from repro.net.message import Message
from repro.net.simnet import SimNetwork
from repro.resilience import (
    Deadline,
    pick_coordinator,
    ring_avoiding,
    supervise_ring,
    supervise_ring_async,
)
from repro.smc.base import SmcContext, SmcResult, protocol_span

__all__ = [
    "IntersectionParty",
    "secure_set_intersection",
    "secure_set_intersection_async",
    "fig4_walkthrough",
]

PROTOCOL = "secure_set_intersection"


@dataclass
class _PartyState:
    """Mutable per-run state of one party."""

    encoded: list[int] = field(default_factory=list)     # hashed encodings of own set
    by_encoding: dict[int, object] = field(default_factory=dict)
    full_sets: dict[str, list[int]] = field(default_factory=dict)  # collector only
    result: list | None = None


class IntersectionParty:
    """One DLA node participating in a secure-set-intersection run.

    Transport-agnostic: the ``handle`` method has the common
    ``(Message, transport) -> None`` signature, so the same object runs on
    :class:`~repro.net.simnet.SimNetwork` or a TCP node.
    """

    def __init__(
        self,
        party_id: str,
        private_set: list,
        ctx: SmcContext,
        parties: list[str],
        observers: list[str],
        collector: str,
        shuffle: bool = False,
        ring: list[str] | None = None,
    ) -> None:
        if party_id not in parties:
            raise ConfigurationError(f"{party_id} is not among the parties")
        self.party_id = party_id
        self.ctx = ctx
        self.parties = sorted(parties)
        if ring is not None and sorted(ring) != self.parties:
            raise ConfigurationError("ring must be a permutation of the parties")
        self.ring = list(ring) if ring is not None else list(self.parties)
        self.observers = sorted(observers)
        self.collector = collector
        self.shuffle = shuffle
        self._rng = ctx.party_rng(party_id)
        # Key material is query-independent: draw it from the node's
        # precompute pool when one is attached (offline/online split).
        self.cipher = ctx.make_cipher(party_id, self._rng)
        self.state = _PartyState()
        # Deduplicate while preserving order; duplicate elements would leak
        # multiplicity and add no information to an intersection.
        seen = set()
        encodings = ctx.encoder.encode_hashed_many(private_set, engine=ctx.engine)
        for item, enc in zip(private_set, encodings):
            if enc not in seen:
                seen.add(enc)
                self.state.encoded.append(enc)
                self.state.by_encoding[enc] = item
        self.private_set = list(self.state.by_encoding.values())

    # -- protocol steps ----------------------------------------------------

    def _encrypt_own(self, transport) -> list[int]:
        with self.ctx.tracer.span(
            "ssi.hop",
            {
                "party": self.party_id,
                "origin": self.party_id,
                "set_size": len(self.state.encoded),
                "engine": self.ctx.engine.name,
            },
        ):
            with transport.stats.time_stage("ssi.encrypt"):
                encrypted = self.cipher.encrypt_set(
                    self.state.encoded, engine=self.ctx.engine
                )
        self.ctx.count_modexp(self.party_id, len(encrypted))
        return encrypted

    def start(self, transport) -> None:
        """Round 0 (pipelined mode): encrypt own set and push it onto the ring."""
        with self.ctx.node_span(
            self.party_id, "node.ssi.encrypt", {"node": self.party_id}
        ):
            encrypted = self._encrypt_own(transport)
            self._advance(transport, origin=self.party_id, hops=1, elements=encrypted)

    def _advance(self, transport, origin: str, hops: int, elements: list[int]) -> None:
        if hops >= len(self.parties):
            transport.send(
                Message(
                    src=self.party_id,
                    dst=self.collector,
                    kind="ssi.full",
                    payload={"origin": origin, "elements": elements},
                )
            )
            return
        successor = self.ring[(self.ring.index(self.party_id) + 1) % len(self.ring)]
        transport.send(
            Message(
                src=self.party_id,
                dst=successor,
                kind="ssi.relay",
                payload={"origin": origin, "hops": hops, "elements": elements},
            )
        )

    def handle(self, msg: Message, transport) -> None:
        """Dispatch one protocol message."""
        if msg.kind == "ssi.relay":
            self._on_relay(msg, transport)
        elif msg.kind == "ssi.convoy":
            self._on_convoy(msg, transport)
        elif msg.kind == "ssi.full":
            self._on_full(msg, transport)
        elif msg.kind == "ssi.deliver":
            self._on_deliver(msg, transport)
        elif msg.kind == "ssi.positions":
            self._on_positions(msg, transport)
        elif msg.kind == "ssi.decrypt":
            self._on_decrypt(msg, transport)
        elif msg.kind == "ssi.result":
            self.state.result = [tuple(v) if isinstance(v, list) else v
                                 for v in msg.payload["items"]]
        else:
            raise ProtocolAbortError(f"unexpected message kind {msg.kind!r}")

    def _reencrypt_block(self, transport, origin: str, elements: list[int]) -> list[int]:
        """One hop's work on one in-flight set: re-encrypt (and maybe shuffle)."""
        with self.ctx.tracer.span(
            "ssi.hop",
            {
                "party": self.party_id,
                "origin": origin,
                "set_size": len(elements),
                "engine": self.ctx.engine.name,
            },
        ):
            with transport.stats.time_stage("ssi.encrypt"):
                elements = self.cipher.encrypt_set(elements, engine=self.ctx.engine)
        self.ctx.count_modexp(self.party_id, len(elements))
        self.ctx.leakage.record(
            PROTOCOL,
            self.party_id,
            "set_size",
            f"relay sees |S_{origin}| = {len(elements)}",
        )
        if self.shuffle:
            self._rng.shuffle(elements)
        return elements

    def _on_relay(self, msg: Message, transport) -> None:
        origin = msg.payload["origin"]
        elements = self._reencrypt_block(transport, origin, msg.payload["elements"])
        self._advance(transport, origin, msg.payload["hops"] + 1, elements)

    # -- convoy (coalesced) relay mode --------------------------------------

    def start_convoy(self, transport) -> None:
        """Coalesced mode bootstrap: only the collector calls this."""
        with self.ctx.node_span(
            self.party_id, "node.ssi.encrypt", {"node": self.party_id}
        ):
            self._process_convoy(transport, entries=[], joined=[])

    def _on_convoy(self, msg: Message, transport) -> None:
        self._process_convoy(
            transport,
            entries=msg.payload["entries"],
            joined=list(msg.payload["joined"]),
        )

    def _process_convoy(self, transport, entries: list, joined: list[str]) -> None:
        n = len(self.parties)
        carried = []
        for entry in entries:
            if entry["hops"] < n:
                elements = self._reencrypt_block(
                    transport, entry["origin"], entry["elements"]
                )
                entry = {
                    "origin": entry["origin"],
                    "hops": entry["hops"] + 1,
                    "elements": elements,
                }
            carried.append(entry)
        if self.party_id not in joined:
            carried.append(
                {
                    "origin": self.party_id,
                    "hops": 1,
                    "elements": self._encrypt_own(transport),
                }
            )
            joined.append(self.party_id)
        complete = [e for e in carried if e["hops"] >= n]
        pending = [e for e in carried if e["hops"] < n]
        if complete:
            if self.party_id == self.collector:
                for entry in complete:
                    self._absorb_full(transport, entry["origin"], entry["elements"])
            else:
                # One frame delivers every set completed at this hop.
                transport.send(
                    Message(
                        src=self.party_id,
                        dst=self.collector,
                        kind="ssi.deliver",
                        payload={
                            "sets": {e["origin"]: e["elements"] for e in complete}
                        },
                    )
                )
        if pending:
            successor = self.ring[
                (self.ring.index(self.party_id) + 1) % len(self.ring)
            ]
            transport.send(
                Message(
                    src=self.party_id,
                    dst=successor,
                    kind="ssi.convoy",
                    payload={"entries": pending, "joined": joined},
                )
            )

    # -- collector role ------------------------------------------------------

    def _on_full(self, msg: Message, transport) -> None:
        if self.party_id != self.collector:
            raise ProtocolAbortError(f"{self.party_id} received ssi.full but is not collector")
        self._absorb_full(transport, msg.payload["origin"], msg.payload["elements"])

    def _on_deliver(self, msg: Message, transport) -> None:
        if self.party_id != self.collector:
            raise ProtocolAbortError(
                f"{self.party_id} received ssi.deliver but is not collector"
            )
        for origin, elements in msg.payload["sets"].items():
            self._absorb_full(transport, origin, elements)

    def _absorb_full(self, transport, origin: str, elements: list[int]) -> None:
        self.state.full_sets[origin] = elements
        if len(self.state.full_sets) < len(self.parties):
            return
        common = set.intersection(
            *(set(elems) for elems in self.state.full_sets.values())
        )
        self.ctx.leakage.record(
            PROTOCOL,
            self.party_id,
            "result_cardinality",
            f"collector learns |∩ S_i| = {len(common)}",
        )
        if not self.shuffle:
            # Positions survive relaying: tell each origin which of its own
            # (order-preserved) elements made the intersection.
            self.ctx.leakage.record(
                PROTOCOL,
                self.party_id,
                "position_linkage",
                "collector links intersection hits to element positions",
            )
            transport.send_many(
                [
                    Message(
                        src=self.party_id,
                        dst=origin,
                        kind="ssi.positions",
                        payload={
                            "positions": [
                                i for i, e in enumerate(elems) if e in common
                            ]
                        },
                    )
                    for origin, elems in self.state.full_sets.items()
                ]
            )
        else:
            # Shuffled mode: decrypt the encrypted intersection around the
            # ring (any order — commutativity), starting with ourselves.
            with transport.stats.time_stage("ssi.decrypt"):
                elements = self.cipher.decrypt_set(
                    sorted(common), engine=self.ctx.engine
                )
            self.ctx.count_modexp(self.party_id, len(elements))
            self._send_decrypt(transport, elements, remaining=[
                p for p in self.parties if p != self.party_id
            ])

    def _send_decrypt(self, transport, elements: list[int], remaining: list[str]) -> None:
        if remaining:
            transport.send(
                Message(
                    src=self.party_id,
                    dst=remaining[0],
                    kind="ssi.decrypt",
                    payload={"elements": elements, "remaining": remaining[1:]},
                )
            )
            return
        # Fully decrypted: elements are hash-encodings; match against our
        # own set (the intersection is a subset of every party's set).
        items = [self.state.by_encoding[e] for e in elements if e in self.state.by_encoding]
        if len(items) != len(elements):
            raise ProtocolAbortError(
                "decrypted intersection contains encodings unknown to the holder"
            )
        self._publish(transport, items)

    def _on_decrypt(self, msg: Message, transport) -> None:
        with transport.stats.time_stage("ssi.decrypt"):
            elements = self.cipher.decrypt_set(
                msg.payload["elements"], engine=self.ctx.engine
            )
        self.ctx.count_modexp(self.party_id, len(elements))
        self._send_decrypt(transport, elements, msg.payload["remaining"])

    def _on_positions(self, msg: Message, transport) -> None:
        items = [self.private_set[i] for i in msg.payload["positions"]]
        if self.party_id == min(self.parties):
            # One designated origin publishes (all origins decode equal sets).
            self._publish(transport, items)

    def _publish(self, transport, items: list) -> None:
        items = sorted(items, key=repr)
        outgoing = []
        for observer in self.observers:
            if observer == self.party_id:
                self.state.result = items
            else:
                outgoing.append(
                    Message(
                        src=self.party_id,
                        dst=observer,
                        kind="ssi.result",
                        payload={"items": items},
                    )
                )
        if outgoing:
            transport.send_many(outgoing)


def secure_set_intersection(
    ctx: SmcContext,
    sets: dict[str, list],
    observers: list[str] | None = None,
    net: SimNetwork | None = None,
    shuffle: bool = False,
    collector: str | None = None,
    ring: list[str] | None = None,
    coalesce: bool = False,
    deadline: Deadline | None = None,
) -> SmcResult:
    """Run the full protocol on a simulated network and return the result.

    Parameters
    ----------
    ctx:
        Shared :class:`SmcContext` (prime, RNG, ledgers).
    sets:
        ``party_id -> private set`` (lists of str/int/bytes/tuples).
    observers:
        Party ids authorized to learn the intersection; defaults to all.
    net:
        An existing :class:`SimNetwork` to run on (stats accumulate there);
        a fresh one is created if omitted.
    shuffle:
        Enable relay shuffling (see module docstring).
    collector:
        The observer that aggregates the encrypted sets; defaults to the
        smallest observer id.
    ring:
        Optional explicit relay order (a permutation of the parties);
        defaults to sorted party ids.  Latency-aware orders (see
        :func:`repro.net.topology.latency_ring`) cut wall-clock time on
        heterogeneous links without changing the protocol.
    coalesce:
        Use the convoy relay mode (one frame per ring hop carrying every
        in-flight set) instead of the pipelined per-set relays.  Same
        results, modexp counts and leakage at ~2n+1 frames instead of n².
        See the module docstring for the latency trade-off.
    deadline:
        Optional wall-clock :class:`~repro.resilience.Deadline` bounding
        the run (propagated from the audit service).

    On a resilient network (``SimNetwork(resilience=RetryPolicy(...))``)
    the run is supervised: a dead or partitioned hop is re-routed around
    (new ring order / new collector), or the node is excluded and the
    result returned with ``degraded=True`` and its id in ``skipped``.
    """
    if len(sets) < 1:
        raise ConfigurationError("intersection needs at least one party")
    parties = sorted(sets)
    observers = sorted(observers) if observers else list(parties)
    unknown = [o for o in observers if o not in parties]
    if unknown:
        raise ConfigurationError(f"observers {unknown} are not parties")
    collector = collector or observers[0]
    if collector not in parties:
        raise ConfigurationError(f"collector {collector!r} is not a party")
    net = net or SimNetwork(tracer=ctx.tracer)

    with protocol_span(
        ctx,
        net,
        "smc.intersection",
        {
            "parties": len(parties),
            "set_sizes": {pid: len(sets[pid]) for pid in parties},
            "engine": ctx.engine.name,
            "shuffle": shuffle,
            "coalesce": coalesce,
        },
    ):
        if net.reliable:
            outcome = _run_supervised(
                ctx, net, sets, parties, observers, collector,
                shuffle=shuffle, ring=ring, coalesce=coalesce, deadline=deadline,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset(outcome.values),
                values=outcome.values,
                rounds=len(parties),
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )
        nodes = {
            pid: IntersectionParty(
                pid, sets[pid], ctx, parties, observers, collector,
                shuffle=shuffle, ring=ring,
            )
            for pid in parties
        }
        for pid, node in nodes.items():
            net.register(pid, node.handle)
        if coalesce:
            nodes[collector].start_convoy(net)
        else:
            for node in nodes.values():
                node.start(net)
        net.run(deadline=deadline)

    values = {}
    for obs in observers:
        result = nodes[obs].state.result
        if result is None:
            raise ProtocolAbortError(f"observer {obs} never received the result")
        values[obs] = result
    return SmcResult(
        protocol=PROTOCOL,
        observers=frozenset(observers),
        values=values,
        rounds=len(parties),
    )


def _run_supervised(
    ctx: SmcContext,
    net: SimNetwork,
    sets: dict[str, list],
    parties: list[str],
    observers: list[str],
    collector: str,
    *,
    shuffle: bool,
    ring: list[str] | None,
    coalesce: bool,
    deadline: Deadline | None,
):
    """Failover-supervised intersection: re-route or exclude dead hops."""
    nodes: dict[str, IntersectionParty] = {}

    def launch(alive: list[str], avoid: frozenset):
        obs_alive = [o for o in observers if o in alive]
        if not obs_alive:
            raise RingFailoverError(
                f"{PROTOCOL}: every authorized observer is unreachable"
            )
        candidates = sorted(set(obs_alive) | ({collector} & set(alive)))
        coll = pick_coordinator(candidates, avoid, default=collector)
        prefer = [p for p in (ring or sorted(alive)) if p in alive]
        ring_order = ring_avoiding(alive, avoid, prefer=prefer)
        nodes.clear()
        nodes.update(
            {
                pid: IntersectionParty(
                    pid, sets[pid], ctx, alive, obs_alive, coll,
                    shuffle=shuffle, ring=ring_order,
                )
                for pid in alive
            }
        )
        for pid, node in nodes.items():
            net.register(pid, node.handle)
        if coalesce:
            nodes[coll].start_convoy(net)
        else:
            for node in nodes.values():
                node.start(net)

        def collect():
            values = {}
            for obs in obs_alive:
                result = nodes[obs].state.result
                if result is None:
                    return None
                values[obs] = result
            return values

        return collect

    return supervise_ring(
        net, PROTOCOL, parties, launch,
        min_parties=1, deadline=deadline, ledger=ctx.leakage,
    )


async def secure_set_intersection_async(
    ctx: SmcContext,
    sets: dict[str, list],
    observers: list[str] | None = None,
    net=None,
    shuffle: bool = False,
    collector: str | None = None,
    ring: list[str] | None = None,
    coalesce: bool = False,
    deadline: Deadline | None = None,
) -> SmcResult:
    """Coroutine twin of :func:`secure_set_intersection`.

    Identical validation, party construction, spans and leakage; the only
    difference is that rounds are driven by ``await net.drain(...)`` on an
    event loop instead of the blocking ``net.run(...)``, so several runs
    over one shared network pipeline their ring hops.  Results are
    bitwise-identical to the sync driver.
    """
    if len(sets) < 1:
        raise ConfigurationError("intersection needs at least one party")
    parties = sorted(sets)
    observers = sorted(observers) if observers else list(parties)
    unknown = [o for o in observers if o not in parties]
    if unknown:
        raise ConfigurationError(f"observers {unknown} are not parties")
    collector = collector or observers[0]
    if collector not in parties:
        raise ConfigurationError(f"collector {collector!r} is not a party")
    if net is None:
        from repro.aio.simnet import AsyncSimNetwork

        net = AsyncSimNetwork(tracer=ctx.tracer)

    with protocol_span(
        ctx,
        net,
        "smc.intersection",
        {
            "parties": len(parties),
            "set_sizes": {pid: len(sets[pid]) for pid in parties},
            "engine": ctx.engine.name,
            "shuffle": shuffle,
            "coalesce": coalesce,
        },
    ):
        if net.reliable:
            outcome = await _run_supervised_async(
                ctx, net, sets, parties, observers, collector,
                shuffle=shuffle, ring=ring, coalesce=coalesce, deadline=deadline,
            )
            return SmcResult(
                protocol=PROTOCOL,
                observers=frozenset(outcome.values),
                values=outcome.values,
                rounds=len(parties),
                degraded=outcome.degraded,
                skipped=outcome.skipped,
                failovers=outcome.failovers,
            )
        nodes = {
            pid: IntersectionParty(
                pid, sets[pid], ctx, parties, observers, collector,
                shuffle=shuffle, ring=ring,
            )
            for pid in parties
        }
        for pid, node in nodes.items():
            net.register(pid, node.handle)
        if coalesce:
            nodes[collector].start_convoy(net)
        else:
            for node in nodes.values():
                node.start(net)
        await net.drain(deadline=deadline)

    values = {}
    for obs in observers:
        result = nodes[obs].state.result
        if result is None:
            raise ProtocolAbortError(f"observer {obs} never received the result")
        values[obs] = result
    return SmcResult(
        protocol=PROTOCOL,
        observers=frozenset(observers),
        values=values,
        rounds=len(parties),
    )


async def _run_supervised_async(
    ctx: SmcContext,
    net,
    sets: dict[str, list],
    parties: list[str],
    observers: list[str],
    collector: str,
    *,
    shuffle: bool,
    ring: list[str] | None,
    coalesce: bool,
    deadline: Deadline | None,
):
    """Coroutine twin of :func:`_run_supervised` (same launch closure)."""
    nodes: dict[str, IntersectionParty] = {}

    def launch(alive: list[str], avoid: frozenset):
        obs_alive = [o for o in observers if o in alive]
        if not obs_alive:
            raise RingFailoverError(
                f"{PROTOCOL}: every authorized observer is unreachable"
            )
        candidates = sorted(set(obs_alive) | ({collector} & set(alive)))
        coll = pick_coordinator(candidates, avoid, default=collector)
        prefer = [p for p in (ring or sorted(alive)) if p in alive]
        ring_order = ring_avoiding(alive, avoid, prefer=prefer)
        nodes.clear()
        nodes.update(
            {
                pid: IntersectionParty(
                    pid, sets[pid], ctx, alive, obs_alive, coll,
                    shuffle=shuffle, ring=ring_order,
                )
                for pid in alive
            }
        )
        for pid, node in nodes.items():
            net.register(pid, node.handle)
        if coalesce:
            nodes[coll].start_convoy(net)
        else:
            for node in nodes.values():
                node.start(net)

        def collect():
            values = {}
            for obs in obs_alive:
                result = nodes[obs].state.result
                if result is None:
                    return None
                values[obs] = result
            return values

        return collect

    return await supervise_ring_async(
        net, PROTOCOL, parties, launch,
        min_parties=1, deadline=deadline, ledger=ctx.leakage,
    )


def fig4_walkthrough(ctx: SmcContext | None = None) -> dict:
    """Reproduce the paper's Figure 4 example end to end.

    Three parties with S1={c,d,e}, S2={d,e,f}, S3={e,f,g}; the protocol
    must output {e}, and the three independently-ordered triple encryptions
    of 'e' must coincide: E132(e) = E321(e) = E213(e).

    Returns a transcript dict used by the example script, the test suite
    and EXPERIMENTS.md.
    """
    from repro.crypto.pohlig_hellman import shared_prime
    from repro.crypto.rng import DeterministicRng

    ctx = ctx or SmcContext(shared_prime(128), DeterministicRng(b"fig4"))
    sets = {"P1": ["c", "d", "e"], "P2": ["d", "e", "f"], "P3": ["e", "f", "g"]}

    # Direct algebraic check of eq. 6 on the element 'e'.
    rng = ctx.rng.spawn("fig4-alg")
    k1 = PohligHellmanCipher.generate(ctx.prime, rng)
    k2 = PohligHellmanCipher.generate(ctx.prime, rng)
    k3 = PohligHellmanCipher.generate(ctx.prime, rng)
    e_enc = ctx.encoder.encode_hashed("e")
    e_132 = k1.encrypt(k3.encrypt(k2.encrypt(e_enc)))
    e_321 = k3.encrypt(k2.encrypt(k1.encrypt(e_enc)))
    e_213 = k2.encrypt(k1.encrypt(k3.encrypt(e_enc)))

    net = SimNetwork()
    result = secure_set_intersection(ctx, sets, net=net)
    return {
        "sets": sets,
        "intersection": result.any_value,
        "commutative_encodings_equal": e_132 == e_321 == e_213,
        "triple_encryption_of_e": e_132,
        "messages": net.stats.messages,
        "bytes": net.stats.bytes,
        "modexp": ctx.crypto_ops.modexp,
    }
