"""Degree-of-auditing-confidentiality metrics (paper §5, eq. 10-13).

The paper quantifies how little each DLA node can learn:

* **Store confidentiality** (eq. 10) of an audit trail ``Log``::

      C_store(Log) = v·u / w,   0 ≤ v ≤ w ≤ |I|,  0 ≤ u ≤ n

  ``w`` = number of attributes used in the record, ``v`` = how many of
  them are *undefined* (C_1..C_n — opaque to DLA nodes), ``u`` = the
  minimum number of DLA nodes whose supported sets jointly cover the
  record's attributes.  More opacity and wider spread ⇒ higher score.

* **Auditing confidentiality** (eq. 11) of a criterion ``Q`` normalized to
  ``Q_N = SQ_1 ∧ ... ∧ SQ_q``::

      C_auditing(Q) = (t + q) / (s + q)

  ``s`` = atomic predicates, ``t`` = cross predicates, ``q`` = conjunctive
  clauses.  All-cross queries score 1; all-local single-clause queries
  approach 1/s.

* **Query confidentiality** (eq. 12): ``C_query = C_auditing · C_store``.

* **DLA confidentiality** (eq. 13): the average of ``C_query`` over a
  query/log workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.audit.classify import classify, cross_predicate_count
from repro.audit.normalize import to_conjunctive_form
from repro.audit.parser import parse_criterion
from repro.audit.planner import QueryPlan
from repro.errors import AuditError
from repro.logstore.fragmentation import FragmentPlan
from repro.logstore.records import LogRecord
from repro.logstore.schema import GlobalSchema

__all__ = [
    "StoreConfidentiality",
    "store_confidentiality",
    "auditing_confidentiality",
    "query_confidentiality",
    "dla_confidentiality",
]


@dataclass(frozen=True)
class StoreConfidentiality:
    """eq. 10 decomposition: the score plus its ingredients."""

    w: int  # attributes used in the record
    v: int  # undefined attributes among them
    u: int  # minimum node count covering the record's attributes
    value: float


def store_confidentiality(
    record: LogRecord, schema: GlobalSchema, plan: FragmentPlan
) -> StoreConfidentiality:
    """Compute ``C_store`` (eq. 10) for one record under one plan."""
    used = [name for name in record.values if name in schema]
    if not used:
        raise AuditError("record uses no schema attributes")
    w = len(used)
    v = sum(1 for name in used if schema.get(name).is_undefined)
    u = plan.minimum_cover_count(used)
    return StoreConfidentiality(w=w, v=v, u=u, value=(v * u) / w)


def auditing_confidentiality(
    criterion: str | QueryPlan, schema: GlobalSchema, plan: FragmentPlan
) -> float:
    """Compute ``C_auditing`` (eq. 11) for a criterion.

    Accepts criterion text (parsed and normalized here) or an existing
    :class:`~repro.audit.planner.QueryPlan`.
    """
    if isinstance(criterion, QueryPlan):
        s, t, q = criterion.s, criterion.t, criterion.q
    else:
        form = to_conjunctive_form(parse_criterion(criterion, schema))
        subqueries = classify(form, plan)
        s = form.s
        t = cross_predicate_count(subqueries)
        q = form.q
    if s + q == 0:
        raise AuditError("degenerate criterion with no predicates")
    return (t + q) / (s + q)


def query_confidentiality(
    criterion: str | QueryPlan,
    record: LogRecord,
    schema: GlobalSchema,
    plan: FragmentPlan,
) -> float:
    """Compute ``C_query`` (eq. 12) = C_auditing · C_store."""
    c_audit = auditing_confidentiality(criterion, schema, plan)
    c_store = store_confidentiality(record, schema, plan).value
    return c_audit * c_store


def dla_confidentiality(
    workload: list[tuple[str, LogRecord]],
    schema: GlobalSchema,
    plan: FragmentPlan,
) -> float:
    """Compute ``C_DLA`` (eq. 13): mean C_query over a (Q, Log) workload."""
    if not workload:
        raise AuditError("empty workload")
    return mean(
        query_confidentiality(criterion, record, schema, plan)
        for criterion, record in workload
    )
