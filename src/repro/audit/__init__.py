"""Confidential auditing query engine (paper §2, §5; Figure 3).

From criterion text to a distributed, privacy-preserving evaluation:

1. :func:`~repro.audit.parser.parse_criterion` — lex/parse to an AST;
2. :func:`~repro.audit.normalize.to_conjunctive_form` — Q → Q_N;
3. :func:`~repro.audit.classify.classify` — local/cross placement;
4. :func:`~repro.audit.planner.plan_query` — strategy per predicate;
5. :class:`~repro.audit.executor.QueryExecutor` — distributed evaluation
   over the relaxed-SMC primitives, final conjunction by secure set
   intersection keyed by glsn;
6. :mod:`~repro.audit.confidentiality` — §5's C_store / C_auditing /
   C_query / C_DLA metrics.
"""

from repro.audit.ast_nodes import (
    And,
    AttributeRef,
    Constant,
    Node,
    Not,
    Or,
    Predicate,
)
from repro.audit.classify import (
    ClassifiedPredicate,
    ClassifiedSubquery,
    PredicateScope,
    classify,
    cross_predicate_count,
)
from repro.audit.confidentiality import (
    StoreConfidentiality,
    auditing_confidentiality,
    dla_confidentiality,
    query_confidentiality,
    store_confidentiality,
)
from repro.audit.executor import AggregateResult, QueryExecutor, QueryResult
from repro.audit.lexer import Token, tokenize
from repro.audit.normalize import (
    ConjunctiveForm,
    push_negations,
    to_conjunctive_form,
)
from repro.audit.parser import parse_criterion
from repro.audit.planner import PredicateStrategy, QueryPlan, plan_query

__all__ = [
    "And",
    "Or",
    "Not",
    "Predicate",
    "AttributeRef",
    "Constant",
    "Node",
    "Token",
    "tokenize",
    "parse_criterion",
    "push_negations",
    "to_conjunctive_form",
    "ConjunctiveForm",
    "classify",
    "cross_predicate_count",
    "PredicateScope",
    "ClassifiedPredicate",
    "ClassifiedSubquery",
    "plan_query",
    "QueryPlan",
    "PredicateStrategy",
    "QueryExecutor",
    "QueryResult",
    "AggregateResult",
    "store_confidentiality",
    "StoreConfidentiality",
    "auditing_confidentiality",
    "query_confidentiality",
    "dla_confidentiality",
]
