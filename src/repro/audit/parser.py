"""Recursive-descent parser for auditing criteria.

Grammar (standard precedence: ``not`` > ``and`` > ``or``)::

    criterion := or_expr
    or_expr   := and_expr ( OR and_expr )*
    and_expr  := unary ( AND unary )*
    unary     := NOT unary | primary
    primary   := '(' criterion ')' | predicate
    predicate := ATTR OP ( ATTR | CONST )

``parse_criterion`` is the public entry; it returns the AST and validates
every referenced attribute against an optional schema.
"""

from __future__ import annotations

from repro.audit.ast_nodes import And, AttributeRef, Constant, Node, Not, Or, Predicate
from repro.audit.lexer import Token, tokenize
from repro.errors import QuerySyntaxError, UnknownAttributeError
from repro.logstore.schema import GlobalSchema

__all__ = ["parse_criterion"]


class _Parser:
    def __init__(self, tokens: list[Token], text: str) -> None:
        self.tokens = tokens
        self.text = text
        self.pos = 0

    def peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: str | None = None) -> Token:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError(f"unexpected end of criterion: {self.text!r}")
        if expected is not None and token.type != expected:
            raise QuerySyntaxError(
                f"expected {expected} at position {token.pos}, got "
                f"{token.type} ({token.value!r})"
            )
        self.pos += 1
        return token

    def parse(self) -> Node:
        node = self.or_expr()
        leftover = self.peek()
        if leftover is not None:
            raise QuerySyntaxError(
                f"trailing input at position {leftover.pos}: {leftover.value!r}"
            )
        return node

    def or_expr(self) -> Node:
        children = [self.and_expr()]
        while (token := self.peek()) is not None and token.type == "OR":
            self.take("OR")
            children.append(self.and_expr())
        return children[0] if len(children) == 1 else Or(children)

    def and_expr(self) -> Node:
        children = [self.unary()]
        while (token := self.peek()) is not None and token.type == "AND":
            self.take("AND")
            children.append(self.unary())
        return children[0] if len(children) == 1 else And(children)

    def unary(self) -> Node:
        token = self.peek()
        if token is not None and token.type == "NOT":
            self.take("NOT")
            return Not(self.unary())
        return self.primary()

    def primary(self) -> Node:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError(f"unexpected end of criterion: {self.text!r}")
        if token.type == "LP":
            self.take("LP")
            node = self.or_expr()
            self.take("RP")
            return node
        return self.predicate()

    def predicate(self) -> Predicate:
        left = self.take("ATTR")
        op = self.take("OP")
        right = self.peek()
        if right is None:
            raise QuerySyntaxError("predicate missing right-hand side")
        if right.type == "ATTR":
            self.take("ATTR")
            rhs: AttributeRef | Constant = AttributeRef(right.value)
        elif right.type == "CONST":
            self.take("CONST")
            rhs = Constant(right.value)
        else:
            raise QuerySyntaxError(
                f"predicate right-hand side must be attribute or constant "
                f"at position {right.pos}"
            )
        return Predicate(AttributeRef(left.value), op.value, rhs)


def parse_criterion(text: str, schema: GlobalSchema | None = None) -> Node:
    """Parse an auditing criterion; optionally validate attribute names.

    Examples
    --------
    >>> node = parse_criterion("C1 > 30 and protocl = 'UDP'")
    >>> str(node)
    "(C1 > 30 and protocl = 'UDP')"
    """
    tokens = tokenize(text)
    if not tokens:
        raise QuerySyntaxError("empty auditing criterion")
    node = _Parser(tokens, text).parse()
    if schema is not None:
        unknown = sorted(node.attributes() - set(schema.names))
        if unknown:
            raise UnknownAttributeError(
                f"criterion references unknown attributes: {unknown}"
            )
    return node
